//! # xsql-repro — "Querying Object-Oriented Databases" (SIGMOD 1992)
//!
//! A full reproduction of Kifer, Kim & Sagiv's XSQL: an object-oriented
//! database engine (`oodb`), the XSQL query language with extended path
//! expressions, object creation, views, methods and the §6 typing system
//! (`xsql`), relations as first-class results (`relalg`), the F-logic
//! substrate and Theorem 3.1 translation (`flogic`), and deterministic
//! workload generators (`datagen`).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-artifact index. Start with [`xsql::Session`]:
//!
//! ```
//! use xsql_repro::datagen::figure1_db;
//! use xsql_repro::xsql::Session;
//!
//! let mut s = Session::new(figure1_db());
//! let answer = s
//!     .query("SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']")
//!     .unwrap();
//! assert_eq!(answer.len(), 1);
//! ```

pub use datagen;
pub use flogic;
pub use oodb;
pub use relalg;
pub use xsql;
