//! The `xsql-cli` command-line tool: run XSQL scripts or an interactive
//! session against a fixture or an empty database.
//!
//! ```text
//! xsql-cli [--db empty|figure1|nobel|university] [--open DIR] [--typed] \
//!          [script.xsql ...]
//! ```
//!
//! With script arguments, each file is executed in order and results are
//! printed; without any, an interactive prompt starts (statements end
//! with `;`; `\q` quits). `--typed` routes SELECTs through the Theorem
//! 6.1 range-restricted evaluator when the query is strictly well-typed.
//!
//! `--open DIR` (or the interactive `.open DIR` meta-command) attaches a
//! durable store: on first use the directory is initialized over the
//! `--db` fixture; on reopen the fixture recorded in the store is loaded
//! and crash recovery replays the checkpoint + WAL tail. While a store is
//! attached, every committed statement is WAL-logged and fsync'd, so
//! committed work survives `kill -9`; `WAL ON|OFF` and `CHECKPOINT`
//! statements control logging and snapshotting.

use std::io::{self, BufRead, Write};
use std::process::ExitCode;
use std::time::Duration;

use oodb::Database;
use relalg::render_table;
use service::{ExecResult, QueryContext, Service, ServiceConfig, ServiceError};
use storage::{RealFs, Store};
use xsql::{Outcome, Session};

struct Config {
    db: String,
    open: Option<String>,
    typed: bool,
    serve: bool,
    stats: bool,
    deadline_ms: Option<u64>,
    parallel: Option<usize>,
    listen: Option<String>,
    replica_of: Option<String>,
    connect: Option<String>,
    token: Option<String>,
    promote: Option<String>,
    leader_hint: Option<String>,
    scripts: Vec<String>,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        db: "figure1".to_string(),
        open: None,
        typed: false,
        serve: false,
        stats: false,
        deadline_ms: None,
        parallel: None,
        listen: None,
        replica_of: None,
        connect: None,
        token: None,
        promote: None,
        leader_hint: None,
        scripts: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--db" => {
                cfg.db = args
                    .next()
                    .ok_or_else(|| "--db requires a value".to_string())?;
            }
            "--open" => {
                cfg.open = Some(
                    args.next()
                        .ok_or_else(|| "--open requires a directory".to_string())?,
                );
            }
            "--typed" => cfg.typed = true,
            "--serve" => cfg.serve = true,
            "--stats" => cfg.stats = true,
            "--deadline-ms" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--deadline-ms requires a value".to_string())?;
                cfg.deadline_ms = Some(
                    v.parse()
                        .map_err(|_| format!("--deadline-ms: not a number: `{v}`"))?,
                );
            }
            "--parallel" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--parallel requires a value".to_string())?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--parallel: not a number: `{v}`"))?;
                if n == 0 {
                    return Err("--parallel requires at least 1 worker".to_string());
                }
                cfg.parallel = Some(n);
            }
            "--listen" => {
                cfg.listen = Some(
                    args.next()
                        .ok_or_else(|| "--listen requires an address".to_string())?,
                );
            }
            "--replica-of" => {
                cfg.replica_of = Some(
                    args.next()
                        .ok_or_else(|| "--replica-of requires a store directory".to_string())?,
                );
            }
            "--connect" => {
                cfg.connect = Some(
                    args.next()
                        .ok_or_else(|| "--connect requires an address".to_string())?,
                );
            }
            "--token" => {
                cfg.token = Some(
                    args.next()
                        .ok_or_else(|| "--token requires a value".to_string())?,
                );
            }
            "--promote" => {
                cfg.promote = Some(
                    args.next()
                        .ok_or_else(|| "--promote requires a replica address".to_string())?,
                );
            }
            "--leader-hint" => {
                cfg.leader_hint = Some(
                    args.next()
                        .ok_or_else(|| "--leader-hint requires an address".to_string())?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: xsql-cli [--db empty|figure1|nobel|university] [--open DIR] \
                            [--typed] [--serve] [--stats] [--deadline-ms N] [--parallel N] \
                            [--listen ADDR [--replica-of DIR] [--leader-hint ADDR]] \
                            [--connect ADDR] [--promote ADDR] [--token T] \
                            [script.xsql ...]\n\
                     --serve runs each script on its own concurrent service session \
                     (snapshot-isolated reads, serialized group-committed writes); \
                     --stats prints the telemetry exposition (statement latencies, \
                     WAL/service metrics, role/generation) after the scripts finish; \
                     --deadline-ms bounds every statement's wall-clock time; \
                     --parallel evaluates top-level SELECTs on N worker threads \
                     (results are bit-identical to sequential evaluation); \
                     --listen serves the database over TCP (see docs/SERVING.md) and \
                     drains gracefully on SIGTERM; with --replica-of DIR it serves a \
                     WAL-shipped read replica tailing that primary store directory; \
                     --leader-hint is the primary address replicas put in NotPrimary \
                     redirects; --connect runs the scripts (or an interactive prompt) \
                     against a remote server; --promote asks the replica at ADDR to \
                     become the primary (token-gated; see docs/SERVING.md for the \
                     failover runbook); --token sets the shared auth token."
                        .to_string(),
                )
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => cfg.scripts.push(path.to_string()),
        }
    }
    if cfg.deadline_ms.is_some() && !cfg.serve {
        return Err("--deadline-ms requires --serve".to_string());
    }
    if cfg.replica_of.is_some() && cfg.listen.is_none() {
        return Err("--replica-of requires --listen".to_string());
    }
    if cfg.connect.is_some() && (cfg.listen.is_some() || cfg.serve) {
        return Err("--connect excludes --listen/--serve".to_string());
    }
    if cfg.promote.is_some() && (cfg.listen.is_some() || cfg.serve || cfg.connect.is_some()) {
        return Err("--promote excludes --listen/--serve/--connect".to_string());
    }
    if cfg.leader_hint.is_some() && cfg.replica_of.is_none() {
        return Err("--leader-hint requires --replica-of".to_string());
    }
    Ok(cfg)
}

fn fixture(name: &str) -> Result<Database, String> {
    match name {
        "empty" => Ok(Database::new()),
        "figure1" => Ok(datagen::figure1_db()),
        "nobel" => Ok(datagen::nobel_db()),
        "university" => Ok(datagen::university_db()),
        other => Err(format!(
            "unknown fixture `{other}` (expected empty|figure1|nobel|university)"
        )),
    }
}

/// Opens (or initializes) a durable store at `dir`. A fresh directory is
/// seeded from `default_fixture`; an existing store loads the fixture its
/// `meta` file records — the WAL is a delta over that base, so the
/// `--db` flag is ignored on reopen.
fn open_store(dir: &str, default_fixture: &str) -> Result<Session, String> {
    let path = std::path::Path::new(dir);
    let tag = if Store::exists(&RealFs, path) {
        Store::read_base_tag(&RealFs, path).map_err(|e| e.to_string())?
    } else {
        default_fixture.to_string()
    };
    let db = fixture(&tag)?;
    let session = Session::open_dir(Box::new(RealFs), path, db, &tag, Default::default())
        .map_err(|e| format!("recovery failed: {e}"))?;
    // The recovery report goes to stderr: script output stays parseable,
    // but a salvage (dropped records, quarantined segments) is never
    // silent.
    if let Some(info) = session.recovery_info() {
        eprintln!("{}", info.report());
    }
    Ok(session)
}

/// Renders an outcome as the text the CLI prints for it (rendering OIDs
/// against `db`). Shared by the direct and `--serve` paths.
fn render_outcome(db: &Database, out: &Outcome) -> String {
    use std::fmt::Write as _;
    let mut t = String::new();
    match out {
        Outcome::Relation(rel) => write!(t, "{}", render_table(rel, db.oids())).unwrap(),
        Outcome::Created { oids } => {
            writeln!(t, "created {} object(s)", oids.len()).unwrap();
            for o in oids.iter().take(10) {
                writeln!(t, "  {}", db.render(*o)).unwrap();
            }
        }
        Outcome::ViewCreated { class, count } => {
            writeln!(t, "view {} created ({count} object(s))", db.render(*class)).unwrap();
        }
        Outcome::MethodDefined { class, method } => {
            writeln!(
                t,
                "method {} defined on {}",
                db.render(*method),
                db.render(*class)
            )
            .unwrap();
        }
        Outcome::Updated { entries } => writeln!(t, "updated {entries} entr(ies)").unwrap(),
        Outcome::ClassCreated { class } => {
            writeln!(t, "class {} created", db.render(*class)).unwrap()
        }
        Outcome::ObjectCreated { oid } => {
            writeln!(t, "object {} created", db.render(*oid)).unwrap()
        }
        Outcome::SignatureAdded { class, method } => {
            writeln!(
                t,
                "signature {} added to {}",
                db.render(*method),
                db.render(*class)
            )
            .unwrap();
        }
        Outcome::Prepared { name } => writeln!(t, "prepared `{name}`").unwrap(),
        Outcome::Explained { report } => writeln!(t, "{report}").unwrap(),
        Outcome::Stats { report } => writeln!(t, "{report}").unwrap(),
        Outcome::TransactionStarted => writeln!(t, "transaction started").unwrap(),
        Outcome::TransactionCommitted => writeln!(t, "transaction committed").unwrap(),
        Outcome::TransactionRolledBack => writeln!(t, "transaction rolled back").unwrap(),
        Outcome::WalEnabled => writeln!(t, "WAL enabled").unwrap(),
        Outcome::WalDisabled => writeln!(t, "WAL disabled").unwrap(),
        Outcome::Checkpointed => writeln!(t, "checkpoint written").unwrap(),
    }
    t
}

fn report(s: &Session, out: &Outcome) {
    print!("{}", render_outcome(s.db(), out));
}

/// Runs one script through its own service session. Returns the script's
/// rendered output and whether every statement succeeded. Shedding
/// (`Overloaded`) is retried after the suggested back-off; any other
/// error is reported and stops the script.
fn serve_script(svc: &Service, path: &str, src: &str) -> (String, bool) {
    use std::fmt::Write as _;
    let mut out = String::new();
    let stmts = match xsql::parse_script(src) {
        Ok(s) => s,
        Err(e) => return (format!("{path}: {e}\n"), false),
    };
    let mut h = loop {
        match svc.connect() {
            Ok(h) => break h,
            Err(ServiceError::Overloaded { retry_after }) => std::thread::sleep(retry_after),
            Err(e) => return (format!("{path}: {e}\n"), false),
        }
    };
    let ctx = QueryContext::default();
    for stmt in &stmts {
        let text = xsql::unparse_stmt(stmt);
        loop {
            match h.execute(&text, &ctx) {
                Ok(ExecResult::Read(r)) => {
                    write!(out, "{}", render_outcome(&r.snapshot, &r.outcome)).unwrap();
                }
                Ok(ExecResult::Write(ack)) | Ok(ExecResult::TxnCommitted(ack)) => {
                    // Render against the epoch the unit committed into.
                    let db = svc.epoch().db;
                    for o in &ack.outcomes {
                        write!(out, "{}", render_outcome(&db, o)).unwrap();
                    }
                }
                Ok(ExecResult::TxnStarted) => out.push_str("transaction started\n"),
                Ok(ExecResult::Buffered) => {}
                Ok(ExecResult::TxnRolledBack) => out.push_str("transaction rolled back\n"),
                Err(ServiceError::Overloaded { retry_after }) => {
                    std::thread::sleep(retry_after);
                    continue;
                }
                Err(e) => {
                    writeln!(out, "error: {e}").unwrap();
                    return (out, false);
                }
            }
            break;
        }
    }
    (out, true)
}

/// Set by the SIGTERM/SIGINT handler; serving loops poll it and drain.
static SHUTDOWN_REQUESTED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

extern "C" fn request_shutdown(_sig: i32) {
    SHUTDOWN_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Installs graceful-drain handlers for SIGTERM (15) and SIGINT (2)
/// via the libc `signal` symbol directly — the handler only flips an
/// `AtomicBool`, which is async-signal-safe.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(15, request_shutdown as *const () as usize);
        signal(2, request_shutdown as *const () as usize);
    }
}

fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(std::sync::atomic::Ordering::SeqCst)
}

fn server_config(cfg: &Config) -> net::ServerConfig {
    net::ServerConfig {
        auth_token: cfg.token.clone(),
        leader_hint: cfg.leader_hint.clone(),
        ..net::ServerConfig::default()
    }
}

/// Blocks until SIGTERM/SIGINT, then drains: new connections are
/// refused, in-flight statements finish, and the server shuts down
/// once idle (or after a grace period).
fn serve_until_signalled(server: net::Server) {
    while !shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("draining: refusing new connections");
    server.begin_drain();
    let grace = std::time::Instant::now();
    while server.conn_count() > 0 && grace.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

/// `--listen` over a local (possibly durable) session: the primary.
fn listen_primary(cfg: &Config, session: Session, addr: &str) -> ExitCode {
    install_signal_handlers();
    let svc = std::sync::Arc::new(Service::start(
        session,
        ServiceConfig {
            default_deadline: cfg.deadline_ms.map(Duration::from_millis),
            reader_parallelism: cfg.parallel.unwrap_or(0),
            ..ServiceConfig::default()
        },
    ));
    let server = match net::Server::start(
        net::Backend::Primary(std::sync::Arc::clone(&svc)),
        server_config(cfg),
        addr,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot listen on {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    println!("listening on {} (primary)", server.local_addr());
    let _ = io::stdout().flush();
    serve_until_signalled(server);
    let Ok(svc) = std::sync::Arc::try_unwrap(svc) else {
        unreachable!("server joined every connection");
    };
    if let Err(e) = svc.shutdown() {
        eprintln!("shutdown: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `--listen --replica-of DIR`: serve snapshot reads from a replica
/// tailing the primary's store directory.
fn listen_replica(cfg: &Config, primary_dir: &str, addr: &str) -> ExitCode {
    install_signal_handlers();
    let path = std::path::Path::new(primary_dir);
    // The primary may not have initialized its store yet; wait for it.
    while !Store::exists(&RealFs, path) {
        if shutdown_requested() {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let tag = match Store::read_base_tag(&RealFs, path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read primary store {primary_dir}: {e}");
            return ExitCode::from(2);
        }
    };
    let base = match fixture(&tag) {
        Ok(db) => db,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let core = net::ReplicaCore::new(
        Box::new(net::DirSource::new(Box::new(RealFs), path)),
        base,
        net::ReplicaConfig {
            base_tag: tag.clone(),
            opts: Default::default(),
        },
    );
    let replica = core.spawn(Duration::from_millis(50));
    let shared = replica.shared();
    let replica_slot = std::sync::Arc::new(std::sync::Mutex::new(Some(replica)));
    let server = match net::Server::start(net::Backend::Replica(shared), server_config(cfg), addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot listen on {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    // Promotion hook: a token-gated PROMOTE frame stops the tailer,
    // recovers the full shipped log (recovery *is* catch-up: the WAL on
    // disk is exactly what the primary shipped), bumps the fencing
    // generation, and swaps in a primary service over the promoted
    // store. The deposed primary sees the higher generation in the
    // manifest and fences itself instead of forking history.
    let hook_slot = std::sync::Arc::clone(&replica_slot);
    let promote_dir = primary_dir.to_string();
    let promote_tag = tag.clone();
    let default_deadline = cfg.deadline_ms.map(Duration::from_millis);
    let reader_parallelism = cfg.parallel.unwrap_or(0);
    server.set_promote_hook(Box::new(move || {
        let replica = hook_slot
            .lock()
            .map_err(|_| "replica slot poisoned".to_string())?
            .take()
            .ok_or_else(|| "replica already promoted".to_string())?;
        drop(replica.stop());
        let base = fixture(&promote_tag)?;
        let path = std::path::Path::new(&promote_dir);
        let mut session = Session::open_dir(
            Box::new(RealFs),
            path,
            base,
            &promote_tag,
            Default::default(),
        )
        .map_err(|e| format!("promotion recovery failed: {e}"))?;
        let generation = session
            .promote_store()
            .map_err(|e| format!("generation bump failed: {e}"))?;
        eprintln!("promoted: serving as primary at generation {generation}");
        Ok(std::sync::Arc::new(Service::start(
            session,
            ServiceConfig {
                default_deadline,
                reader_parallelism,
                ..ServiceConfig::default()
            },
        )))
    }));
    println!(
        "listening on {} (replica of {primary_dir})",
        server.local_addr()
    );
    let _ = io::stdout().flush();
    serve_until_signalled(server);
    if let Some(replica) = replica_slot.lock().ok().and_then(|mut slot| slot.take()) {
        let core = replica.stop();
        if let Some(err) = core.shared().last_error() {
            eprintln!("last sync error: {err}");
        }
    }
    ExitCode::SUCCESS
}

fn print_response(r: &net::Response) {
    if !r.columns.is_empty() {
        println!("{}", r.columns.join("\t"));
        for row in &r.rows {
            println!("{}", row.join("\t"));
        }
    }
    if !r.info.is_empty() {
        print!("{}", r.info);
    }
}

/// Executes one statement over the wire, retrying typed retryable
/// sheds after the server's suggested back-off. A `NotPrimary`
/// redirect is permanent for a single-connection client — report the
/// leader hint so the operator can reconnect there instead of
/// spinning.
fn remote_statement(c: &mut net::Client, stmt: &str) -> Result<net::Response, String> {
    for _ in 0..10_000 {
        match c.execute(stmt) {
            Ok(r) => return Ok(r),
            Err(net::NetError::NotPrimary { leader_hint }) => {
                return Err(if leader_hint.is_empty() {
                    "this node is not the primary (no leader hint; \
                     find the primary and --connect there)"
                        .to_string()
                } else {
                    format!("this node is not the primary; retry against --connect {leader_hint}")
                });
            }
            Err(net::NetError::Server {
                code, retry_after, ..
            }) if code.retryable() => {
                std::thread::sleep(retry_after.max(Duration::from_millis(1)));
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Err("server shed the statement 10000 times".to_string())
}

/// `--connect`: run scripts (or an interactive prompt) remotely.
fn client_mode(cfg: &Config, addr: &str) -> ExitCode {
    let token = cfg.token.clone().unwrap_or_default();
    let mut client = match net::Client::connect(addr, &token) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !cfg.scripts.is_empty() {
        for path in &cfg.scripts {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let stmts = match xsql::parse_script(&src) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for stmt in &stmts {
                match remote_statement(&mut client, &xsql::unparse_stmt(stmt)) {
                    Ok(r) => print_response(&r),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        if cfg.stats {
            match client.ping() {
                Ok(h) => println!(
                    "role={} generation={} epoch={} lag={}",
                    h.role, h.generation, h.epoch, h.lag
                ),
                Err(e) => eprintln!("health probe failed: {e}"),
            }
        }
        client.goodbye();
        return ExitCode::SUCCESS;
    }
    // Interactive prompt over the wire.
    println!(
        "xsql — connected to {addr} ({:?}, epoch {}). Statements end with `;`; \\q quits.",
        client.role(),
        client.epoch()
    );
    let stdin = io::stdin();
    let mut buf = String::new();
    print!("xsql> ");
    let _ = io::stdout().flush();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim() == "\\q" || line.trim() == "\\quit" {
            break;
        }
        buf.push_str(&line);
        buf.push('\n');
        while let Some(pos) = buf.find(';') {
            let stmt: String = buf.drain(..=pos).collect();
            let stmt = stmt.trim_end_matches(';').trim().to_string();
            if !stmt.is_empty() {
                match remote_statement(&mut client, &stmt) {
                    Ok(r) => print_response(&r),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
        }
        print!("xsql> ");
        let _ = io::stdout().flush();
    }
    client.goodbye();
    ExitCode::SUCCESS
}

fn run_statement(s: &mut Session, stmt: &str, typed: bool) {
    let trimmed = stmt.trim();
    if trimmed.is_empty() {
        return;
    }
    // --typed: try the Theorem 6.1 evaluator for plain SELECTs.
    if typed && trimmed.to_ascii_lowercase().starts_with("select") {
        match s.query_typed(trimmed) {
            Ok(rel) => {
                print!("{}", render_table(&rel, s.db().oids()));
                return;
            }
            Err(_) => { /* fall through to the general path */ }
        }
    }
    match s.run(trimmed) {
        Ok(out) => report(s, &out),
        Err(e) => eprintln!("error: {e}"),
    }
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(addr) = cfg.promote.clone() {
        // Admin mode: ask the replica at `addr` to become the primary.
        let token = cfg.token.clone().unwrap_or_default();
        let mut client = match net::Client::connect(&addr, &token) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot connect to {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match client.promote() {
            Ok(generation) => {
                println!("promoted: {addr} is primary at generation {generation}");
                client.goodbye();
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("promotion failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(addr) = cfg.connect.clone() {
        return client_mode(&cfg, &addr);
    }
    if let (Some(addr), Some(dir)) = (cfg.listen.clone(), cfg.replica_of.clone()) {
        return listen_replica(&cfg, &dir, &addr);
    }
    let mut session = if let Some(dir) = &cfg.open {
        match open_store(dir, &cfg.db) {
            Ok(s) => s,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::from(2);
            }
        }
    } else {
        match fixture(&cfg.db) {
            Ok(db) => Session::new(db),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::from(2);
            }
        }
    };
    if let Some(n) = cfg.parallel {
        session.set_parallelism(n);
    }

    if let Some(addr) = cfg.listen.clone() {
        return listen_primary(&cfg, session, &addr);
    }

    if cfg.serve {
        if cfg.scripts.is_empty() {
            eprintln!("--serve requires at least one script argument");
            return ExitCode::from(2);
        }
        let mut sources = Vec::new();
        for path in &cfg.scripts {
            match std::fs::read_to_string(path) {
                Ok(s) => sources.push((path.clone(), s)),
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let svc = std::sync::Arc::new(Service::start(
            session,
            ServiceConfig {
                default_deadline: cfg.deadline_ms.map(Duration::from_millis),
                reader_parallelism: cfg.parallel.unwrap_or(0),
                ..ServiceConfig::default()
            },
        ));
        let workers: Vec<_> = sources
            .into_iter()
            .map(|(path, src)| {
                let svc = std::sync::Arc::clone(&svc);
                std::thread::spawn(move || serve_script(&svc, &path, &src))
            })
            .collect();
        let mut failed = false;
        for (i, w) in workers.into_iter().enumerate() {
            let (text, ok) = w
                .join()
                .unwrap_or_else(|_| ("error: worker thread panicked\n".into(), false));
            failed |= !ok;
            for line in text.lines() {
                println!("[s{}] {line}", i + 1);
            }
        }
        let Ok(svc) = std::sync::Arc::try_unwrap(svc) else {
            unreachable!("all worker threads joined");
        };
        if cfg.stats {
            print!("{}", svc.stats_text());
        }
        if let Err(e) = svc.shutdown() {
            eprintln!("shutdown: {e}");
            return ExitCode::FAILURE;
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if !cfg.scripts.is_empty() {
        for path in &cfg.scripts {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match session.run_script(&src) {
                Ok(outs) => {
                    for out in &outs {
                        report(&session, out);
                    }
                }
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if cfg.stats {
            print!("{}", session.stats_report());
        }
        return ExitCode::SUCCESS;
    }

    // Interactive mode.
    println!(
        "xsql — {} database loaded ({} individuals){}. Statements end with `;`; \\q quits.",
        cfg.db,
        session.db().individual_count(),
        if session.has_store() {
            ", durable store attached"
        } else {
            ""
        }
    );
    let stdin = io::stdin();
    let mut buf = String::new();
    print!("xsql> ");
    let _ = io::stdout().flush();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim() == "\\q" || line.trim() == "\\quit" {
            break;
        }
        if let Some(dir) = line.trim().strip_prefix(".open ") {
            // Meta-command: attach (or create) a durable store and swap
            // the session to the recovered database.
            match open_store(dir.trim(), &cfg.db) {
                Ok(s) => {
                    session = s;
                    println!(
                        "opened store ({} individuals)",
                        session.db().individual_count()
                    );
                }
                Err(msg) => eprintln!("error: {msg}"),
            }
            print!("xsql> ");
            let _ = io::stdout().flush();
            continue;
        }
        buf.push_str(&line);
        buf.push('\n');
        if buf.trim_end().ends_with(';') {
            let stmt = buf.trim().trim_end_matches(';').to_string();
            buf.clear();
            run_statement(&mut session, &stmt, cfg.typed);
        } else if !buf.trim().is_empty() {
            print!("  ... ");
            let _ = io::stdout().flush();
            continue;
        }
        print!("xsql> ");
        let _ = io::stdout().flush();
    }
    if cfg.stats {
        print!("{}", session.stats_report());
    }
    ExitCode::SUCCESS
}
