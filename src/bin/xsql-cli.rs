//! The `xsql-cli` command-line tool: run XSQL scripts or an interactive
//! session against a fixture or an empty database.
//!
//! ```text
//! xsql-cli [--db empty|figure1|nobel|university] [--open DIR] [--typed] \
//!          [script.xsql ...]
//! ```
//!
//! With script arguments, each file is executed in order and results are
//! printed; without any, an interactive prompt starts (statements end
//! with `;`; `\q` quits). `--typed` routes SELECTs through the Theorem
//! 6.1 range-restricted evaluator when the query is strictly well-typed.
//!
//! `--open DIR` (or the interactive `.open DIR` meta-command) attaches a
//! durable store: on first use the directory is initialized over the
//! `--db` fixture; on reopen the fixture recorded in the store is loaded
//! and crash recovery replays the checkpoint + WAL tail. While a store is
//! attached, every committed statement is WAL-logged and fsync'd, so
//! committed work survives `kill -9`; `WAL ON|OFF` and `CHECKPOINT`
//! statements control logging and snapshotting.

use std::io::{self, BufRead, Write};
use std::process::ExitCode;

use oodb::Database;
use relalg::render_table;
use storage::{RealFs, Store};
use xsql::{Outcome, Session};

struct Config {
    db: String,
    open: Option<String>,
    typed: bool,
    scripts: Vec<String>,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        db: "figure1".to_string(),
        open: None,
        typed: false,
        scripts: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--db" => {
                cfg.db = args
                    .next()
                    .ok_or_else(|| "--db requires a value".to_string())?;
            }
            "--open" => {
                cfg.open = Some(
                    args.next()
                        .ok_or_else(|| "--open requires a directory".to_string())?,
                );
            }
            "--typed" => cfg.typed = true,
            "--help" | "-h" => {
                return Err(
                    "usage: xsql-cli [--db empty|figure1|nobel|university] [--open DIR] \
                            [--typed] [script.xsql ...]"
                        .to_string(),
                )
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => cfg.scripts.push(path.to_string()),
        }
    }
    Ok(cfg)
}

fn fixture(name: &str) -> Result<Database, String> {
    match name {
        "empty" => Ok(Database::new()),
        "figure1" => Ok(datagen::figure1_db()),
        "nobel" => Ok(datagen::nobel_db()),
        "university" => Ok(datagen::university_db()),
        other => Err(format!(
            "unknown fixture `{other}` (expected empty|figure1|nobel|university)"
        )),
    }
}

/// Opens (or initializes) a durable store at `dir`. A fresh directory is
/// seeded from `default_fixture`; an existing store loads the fixture its
/// `meta` file records — the WAL is a delta over that base, so the
/// `--db` flag is ignored on reopen.
fn open_store(dir: &str, default_fixture: &str) -> Result<Session, String> {
    let path = std::path::Path::new(dir);
    let tag = if Store::exists(&RealFs, path) {
        Store::read_base_tag(&RealFs, path).map_err(|e| e.to_string())?
    } else {
        default_fixture.to_string()
    };
    let db = fixture(&tag)?;
    Session::open_dir(Box::new(RealFs), path, db, &tag, Default::default())
        .map_err(|e| format!("recovery failed: {e}"))
}

fn report(s: &Session, out: &Outcome) {
    match out {
        Outcome::Relation(rel) => print!("{}", render_table(rel, s.db().oids())),
        Outcome::Created { oids } => {
            println!("created {} object(s)", oids.len());
            for o in oids.iter().take(10) {
                println!("  {}", s.db().render(*o));
            }
        }
        Outcome::ViewCreated { class, count } => {
            println!("view {} created ({count} object(s))", s.db().render(*class));
        }
        Outcome::MethodDefined { class, method } => {
            println!(
                "method {} defined on {}",
                s.db().render(*method),
                s.db().render(*class)
            );
        }
        Outcome::Updated { entries } => println!("updated {entries} entr(ies)"),
        Outcome::ClassCreated { class } => {
            println!("class {} created", s.db().render(*class))
        }
        Outcome::ObjectCreated { oid } => {
            println!("object {} created", s.db().render(*oid))
        }
        Outcome::SignatureAdded { class, method } => {
            println!(
                "signature {} added to {}",
                s.db().render(*method),
                s.db().render(*class)
            );
        }
        Outcome::Explained { report } => println!("{report}"),
        Outcome::TransactionStarted => println!("transaction started"),
        Outcome::TransactionCommitted => println!("transaction committed"),
        Outcome::TransactionRolledBack => println!("transaction rolled back"),
        Outcome::WalEnabled => println!("WAL enabled"),
        Outcome::WalDisabled => println!("WAL disabled"),
        Outcome::Checkpointed => println!("checkpoint written"),
    }
}

fn run_statement(s: &mut Session, stmt: &str, typed: bool) {
    let trimmed = stmt.trim();
    if trimmed.is_empty() {
        return;
    }
    // --typed: try the Theorem 6.1 evaluator for plain SELECTs.
    if typed && trimmed.to_ascii_lowercase().starts_with("select") {
        match s.query_typed(trimmed) {
            Ok(rel) => {
                print!("{}", render_table(&rel, s.db().oids()));
                return;
            }
            Err(_) => { /* fall through to the general path */ }
        }
    }
    match s.run(trimmed) {
        Ok(out) => report(s, &out),
        Err(e) => eprintln!("error: {e}"),
    }
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let mut session = if let Some(dir) = &cfg.open {
        match open_store(dir, &cfg.db) {
            Ok(s) => s,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::from(2);
            }
        }
    } else {
        match fixture(&cfg.db) {
            Ok(db) => Session::new(db),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::from(2);
            }
        }
    };

    if !cfg.scripts.is_empty() {
        for path in &cfg.scripts {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match session.run_script(&src) {
                Ok(outs) => {
                    for out in &outs {
                        report(&session, out);
                    }
                }
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    // Interactive mode.
    println!(
        "xsql — {} database loaded ({} individuals){}. Statements end with `;`; \\q quits.",
        cfg.db,
        session.db().individual_count(),
        if session.has_store() {
            ", durable store attached"
        } else {
            ""
        }
    );
    let stdin = io::stdin();
    let mut buf = String::new();
    print!("xsql> ");
    let _ = io::stdout().flush();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim() == "\\q" || line.trim() == "\\quit" {
            break;
        }
        if let Some(dir) = line.trim().strip_prefix(".open ") {
            // Meta-command: attach (or create) a durable store and swap
            // the session to the recovered database.
            match open_store(dir.trim(), &cfg.db) {
                Ok(s) => {
                    session = s;
                    println!(
                        "opened store ({} individuals)",
                        session.db().individual_count()
                    );
                }
                Err(msg) => eprintln!("error: {msg}"),
            }
            print!("xsql> ");
            let _ = io::stdout().flush();
            continue;
        }
        buf.push_str(&line);
        buf.push('\n');
        if buf.trim_end().ends_with(';') {
            let stmt = buf.trim().trim_end_matches(';').to_string();
            buf.clear();
            run_statement(&mut session, &stmt, cfg.typed);
        } else if !buf.trim().is_empty() {
            print!("  ... ");
            let _ = io::stdout().flush();
            continue;
        }
        print!("xsql> ");
        let _ = io::stdout().flush();
    }
    ExitCode::SUCCESS
}
