//! Property-based invariants of the object-oriented database engine.

use oodb::{Database, DbError, Oid};
use proptest::prelude::*;

/// Applies a sequence of random schema edits, rejecting cyclic IS-A
/// edges, and checks closure invariants afterwards.
fn build_schema(edges: &[(u8, u8)]) -> (Database, Vec<Oid>) {
    let mut db = Database::new();
    let classes: Vec<Oid> = (0..10)
        .map(|i| db.define_class(&format!("C{i}"), &[]).unwrap())
        .collect();
    for &(a, b) in edges {
        let (sub, sup) = (classes[(a % 10) as usize], classes[(b % 10) as usize]);
        // Cycles must be rejected; acyclic edges must succeed.
        let reachable = db.is_subclass(sup, sub);
        match db.add_is_a(sub, sup) {
            Ok(()) => assert!(!reachable || sub == sup),
            Err(DbError::IsACycle { .. }) => assert!(reachable || sub == sup),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    (db, classes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// IS-A stays a partial order: reflexive, transitive, antisymmetric.
    #[test]
    fn isa_is_a_partial_order(edges in proptest::collection::vec((0u8..10, 0u8..10), 0..25)) {
        let (db, classes) = build_schema(&edges);
        for &a in &classes {
            prop_assert!(db.is_subclass(a, a));
            prop_assert!(!db.is_strict_subclass(a, a));
            for &b in &classes {
                for &c in &classes {
                    if db.is_subclass(a, b) && db.is_subclass(b, c) {
                        prop_assert!(db.is_subclass(a, c), "transitivity");
                    }
                }
                if db.is_subclass(a, b) && db.is_subclass(b, a) {
                    prop_assert!(a == b, "antisymmetry");
                }
            }
        }
    }

    /// Membership is closed upward: an instance of C belongs to every
    /// superclass of C (§2 "Classes").
    #[test]
    fn membership_closed_under_isa(
        edges in proptest::collection::vec((0u8..10, 0u8..10), 0..25),
        homes in proptest::collection::vec(0u8..10, 1..8),
    ) {
        let (mut db, classes) = build_schema(&edges);
        for (i, &h) in homes.iter().enumerate() {
            let o = db.new_individual(&format!("o{i}"), &[classes[(h % 10) as usize]]).unwrap();
            for &c in &classes {
                let direct = classes[(h % 10) as usize];
                if db.is_subclass(direct, c) {
                    prop_assert!(db.is_instance_of(o, c));
                }
            }
            // And of the root.
            prop_assert!(db.is_instance_of(o, db.builtins().object));
        }
    }

    /// instances_of agrees pointwise with is_instance_of.
    #[test]
    fn extent_agrees_with_membership(
        edges in proptest::collection::vec((0u8..10, 0u8..10), 0..20),
        homes in proptest::collection::vec(0u8..10, 1..8),
    ) {
        let (mut db, classes) = build_schema(&edges);
        let mut all = Vec::new();
        for (i, &h) in homes.iter().enumerate() {
            all.push(db.new_individual(&format!("o{i}"), &[classes[(h % 10) as usize]]).unwrap());
        }
        for &c in &classes {
            let ext = db.instances_of(c);
            for &o in &all {
                prop_assert_eq!(ext.contains(&o), db.is_instance_of(o, c));
            }
        }
    }

    /// Interned literals are stable and value-faithful.
    #[test]
    fn literal_interning_roundtrip(ints in proptest::collection::vec(-1000i64..1000, 0..20),
                                   strs in proptest::collection::vec("[a-z]{0,8}", 0..10)) {
        let mut db = Database::new();
        for &v in &ints {
            let a = db.oids_mut().int(v);
            let b = db.oids_mut().int(v);
            prop_assert_eq!(a, b);
            prop_assert_eq!(db.oids().as_number(a), Some(v as f64));
        }
        for s in &strs {
            let a = db.oids_mut().str(s);
            let b = db.oids_mut().str(s);
            prop_assert_eq!(a, b);
            prop_assert_eq!(db.oids().as_str(a), Some(s.as_str()));
        }
    }

    /// Stored values always read back verbatim; removal makes the
    /// method undefined again.
    #[test]
    fn state_roundtrip(values in proptest::collection::vec((0u8..5, -50i64..50), 0..30)) {
        let mut db = Database::new();
        let c = db.define_class("Thing", &[]).unwrap();
        let objs: Vec<Oid> = (0..5).map(|i| db.new_individual(&format!("t{i}"), &[c]).unwrap()).collect();
        let m = db.oids_mut().sym("V");
        let mut last: std::collections::HashMap<Oid, i64> = Default::default();
        for &(o, v) in &values {
            let obj = objs[(o % 5) as usize];
            let val = db.oids_mut().int(v);
            db.set_scalar(obj, m, &[], val).unwrap();
            last.insert(obj, v);
        }
        for (&obj, &v) in &last {
            let got = db.value(obj, m, &[]).unwrap().unwrap();
            prop_assert_eq!(db.oids().as_number(got.as_scalar().unwrap()), Some(v as f64));
            db.remove_value(obj, m, &[]);
            prop_assert!(db.value(obj, m, &[]).unwrap().is_none());
        }
    }

    /// Default-value inheritance resolves deterministically and only
    /// errors on genuinely ambiguous diamonds.
    #[test]
    fn inheritance_lookup_total_or_conflict(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
        defaults in proptest::collection::vec((0u8..6, 0i64..5), 0..6),
    ) {
        let mut db = Database::new();
        let classes: Vec<Oid> = (0..6).map(|i| db.define_class(&format!("K{i}"), &[]).unwrap()).collect();
        for &(a, b) in &edges {
            let (sub, sup) = (classes[(a % 6) as usize], classes[(b % 6) as usize]);
            let _ = db.add_is_a(sub, sup);
        }
        let m = db.oids_mut().sym("D");
        for &(c, v) in &defaults {
            let val = db.oids_mut().int(v);
            db.set_scalar(classes[(c % 6) as usize], m, &[], val).unwrap();
        }
        let o = db.new_individual("obj", &[classes[0]]).unwrap();
        match db.value(o, m, &[]) {
            Ok(Some(v)) => {
                // The value must be one of the declared defaults on an
                // ancestor class.
                let got = db.oids().as_number(v.as_scalar().unwrap()).unwrap() as i64;
                let witnessed = defaults.iter().any(|&(c, dv)| {
                    dv == got && db.is_subclass(classes[0], classes[(c % 6) as usize])
                });
                prop_assert!(witnessed);
            }
            Ok(None) => {
                // No ancestor holds a default.
                let any_ancestor_default = defaults.iter().any(|&(c, _)| {
                    db.is_subclass(classes[0], classes[(c % 6) as usize])
                });
                prop_assert!(!any_ancestor_default);
            }
            Err(DbError::InheritanceConflict { .. }) => {
                // At least two incomparable ancestors with distinct
                // values must exist.
                let holders: Vec<Oid> = defaults
                    .iter()
                    .map(|&(c, _)| classes[(c % 6) as usize])
                    .filter(|&c| db.is_subclass(classes[0], c))
                    .collect();
                prop_assert!(holders.len() >= 2);
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The inverted indexes stay consistent with the stored state under
    /// arbitrary interleavings of writes and removals.
    #[test]
    fn method_index_consistent_under_mutation(
        ops in proptest::collection::vec((0u8..4, 0u8..5, 0u8..3, -5i64..5), 0..40),
    ) {
        let mut db = Database::new();
        let c = db.define_class("Thing", &[]).unwrap();
        let objs: Vec<Oid> = (0..5)
            .map(|i| db.new_individual(&format!("t{i}"), &[c]).unwrap())
            .collect();
        let methods: Vec<Oid> = (0..3)
            .map(|i| db.oids_mut().sym(&format!("m{i}")))
            .collect();
        for &(kind, o, m, v) in &ops {
            let (obj, meth) = (objs[(o % 5) as usize], methods[(m % 3) as usize]);
            let val = db.oids_mut().int(v);
            match kind % 4 {
                0 => db.set_scalar(obj, meth, &[], val).unwrap(),
                1 => db.set_set(obj, meth, &[], [val]).unwrap(),
                2 => {
                    // insert_into_set refuses on scalar entries — accept
                    // either outcome.
                    let _ = db.insert_into_set(obj, meth, &[], val);
                }
                _ => db.remove_value(obj, meth, &[]),
            }
        }
        // Index agrees with a full scan.
        for &meth in &methods {
            let mut scan_recvs = std::collections::BTreeSet::new();
            let mut scan_pairs = std::collections::BTreeSet::new();
            for (r, m2, _, val) in db.state_entries() {
                if m2 == meth {
                    scan_recvs.insert(r);
                    for member in val.members() {
                        scan_pairs.insert((member, r));
                    }
                }
            }
            let idx_recvs: std::collections::BTreeSet<Oid> =
                db.candidates_with_method(meth).into_iter().collect();
            // candidates_with_method is a superset of the scan (it also
            // adds inherited/computed candidates; none here, so equal).
            prop_assert_eq!(&idx_recvs, &scan_recvs);
            for &(member, r) in &scan_pairs {
                prop_assert!(db.receivers_by_value(meth, member).contains(&r));
            }
            // And nothing stale: every indexed (value, receiver) is live.
            for &v in &[-5i64, -1, 0, 1, 4] {
                let val = db.oids_mut().int(v);
                for r in db.receivers_by_value(meth, val) {
                    let live = db
                        .stored_entries_for(r, meth)
                        .any(|(_, value)| value.contains(val));
                    prop_assert!(live, "stale index entry");
                }
            }
        }
    }
}
