//! Classes, the IS-A hierarchy and method signatures.
//!
//! Classes are themselves objects (§2 "Classes"): a class is identified by
//! a symbolic OID and may carry attribute values just like individuals.
//! This module holds the purely schematic part: the IS-A DAG, the declared
//! signatures, and the explicit multiple-inheritance resolutions required
//! by the paper's adoption of Meyer's rule (§6.1).

use crate::oid::Oid;
use std::collections::HashMap;

/// A method signature `M : A1,…,Ak ~> R` declared in the scope of a class
/// (§2 "Types"). Attributes are 0-ary methods (`args` empty). `set_valued`
/// distinguishes `=>>`-style (double-arrow) from scalar declarations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    /// The method-object naming the method.
    pub method: Oid,
    /// Argument classes `A1,…,Ak` (not counting the receiver).
    pub args: Vec<Oid>,
    /// Result class `R`.
    pub result: Oid,
    /// True for `==>` (set-valued), false for `=>` (scalar).
    pub set_valued: bool,
}

impl Signature {
    /// Arity of the method (number of explicit arguments; the receiver
    /// is the implicit 0th argument, §2 "Types").
    pub fn arity(&self) -> usize {
        self.args.len()
    }
}

/// Per-class schema record.
#[derive(Debug, Clone, Default)]
pub struct ClassInfo {
    /// Direct superclasses (IS-A edges out of this class).
    pub supers: Vec<Oid>,
    /// Direct subclasses (redundant reverse edges, kept for cheap
    /// downward traversal in schema queries like query (4)).
    pub subs: Vec<Oid>,
    /// Signatures declared *directly* in this class. Structural
    /// inheritance (signature closure over superclasses) is computed in
    /// [`crate::Database`], never stored, so schema edits stay sound.
    pub sigs: Vec<Signature>,
    /// Explicit multiple-inheritance resolutions: for method `m`, inherit
    /// the behavior/default of the named superclass (§6.1, \[MEY88\]).
    pub resolutions: HashMap<Oid, Oid>,
}

/// The distinguished classes every database starts with. The paper makes
/// the system catalogue part of the class hierarchy (§2 "Attributes"):
/// `Object` contains all individual objects; `Class` and `Method` classify
/// the meta-objects, so class- and method-variables are ordinary sorted
/// variables ranging over their instances.
#[derive(Debug, Clone, Copy)]
pub struct Builtins {
    /// Root class of all individual objects.
    pub object: Oid,
    /// Metaclass of class-objects (catalogue).
    pub class: Oid,
    /// Metaclass of method-objects (catalogue; attributes included,
    /// since attributes are 0-ary methods).
    pub method: Oid,
    /// Builtin value class of numerals (integers and reals).
    pub numeral: Oid,
    /// Builtin value class of strings.
    pub string: Oid,
    /// Builtin value class of booleans.
    pub boolean: Oid,
    /// The object `nil`.
    pub nil: Oid,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::OidTable;

    #[test]
    fn signature_arity() {
        let mut t = OidTable::new();
        let m = t.sym("workstudy");
        let sem = t.sym("semester");
        let stu = t.sym("student");
        let s = Signature {
            method: m,
            args: vec![sem],
            result: stu,
            set_valued: true,
        };
        assert_eq!(s.arity(), 1);
        assert!(s.set_valued);
    }
}
