//! Typed ordered secondary index over attribute values.
//!
//! The inverted indexes the evaluator has had so far (`by_method`,
//! `by_method_value`) answer *exact-OID* lookups only: "which receivers
//! store this very object under this method". A cost-based planner
//! needs two things more: **order** (range predicates `X.Age < 30`
//! probe a contiguous key run instead of scanning the extent) and
//! **numeral insensitivity** (the paper's abstract-number semantics —
//! the numeral objects `2` and `2.0` denote the same number, so an
//! equality probe must land both spellings in one bucket).
//!
//! [`ValueKey`] is that typed key: numerals collapse onto their shared
//! numeric value encoded in total-order bits (the same bit-flip
//! encoding the evaluator's `OrdF64` uses), strings key by content,
//! booleans by value, and everything else by object identity. Keys of
//! different type families never compare equal, and within the map
//! each family forms one contiguous run (`Num < Str < Bool < Obj`), so
//! a numeric or lexicographic range probe is a single `BTreeMap` range
//! scan.
//!
//! The index itself lives in [`Database`](crate::Database) as
//! `by_method_key` and is maintained by the same two private helpers
//! (`index_insert` / `index_remove`) that keep the exact-OID indexes
//! alive. Every mutation path funnels through those helpers — direct
//! stores, undo application (`ROLLBACK` / savepoints), redo replay
//! (crash recovery and replicas), and snapshot import — so
//! transactional rollback and recovery keep this index consistent for
//! free. `Database::attr_index_divergence` checks the live structure
//! against a from-scratch rebuild, which the proptest suites run after
//! hostile interleavings.

use crate::oid::{Oid, OidData, OidTable};
use std::collections::{BTreeMap, BTreeSet};

/// A typed, totally-ordered index key for one stored value member.
///
/// Ordering is derived: the `Num` family sorts first (by the encoded
/// numeric value), then strings (lexicographic), booleans, and plain
/// object identities. See the module docs for why numerals collapse
/// across their `Int`/`Real` spellings.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueKey {
    /// A numeral, keyed by its numeric value in total-order bits
    /// ([`ValueKey::num`]). `Int(2)` and `Real(2.0)` share one key.
    Num(u64),
    /// A string object, keyed by content (contents are interned, so
    /// content equality coincides with object identity).
    Str(Box<str>),
    /// A boolean object.
    Bool(bool),
    /// Any other object (symbols, id-terms, nil), keyed by identity.
    Obj(Oid),
}

impl ValueKey {
    /// The key of an object: numerals by numeric value, strings by
    /// content, booleans by value, everything else by identity.
    pub fn of(oids: &OidTable, o: Oid) -> ValueKey {
        if let Some(n) = oids.as_number(o) {
            return ValueKey::num(n);
        }
        match oids.get(o) {
            OidData::Str(s) => ValueKey::Str(s.clone()),
            OidData::Bool(b) => ValueKey::Bool(*b),
            _ => ValueKey::Obj(o),
        }
    }

    /// A numeric key from a raw `f64` (total-order bit encoding: the
    /// encoded `u64`s compare exactly like the floats they encode).
    /// Probe keys for range scans come from here.
    pub fn num(v: f64) -> ValueKey {
        debug_assert!(!v.is_nan());
        let bits = v.to_bits();
        ValueKey::Num(if bits >> 63 == 0 {
            bits | (1 << 63)
        } else {
            !bits
        })
    }

    /// The numeric value of a `Num` key.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            ValueKey::Num(key) => {
                let bits = if key >> 63 == 1 {
                    key & !(1 << 63)
                } else {
                    !key
                };
                Some(f64::from_bits(bits))
            }
            _ => None,
        }
    }
}

/// One method's ordered index: typed value key → receivers with a
/// stored entry whose value contains a member with that key.
pub type AttrIndex = BTreeMap<ValueKey, BTreeSet<Oid>>;

/// Per-attribute statistics the planner's cost model reads: sizes of
/// one method's ordered index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrStats {
    /// Distinct value keys stored under the method.
    pub distinct_keys: usize,
    /// Total (key, receiver) postings — an upper bound on the receivers
    /// with any stored entry for the method.
    pub postings: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numerals_collapse_to_one_key() {
        let mut t = OidTable::new();
        let i = t.int(2);
        let r = t.real(2.0);
        assert_ne!(i, r);
        assert_eq!(ValueKey::of(&t, i), ValueKey::of(&t, r));
        assert_eq!(ValueKey::of(&t, i), ValueKey::num(2.0));
    }

    #[test]
    fn num_keys_order_like_floats_and_roundtrip() {
        for w in [-1e18, -2.5, -1.0, 0.0, 0.5, 3.0, 1e18].windows(2) {
            assert!(ValueKey::num(w[0]) < ValueKey::num(w[1]), "{w:?}");
        }
        for v in [-3.5, 0.0, 1.0, 2.5, 1e18] {
            assert_eq!(ValueKey::num(v).as_number(), Some(v));
        }
    }

    #[test]
    fn type_families_are_contiguous_runs() {
        let mut t = OidTable::new();
        let s = t.str("abc");
        let b = t.bool(true);
        let o = t.sym("plain");
        let num = ValueKey::num(1e300);
        let st = ValueKey::of(&t, s);
        let bo = ValueKey::of(&t, b);
        let ob = ValueKey::of(&t, o);
        assert!(num < st && st < bo && bo < ob);
        assert_eq!(st, ValueKey::Str("abc".into()));
        assert_eq!(ob.as_number(), None);
    }
}
