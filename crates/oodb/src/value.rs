//! Method/attribute values.
//!
//! §2 "Attributes": if an attribute is scalar its value is a single
//! object id; if it is set-valued, the value is a set of object ids.
//! Set-objects are modelled as tuple-objects with one set-valued
//! attribute, so this enum is the only value shape in the engine.

use crate::oid::Oid;
use std::collections::BTreeSet;

/// The value of a (possibly k-ary) method on a receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Val {
    /// Value of a scalar method: one object.
    Scalar(Oid),
    /// Value of a set-valued method: a set of objects.
    Set(BTreeSet<Oid>),
}

impl Val {
    /// Builds a set value from an iterator.
    pub fn set<I: IntoIterator<Item = Oid>>(items: I) -> Self {
        Val::Set(items.into_iter().collect())
    }

    /// True for `Val::Set`.
    pub fn is_set(&self) -> bool {
        matches!(self, Val::Set(_))
    }

    /// The members: a scalar behaves as the singleton of its object,
    /// matching how path expressions treat scalar steps (§3.1).
    pub fn members(&self) -> ValIter<'_> {
        match self {
            Val::Scalar(o) => ValIter::One(Some(*o)),
            Val::Set(s) => ValIter::Many(s.iter()),
        }
    }

    /// Number of member objects.
    pub fn len(&self) -> usize {
        match self {
            Val::Scalar(_) => 1,
            Val::Set(s) => s.len(),
        }
    }

    /// True if a set value is empty (a scalar is never empty).
    pub fn is_empty(&self) -> bool {
        match self {
            Val::Scalar(_) => false,
            Val::Set(s) => s.is_empty(),
        }
    }

    /// Membership test.
    pub fn contains(&self, o: Oid) -> bool {
        match self {
            Val::Scalar(v) => *v == o,
            Val::Set(s) => s.contains(&o),
        }
    }

    /// The scalar object, if this is a scalar value.
    pub fn as_scalar(&self) -> Option<Oid> {
        match self {
            Val::Scalar(o) => Some(*o),
            Val::Set(_) => None,
        }
    }
}

/// Iterator over the member objects of a [`Val`].
pub enum ValIter<'a> {
    /// Scalar case.
    One(Option<Oid>),
    /// Set case.
    Many(std::collections::btree_set::Iter<'a, Oid>),
}

impl Iterator for ValIter<'_> {
    type Item = Oid;
    fn next(&mut self) -> Option<Oid> {
        match self {
            ValIter::One(o) => o.take(),
            ValIter::Many(it) => it.next().copied(),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            ValIter::One(o) => {
                let n = usize::from(o.is_some());
                (n, Some(n))
            }
            ValIter::Many(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for ValIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::OidTable;

    #[test]
    fn scalar_members() {
        let mut t = OidTable::new();
        let o = t.sym("a");
        let v = Val::Scalar(o);
        assert_eq!(v.members().collect::<Vec<_>>(), vec![o]);
        assert_eq!(v.len(), 1);
        assert!(!v.is_empty());
        assert!(v.contains(o));
        assert_eq!(v.as_scalar(), Some(o));
    }

    #[test]
    fn set_members_sorted_unique() {
        let mut t = OidTable::new();
        let a = t.sym("a");
        let b = t.sym("b");
        let v = Val::set([b, a, b]);
        assert_eq!(v.len(), 2);
        assert!(v.contains(a) && v.contains(b));
        assert_eq!(v.as_scalar(), None);
    }

    #[test]
    fn empty_set_is_empty() {
        let v = Val::set([]);
        assert!(v.is_empty());
        assert_eq!(v.members().count(), 0);
    }
}
