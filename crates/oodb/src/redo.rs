//! Redo records — the durable mirror of the undo-op vocabulary.
//!
//! Where [`crate::undo`] records *inverses* for statement atomicity, this
//! module records *images*: each successful primitive mutation appends a
//! [`RedoOp`] describing the post-state of the touched slot. A write-ahead
//! log of redo ops, replayed in order onto the same starting database,
//! reconstructs the exact same state — that is the recovery path of the
//! `storage` crate.
//!
//! Redo recording is off by default and costs one `Option` check per
//! mutation when off. The `xsql` session enables it while a store is
//! attached with WAL logging on, collects the ops per statement, and
//! truncates them when a statement fails (the undo log has already rolled
//! the state back, so the redo span is void).
//!
//! Two deliberate scope limits, mirroring the undo log:
//!
//! * **OID interning is not logged.** An interned datum that no op refers
//!   to is semantically invisible; the storage codec re-interns every OID
//!   an op mentions structurally (by its [`crate::OidData`] term), so redo
//!   ops are position-independent across processes.
//! * **Computed-method implementations are not logged.** A
//!   [`crate::MethodImpl`] is an arbitrary closure and has no
//!   serialization; definitional statements (`ALTER CLASS … SELECT`,
//!   `CREATE VIEW`) are journaled by the session as statement text
//!   instead and replayed by re-execution.

use crate::oid::Oid;
use crate::schema::Signature;
use crate::value::Val;

/// One redo operation: the image of a single primitive mutation. Replay
/// applies images in recording order via
/// [`Database::apply_redo`](crate::Database::apply_redo); every variant
/// is idempotent, so replaying a log twice yields the same database as
/// replaying it once.
#[derive(Debug, Clone, PartialEq)]
pub enum RedoOp {
    /// Image of `define_class`: the class and its direct superclasses
    /// (in declaration order, `Object` already defaulted in).
    DefineClass {
        /// The new class-object.
        class: Oid,
        /// Direct superclasses, in order.
        supers: Vec<Oid>,
    },
    /// Image of `add_is_a`: one new IS-A edge.
    AddIsA {
        /// Subclass end of the edge.
        sub: Oid,
        /// Superclass end of the edge.
        sup: Oid,
    },
    /// Image of `set_scalar` / `set_set` / `insert_into_set`: the full
    /// post-state value of the entry (inserts log the whole resulting
    /// set, so replay never depends on the pre-state).
    PutState {
        /// The `(receiver, method, args)` key.
        key: (Oid, Oid, Vec<Oid>),
        /// The value after the mutation.
        val: Val,
    },
    /// Image of `remove_value` (and the per-entry part of
    /// `purge_object`): the entry is gone.
    RemoveState {
        /// The `(receiver, method, args)` key.
        key: (Oid, Oid, Vec<Oid>),
    },
    /// The object joined the individuals active domain.
    AddIndividual(Oid),
    /// The object left the individuals active domain.
    RemoveIndividual(Oid),
    /// The object became a direct instance of the class.
    AddMembership {
        /// The object.
        o: Oid,
        /// The class.
        class: Oid,
    },
    /// The object left the direct extent of the class.
    RemoveMembership {
        /// The object.
        o: Oid,
        /// The class.
        class: Oid,
    },
    /// The name was catalogued as a method-object.
    AddMethodObject(Oid),
    /// Image of `add_signature`: a signature declared in the class.
    AddSignature {
        /// The declaring class.
        class: Oid,
        /// The declared signature.
        sig: Signature,
    },
    /// Image of `resolve_inheritance`: an explicit conflict resolution.
    SetResolution {
        /// The resolving class.
        class: Oid,
        /// The conflicted method.
        method: Oid,
        /// The chosen superclass.
        from: Oid,
    },
}
