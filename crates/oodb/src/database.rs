//! The object-oriented database engine.
//!
//! A [`Database`] holds the OID interner, the class hierarchy (classes are
//! objects), the instance-of relation, explicitly stored method values
//! (tuple-object state), and computed methods (methods whose
//! implementation is a query, §5). It implements the semantic judgments
//! the paper relies on:
//!
//! * *defined / undefined / inapplicable* for attributes and methods (§2);
//! * behavioral inheritance with overriding and explicit conflict
//!   resolution (§2 "Inheritance", §6.1);
//! * structural inheritance — signatures closed over the IS-A DAG (§6.1);
//! * the active domain enumerations used by the naive query semantics of
//!   §3.4 (individual-, class- and method-variables range over the three
//!   sub-universes of objects).

use crate::attr_index::{AttrIndex, AttrStats, ValueKey};
use crate::error::{DbError, DbResult};
use crate::oid::{Oid, OidData, OidTable};
use crate::redo::RedoOp;
use crate::schema::{Builtins, ClassInfo, Signature};
use crate::snapshot::{ClassEntry, DbSnapshot};
use crate::undo::{Savepoint, UndoLog, UndoOp};
use crate::value::Val;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Maximum depth of nested computed-method invocation; guards against
/// accidental recursion in user-defined methods. Each level re-enters
/// the query evaluator, so the bound is conservative to keep well clear
/// of the thread stack.
pub const MAX_INVOKE_DEPTH: usize = 24;

/// Implementation of a computed method (§5: methods are defined similarly
/// to queries). The XSQL crate installs query-backed implementations;
/// native Rust closures can be installed too.
pub trait MethodImpl: Send + Sync {
    /// Invokes the method in the scope of `recv` with `args`. Returns
    /// `Ok(None)` when the method is *undefined* on these arguments (a
    /// null, not an error). `depth` is the current invocation depth.
    fn invoke(&self, db: &Database, recv: Oid, args: &[Oid], depth: usize)
        -> DbResult<Option<Val>>;

    /// Invocation for update methods, which may change database state
    /// (§5, `RaiseMngrSalary`). Defaults to the read-only path.
    fn invoke_mut(
        &self,
        db: &mut Database,
        recv: Oid,
        args: &[Oid],
        depth: usize,
    ) -> DbResult<Option<Val>> {
        self.invoke(db, recv, args, depth)
    }

    /// True if this method has side effects and must go through
    /// [`Database::invoke_update`].
    fn is_update(&self) -> bool {
        false
    }
}

type StateKey = (Oid, Oid, Vec<Oid>);

/// An in-memory object-oriented database.
#[derive(Clone)]
pub struct Database {
    oids: OidTable,
    builtins: Builtins,
    classes: HashMap<Oid, ClassInfo>,
    /// Deterministic class enumeration order (definition order).
    class_order: Vec<Oid>,
    /// Reflexive-transitive IS-A closure, recomputed on schema edits.
    ancestors: HashMap<Oid, BTreeSet<Oid>>,
    /// Direct classes of each registered object.
    instance_of: HashMap<Oid, BTreeSet<Oid>>,
    /// Direct extent of each class.
    extent: HashMap<Oid, BTreeSet<Oid>>,
    /// Active domain of individual objects (registered individuals plus
    /// every literal that has appeared in stored state).
    individuals: BTreeSet<Oid>,
    /// All method-objects (every name that appears in a signature or in
    /// stored state). These are the instances of the catalogue class
    /// `Method`, which method variables range over.
    method_objects: BTreeSet<Oid>,
    /// Explicit tuple-object state: (receiver, method, args) -> value.
    state: BTreeMap<StateKey, Val>,
    /// Inverted index: method -> receivers with any stored entry for it
    /// (class-objects included — their instances inherit the default).
    /// The paper's own reference point is \[BERT89\], "Indexing
    /// Techniques for Queries on Nested Objects".
    by_method: HashMap<Oid, BTreeSet<Oid>>,
    /// Inverted index: (method, value member) -> receivers.
    by_method_value: HashMap<(Oid, Oid), BTreeSet<Oid>>,
    /// Ordered secondary index: method -> typed value key -> receivers
    /// (see [`crate::attr_index`]). Numeral members collapse onto one
    /// numeric key, so equality probes are numeral-insensitive and
    /// range predicates scan a contiguous key run.
    by_method_key: HashMap<Oid, AttrIndex>,
    /// Computed methods: (defining class, method, arity) -> impl.
    computed: HashMap<(Oid, Oid, usize), Arc<dyn MethodImpl>>,
    /// Deterministic enumeration order of computed-method keys.
    computed_order: Vec<(Oid, Oid, usize)>,
    /// Active undo log; `Some` while a transaction is open, in which
    /// case every mutating entry point records its inverse here.
    undo: Option<UndoLog>,
    /// Redo buffer; `Some` while redo recording is enabled, in which
    /// case every mutating entry point appends its image here (see
    /// `crate::redo`). Collected by the durability layer.
    redo: Option<Vec<RedoOp>>,
    /// Monotonic counter of *definitional* changes: class definitions,
    /// IS-A edges, signatures, computed-method installs, inheritance
    /// resolutions — and, conservatively, any rollback (which may have
    /// reverted one of those). Compiled query plans are cached keyed on
    /// this value, so a schema change instantly invalidates every plan
    /// compiled against the old schema (see `xsql::vm`). Not persisted:
    /// a freshly opened database starts at 0 and every cache starts
    /// cold.
    schema_epoch: u64,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("oids", &self.oids.len())
            .field("classes", &self.class_order.len())
            .field("individuals", &self.individuals.len())
            .field("state_entries", &self.state.len())
            .field("computed_methods", &self.computed_order.len())
            .finish()
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Creates a database with the builtin catalogue: `Object` (root of
    /// all individuals) with value subclasses `Numeral`, `String`,
    /// `Boolean`, plus the meta-classes `Class` and `Method` that make
    /// the system catalogue part of the class hierarchy (§2).
    pub fn new() -> Self {
        let mut oids = OidTable::new();
        let object = oids.sym("Object");
        let class = oids.sym("Class");
        let method = oids.sym("Method");
        let numeral = oids.sym("Numeral");
        let string = oids.sym("String");
        let boolean = oids.sym("Boolean");
        let nil = oids.nil();
        let builtins = Builtins {
            object,
            class,
            method,
            numeral,
            string,
            boolean,
            nil,
        };
        let mut db = Database {
            oids,
            builtins,
            classes: HashMap::new(),
            class_order: Vec::new(),
            ancestors: HashMap::new(),
            instance_of: HashMap::new(),
            extent: HashMap::new(),
            individuals: BTreeSet::new(),
            method_objects: BTreeSet::new(),
            state: BTreeMap::new(),
            by_method: HashMap::new(),
            by_method_value: HashMap::new(),
            by_method_key: HashMap::new(),
            computed: HashMap::new(),
            computed_order: Vec::new(),
            undo: None,
            redo: None,
            schema_epoch: 0,
        };
        for (c, supers) in [
            (object, vec![]),
            (class, vec![]),
            (method, vec![]),
            (numeral, vec![object]),
            (string, vec![object]),
            (boolean, vec![object]),
        ] {
            db.classes.insert(
                c,
                ClassInfo {
                    supers,
                    ..ClassInfo::default()
                },
            );
            db.class_order.push(c);
        }
        for (c, sups) in [(object, vec![numeral, string, boolean])] {
            for s in sups {
                db.classes.get_mut(&c).unwrap().subs.push(s);
            }
        }
        db.recompute_closure();
        db
    }

    // ------------------------------------------------------------------
    // OID access
    // ------------------------------------------------------------------

    /// Read access to the OID interner.
    pub fn oids(&self) -> &OidTable {
        &self.oids
    }

    /// Write access to the OID interner (interning never invalidates
    /// existing handles).
    pub fn oids_mut(&mut self) -> &mut OidTable {
        &mut self.oids
    }

    /// The builtin catalogue classes.
    pub fn builtins(&self) -> Builtins {
        self.builtins
    }

    /// Renders an OID for messages/results.
    pub fn render(&self, o: Oid) -> String {
        self.oids.render(o)
    }

    // ------------------------------------------------------------------
    // Transactions (undo log; see `crate::undo`)
    // ------------------------------------------------------------------

    /// Opens an undo log (if none is open) and returns a [`Savepoint`]
    /// at the current position. While the log is open every mutating
    /// entry point records its inverse, so the span up to the returned
    /// mark can be unwound with [`Database::rollback_to`].
    pub fn begin(&mut self) -> Savepoint {
        let log = self.undo.get_or_insert_with(UndoLog::default);
        Savepoint(log.ops.len())
    }

    /// A [`Savepoint`] at the current position of the open log
    /// (opening one if necessary — equivalent to [`Database::begin`];
    /// the separate name marks intent at call sites: `begin` starts a
    /// span, `savepoint` subdivides one).
    pub fn savepoint(&mut self) -> Savepoint {
        self.begin()
    }

    /// Undoes every mutation recorded after `sp`, in reverse order. The
    /// log stays open (an enclosing span can still be rolled back
    /// further). Rolling back to a *stale* mark — one taken before the
    /// last [`Database::commit`], or beyond an earlier rollback — is an
    /// error ([`DbError::StaleSavepoint`]): the log no longer reaches
    /// that position, so honoring it silently would be a lie.
    pub fn rollback_to(&mut self, sp: Savepoint) -> DbResult<()> {
        let tail = match &mut self.undo {
            Some(log) if log.ops.len() >= sp.0 => log.ops.split_off(sp.0),
            _ => return Err(DbError::StaleSavepoint),
        };
        // Conservative: the reverted span may have contained definitional
        // changes, and re-deriving that from the tail is not worth the
        // complexity — a rollback is rare enough that one spurious plan
        // recompile does not matter.
        if !tail.is_empty() {
            self.bump_schema_epoch();
        }
        for op in tail.into_iter().rev() {
            self.apply_undo(op);
        }
        Ok(())
    }

    /// Closes the undo log, making everything recorded since
    /// [`Database::begin`] permanent. Recording stops until the next
    /// `begin`/`savepoint`; outstanding savepoints become stale.
    pub fn commit(&mut self) {
        self.undo = None;
    }

    /// True while an undo log is open.
    pub fn in_transaction(&self) -> bool {
        self.undo.is_some()
    }

    /// The current schema epoch: bumped by every definitional change
    /// (class/IS-A/signature/computed-method) and conservatively by
    /// every rollback. Plan caches key compiled statements on this
    /// value so a stale plan can never execute (see `xsql::vm`).
    pub fn schema_epoch(&self) -> u64 {
        self.schema_epoch
    }

    /// Marks a definitional change. Called from every schema mutator,
    /// including the redo-replay paths, so the epoch moves identically
    /// under live execution and crash recovery.
    fn bump_schema_epoch(&mut self) {
        self.schema_epoch += 1;
    }

    /// Number of inverse operations recorded so far (0 when no log is
    /// open). Exposed for tests and diagnostics.
    pub fn undo_depth(&self) -> usize {
        self.undo.as_ref().map_or(0, |l| l.len())
    }

    fn record(&mut self, op: UndoOp) {
        if let Some(log) = &mut self.undo {
            log.ops.push(op);
        }
    }

    // ------------------------------------------------------------------
    // Redo recording (durability; see `crate::redo`)
    // ------------------------------------------------------------------

    /// Enables or disables redo recording. While enabled, every mutating
    /// entry point appends its image to the redo buffer; the durability
    /// layer drains the buffer per committed statement with
    /// [`Database::take_redo_from`]. Disabling drops any buffered ops.
    pub fn set_redo_logging(&mut self, on: bool) {
        if on {
            if self.redo.is_none() {
                self.redo = Some(Vec::new());
            }
        } else {
            self.redo = None;
        }
    }

    /// True while redo recording is enabled.
    pub fn redo_logging(&self) -> bool {
        self.redo.is_some()
    }

    /// Number of redo ops buffered so far (0 when recording is off).
    /// Callers mark this before a statement and drain or truncate back
    /// to the mark afterwards.
    pub fn redo_len(&self) -> usize {
        self.redo.as_ref().map_or(0, |b| b.len())
    }

    /// Discards every redo op recorded at or after `mark` (used when a
    /// statement fails: the undo log already rolled the state back, so
    /// the redo span is void). No-op when recording is off.
    pub fn truncate_redo(&mut self, mark: usize) {
        if let Some(buf) = &mut self.redo {
            buf.truncate(mark);
        }
    }

    /// Removes and returns every redo op recorded at or after `mark`
    /// (the image of one committed statement). Empty when recording is
    /// off or nothing was recorded.
    pub fn take_redo_from(&mut self, mark: usize) -> Vec<RedoOp> {
        match &mut self.redo {
            Some(buf) if buf.len() > mark => buf.split_off(mark),
            _ => Vec::new(),
        }
    }

    fn emit(&mut self, op: RedoOp) {
        if let Some(buf) = &mut self.redo {
            buf.push(op);
        }
    }

    /// True when [`Database::emit`] would record; call sites guard
    /// op construction with this when building the op clones data.
    fn redo_on(&self) -> bool {
        self.redo.is_some()
    }

    /// Applies one redo image. Works on the raw fields (plus the
    /// derived-index helpers), so nothing here records into either log;
    /// every variant is idempotent, so replaying a log twice is safe.
    /// Structural preconditions (referenced classes exist) are checked
    /// because recovery feeds this from disk.
    pub fn apply_redo(&mut self, op: &RedoOp) -> DbResult<()> {
        // Definitional redo ops move the schema epoch exactly like their
        // live counterparts, so plan caches stay sound under WAL replay.
        if matches!(
            op,
            RedoOp::DefineClass { .. }
                | RedoOp::AddIsA { .. }
                | RedoOp::AddSignature { .. }
                | RedoOp::AddMethodObject(_)
                | RedoOp::SetResolution { .. }
        ) {
            self.bump_schema_epoch();
        }
        match op {
            RedoOp::DefineClass { class, supers } => {
                if self.classes.contains_key(class) {
                    return Ok(());
                }
                for s in supers {
                    if !self.classes.contains_key(s) {
                        return Err(DbError::UnknownClass(self.render(*s)));
                    }
                }
                self.classes.insert(
                    *class,
                    ClassInfo {
                        supers: supers.clone(),
                        ..ClassInfo::default()
                    },
                );
                self.class_order.push(*class);
                for s in supers {
                    self.classes.get_mut(s).unwrap().subs.push(*class);
                }
                self.recompute_closure();
            }
            RedoOp::AddIsA { sub, sup } => {
                for c in [sub, sup] {
                    if !self.classes.contains_key(c) {
                        return Err(DbError::UnknownClass(self.render(*c)));
                    }
                }
                if !self.classes[sub].supers.contains(sup) {
                    self.classes.get_mut(sub).unwrap().supers.push(*sup);
                    self.classes.get_mut(sup).unwrap().subs.push(*sub);
                    self.recompute_closure();
                }
            }
            RedoOp::PutState { key, val } => {
                let (recv, method) = (key.0, key.1);
                if let Some(old) = self.state.insert(key.clone(), val.clone()) {
                    self.index_remove(recv, method, &old);
                }
                self.index_insert(recv, method, val);
            }
            RedoOp::RemoveState { key } => {
                if let Some(old) = self.state.remove(key) {
                    self.index_remove(key.0, key.1, &old);
                }
            }
            RedoOp::AddIndividual(o) => {
                self.individuals.insert(*o);
            }
            RedoOp::RemoveIndividual(o) => {
                self.individuals.remove(o);
            }
            RedoOp::AddMembership { o, class } => {
                self.instance_of.entry(*o).or_default().insert(*class);
                self.extent.entry(*class).or_default().insert(*o);
            }
            RedoOp::RemoveMembership { o, class } => {
                if let Some(s) = self.instance_of.get_mut(o) {
                    s.remove(class);
                }
                if let Some(s) = self.extent.get_mut(class) {
                    s.remove(o);
                }
            }
            RedoOp::AddMethodObject(m) => {
                self.method_objects.insert(*m);
            }
            RedoOp::AddSignature { class, sig } => {
                let info = self
                    .classes
                    .get_mut(class)
                    .ok_or_else(|| DbError::UnknownClass(format!("{class:?}")))?;
                if !info.sigs.contains(sig) {
                    info.sigs.push(sig.clone());
                }
            }
            RedoOp::SetResolution {
                class,
                method,
                from,
            } => {
                let info = self
                    .classes
                    .get_mut(class)
                    .ok_or_else(|| DbError::UnknownClass(format!("{class:?}")))?;
                info.resolutions.insert(*method, *from);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Snapshots (durability; see `crate::snapshot`)
    // ------------------------------------------------------------------

    /// Exports the complete persistent state as plain data. Computed
    /// methods are not included (see [`DbSnapshot`]); neither log is.
    pub fn export_snapshot(&self) -> DbSnapshot {
        let classes = self
            .class_order
            .iter()
            .map(|&c| {
                let info = &self.classes[&c];
                let mut resolutions: Vec<(Oid, Oid)> =
                    info.resolutions.iter().map(|(&m, &f)| (m, f)).collect();
                resolutions.sort();
                ClassEntry {
                    class: c,
                    supers: info.supers.clone(),
                    sigs: info.sigs.clone(),
                    resolutions,
                }
            })
            .collect();
        let mut instance_of: Vec<(Oid, Vec<Oid>)> = self
            .instance_of
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(&o, s)| (o, s.iter().copied().collect()))
            .collect();
        instance_of.sort_by_key(|e| e.0);
        DbSnapshot {
            oids: self.oids.entries().to_vec(),
            classes,
            instance_of,
            individuals: self.individuals.iter().copied().collect(),
            method_objects: self.method_objects.iter().copied().collect(),
            state: self
                .state
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Rebuilds a live database from a snapshot, recomputing every
    /// derived index (IS-A closure, extents, method indexes). The
    /// resulting database has no computed methods and no open logs;
    /// callers replay definitional statements afterwards.
    pub fn import_snapshot(snap: DbSnapshot) -> DbResult<Database> {
        let mut oids = OidTable::from_entries(snap.oids);
        let builtins = Builtins {
            object: oids.sym("Object"),
            class: oids.sym("Class"),
            method: oids.sym("Method"),
            numeral: oids.sym("Numeral"),
            string: oids.sym("String"),
            boolean: oids.sym("Boolean"),
            nil: oids.nil(),
        };
        let mut db = Database {
            oids,
            builtins,
            classes: HashMap::new(),
            class_order: Vec::new(),
            ancestors: HashMap::new(),
            instance_of: HashMap::new(),
            extent: HashMap::new(),
            individuals: snap.individuals.into_iter().collect(),
            method_objects: snap.method_objects.into_iter().collect(),
            state: BTreeMap::new(),
            by_method: HashMap::new(),
            by_method_value: HashMap::new(),
            by_method_key: HashMap::new(),
            computed: HashMap::new(),
            computed_order: Vec::new(),
            undo: None,
            redo: None,
            schema_epoch: 0,
        };
        for ce in snap.classes {
            db.classes.insert(
                ce.class,
                ClassInfo {
                    supers: ce.supers,
                    subs: Vec::new(),
                    sigs: ce.sigs,
                    resolutions: ce.resolutions.into_iter().collect(),
                },
            );
            db.class_order.push(ce.class);
        }
        // Rebuild direct-subclass lists from the supers edges, then the
        // IS-A closure. Iterating class_order keeps the order
        // deterministic.
        let order = db.class_order.clone();
        for &c in &order {
            for s in db.classes[&c].supers.clone() {
                db.classes
                    .get_mut(&s)
                    .ok_or_else(|| DbError::UnknownClass(format!("{s:?}")))?
                    .subs
                    .push(c);
            }
        }
        db.recompute_closure();
        for (o, classes) in snap.instance_of {
            for c in classes {
                if !db.classes.contains_key(&c) {
                    return Err(DbError::UnknownClass(db.render(c)));
                }
                db.instance_of.entry(o).or_default().insert(c);
                db.extent.entry(c).or_default().insert(o);
            }
        }
        for (key, val) in snap.state {
            let (recv, method) = (key.0, key.1);
            db.state.insert(key, val.clone());
            db.index_insert(recv, method, &val);
        }
        Ok(db)
    }

    /// Applies one inverse operation. Works on the raw fields (plus the
    /// derived-index helpers), so nothing here records into the log.
    fn apply_undo(&mut self, op: UndoOp) {
        match op {
            UndoOp::UndefineClass(c) => {
                if let Some(info) = self.classes.remove(&c) {
                    self.class_order.retain(|&x| x != c);
                    for s in info.supers {
                        if let Some(si) = self.classes.get_mut(&s) {
                            si.subs.retain(|&x| x != c);
                        }
                    }
                    self.recompute_closure();
                }
            }
            UndoOp::RemoveIsA { sub, sup } => {
                if let Some(i) = self.classes.get_mut(&sub) {
                    i.supers.retain(|&x| x != sup);
                }
                if let Some(i) = self.classes.get_mut(&sup) {
                    i.subs.retain(|&x| x != sub);
                }
                self.recompute_closure();
            }
            UndoOp::RestoreState { key, old } => {
                let (recv, method) = (key.0, key.1);
                if let Some(cur) = self.state.remove(&key) {
                    self.index_remove(recv, method, &cur);
                }
                if let Some(v) = old {
                    self.state.insert(key, v.clone());
                    self.index_insert(recv, method, &v);
                }
            }
            UndoOp::RestoreIndividual { o, present } => {
                if present {
                    self.individuals.insert(o);
                } else {
                    self.individuals.remove(&o);
                }
            }
            UndoOp::RestoreMembership { o, class, present } => {
                if present {
                    self.instance_of.entry(o).or_default().insert(class);
                    self.extent.entry(class).or_default().insert(o);
                } else {
                    if let Some(s) = self.instance_of.get_mut(&o) {
                        s.remove(&class);
                    }
                    if let Some(s) = self.extent.get_mut(&class) {
                        s.remove(&o);
                    }
                }
            }
            UndoOp::RestoreMethodObject { m, present } => {
                if present {
                    self.method_objects.insert(m);
                } else {
                    self.method_objects.remove(&m);
                }
            }
            UndoOp::RemoveSignature { class, sig } => {
                if let Some(i) = self.classes.get_mut(&class) {
                    if let Some(pos) = i.sigs.iter().rposition(|s| *s == sig) {
                        i.sigs.remove(pos);
                    }
                }
            }
            UndoOp::RestoreResolution { class, method, old } => {
                if let Some(i) = self.classes.get_mut(&class) {
                    match old {
                        Some(from) => {
                            i.resolutions.insert(method, from);
                        }
                        None => {
                            i.resolutions.remove(&method);
                        }
                    }
                }
            }
            UndoOp::RestoreComputed { key, old } => match old {
                Some(imp) => {
                    self.computed.insert(key, imp);
                }
                None => {
                    self.computed.remove(&key);
                    if let Some(pos) = self.computed_order.iter().rposition(|k| *k == key) {
                        self.computed_order.remove(pos);
                    }
                }
            },
        }
    }

    // ------------------------------------------------------------------
    // Schema: classes and IS-A
    // ------------------------------------------------------------------

    /// Defines a new class. With no superclasses it is placed directly
    /// under `Object`, so every class of individuals reaches the root
    /// (the paper's `Object` "contains all individual objects").
    pub fn define_class(&mut self, name: &str, supers: &[Oid]) -> DbResult<Oid> {
        let c = self.oids.sym(name);
        if self.classes.contains_key(&c) {
            return Err(DbError::DuplicateClass(name.to_string()));
        }
        let supers = if supers.is_empty() {
            vec![self.builtins.object]
        } else {
            supers.to_vec()
        };
        for s in &supers {
            if !self.classes.contains_key(s) {
                return Err(DbError::UnknownClass(self.render(*s)));
            }
        }
        self.classes.insert(
            c,
            ClassInfo {
                supers: supers.clone(),
                ..ClassInfo::default()
            },
        );
        self.class_order.push(c);
        for &s in &supers {
            self.classes.get_mut(&s).unwrap().subs.push(c);
        }
        self.recompute_closure();
        self.record(UndoOp::UndefineClass(c));
        self.emit(RedoOp::DefineClass { class: c, supers });
        self.bump_schema_epoch();
        Ok(c)
    }

    /// Adds an IS-A edge `sub -> sup`, rejecting cycles (§2: IS-A is
    /// acyclic).
    pub fn add_is_a(&mut self, sub: Oid, sup: Oid) -> DbResult<()> {
        for c in [sub, sup] {
            if !self.classes.contains_key(&c) {
                return Err(DbError::UnknownClass(self.render(c)));
            }
        }
        if sub == sup || self.is_subclass(sup, sub) {
            return Err(DbError::IsACycle {
                sub: self.render(sub),
                sup: self.render(sup),
            });
        }
        if !self.classes[&sub].supers.contains(&sup) {
            self.classes.get_mut(&sub).unwrap().supers.push(sup);
            self.classes.get_mut(&sup).unwrap().subs.push(sub);
            self.recompute_closure();
            self.record(UndoOp::RemoveIsA { sub, sup });
            self.emit(RedoOp::AddIsA { sub, sup });
            self.bump_schema_epoch();
        }
        Ok(())
    }

    fn recompute_closure(&mut self) {
        self.ancestors.clear();
        // Iterative DFS with memoization over the acyclic IS-A graph.
        let order = self.class_order.clone();
        for c in order {
            self.closure_of(c);
        }
    }

    fn closure_of(&mut self, c: Oid) -> BTreeSet<Oid> {
        if let Some(s) = self.ancestors.get(&c) {
            return s.clone();
        }
        let mut acc = BTreeSet::new();
        acc.insert(c);
        let supers = self.classes[&c].supers.clone();
        for s in supers {
            acc.extend(self.closure_of(s));
        }
        self.ancestors.insert(c, acc.clone());
        acc
    }

    /// True if `o` is a class-object.
    pub fn is_class(&self, o: Oid) -> bool {
        self.classes.contains_key(&o)
    }

    /// True if `o` is a method-object (appears as a method/attribute
    /// name anywhere in the schema or state).
    pub fn is_method_object(&self, o: Oid) -> bool {
        self.method_objects.contains(&o)
    }

    /// Reflexive subclass test: `sub` ⊑ `sup`.
    pub fn is_subclass(&self, sub: Oid, sup: Oid) -> bool {
        self.ancestors.get(&sub).is_some_and(|a| a.contains(&sup))
    }

    /// The *strict* `subclassOf` relation of query (4): `Cl subclassOf
    /// Cl` is always false.
    pub fn is_strict_subclass(&self, sub: Oid, sup: Oid) -> bool {
        sub != sup && self.is_subclass(sub, sup)
    }

    /// All (non-strict) ancestors of a class, including itself.
    pub fn ancestors_of(&self, c: Oid) -> impl Iterator<Item = Oid> + '_ {
        self.ancestors.get(&c).into_iter().flatten().copied()
    }

    /// All strict descendants of a class (excluding itself), in
    /// deterministic order.
    pub fn strict_descendants(&self, c: Oid) -> Vec<Oid> {
        self.class_order
            .iter()
            .copied()
            .filter(|&d| self.is_strict_subclass(d, c))
            .collect()
    }

    /// Deterministic enumeration of all class-objects (the range of
    /// class variables, §3.1 query (4)).
    pub fn classes(&self) -> impl Iterator<Item = Oid> + '_ {
        self.class_order.iter().copied()
    }

    /// Deterministic enumeration of all method-objects (the range of
    /// method variables, §3.1 query (3)).
    pub fn method_objects(&self) -> impl Iterator<Item = Oid> + '_ {
        self.method_objects.iter().copied()
    }

    /// Direct superclasses of a class.
    pub fn direct_supers(&self, c: Oid) -> &[Oid] {
        self.classes
            .get(&c)
            .map(|i| i.supers.as_slice())
            .unwrap_or(&[])
    }

    // ------------------------------------------------------------------
    // Schema: signatures (structural inheritance)
    // ------------------------------------------------------------------

    /// Declares a signature `method : args ~> result` in the scope of
    /// `class`. The method name becomes a method-object.
    pub fn add_signature(
        &mut self,
        class: Oid,
        method: &str,
        args: &[Oid],
        result: Oid,
        set_valued: bool,
    ) -> DbResult<Oid> {
        if !self.classes.contains_key(&class) {
            return Err(DbError::UnknownClass(self.render(class)));
        }
        for a in args.iter().chain(std::iter::once(&result)) {
            if !self.classes.contains_key(a) {
                return Err(DbError::UnknownClass(self.render(*a)));
            }
        }
        let m = self.oids.sym(method);
        let sig = Signature {
            method: m,
            args: args.to_vec(),
            result,
            set_valued,
        };
        let info = self.classes.get_mut(&class).unwrap();
        if !info.sigs.contains(&sig) {
            info.sigs.push(sig.clone());
            self.emit(RedoOp::AddSignature {
                class,
                sig: sig.clone(),
            });
            self.record(UndoOp::RemoveSignature { class, sig });
        }
        if self.method_objects.insert(m) {
            self.record(UndoOp::RestoreMethodObject { m, present: false });
            self.emit(RedoOp::AddMethodObject(m));
        }
        self.bump_schema_epoch();
        Ok(m)
    }

    /// Signatures declared *directly* in `class`.
    pub fn direct_signatures(&self, class: Oid) -> &[Signature] {
        self.classes
            .get(&class)
            .map(|i| i.sigs.as_slice())
            .unwrap_or(&[])
    }

    /// Structural inheritance (§6.1): the set of signatures of `class`
    /// consists of all signatures declared in the class and all its
    /// ancestors — types are always inherited and never overwritten.
    pub fn all_signatures(&self, class: Oid) -> Vec<(Oid, Signature)> {
        let mut out = Vec::new();
        if let Some(anc) = self.ancestors.get(&class) {
            // Iterate in class_order for determinism.
            for c in &self.class_order {
                if anc.contains(c) {
                    for s in &self.classes[c].sigs {
                        out.push((*c, s.clone()));
                    }
                }
            }
        }
        out
    }

    /// Every `(defining class, signature)` pair for `method` of the
    /// given arity anywhere in the schema — the candidate type
    /// expressions for a type assignment (§6.2).
    pub fn signatures_of_method(&self, method: Oid, arity: usize) -> Vec<(Oid, Signature)> {
        let mut out = Vec::new();
        for c in &self.class_order {
            for s in &self.classes[c].sigs {
                if s.method == method && s.arity() == arity {
                    out.push((*c, s.clone()));
                }
            }
        }
        out
    }

    /// Declares that `class` resolves the multiple-inheritance conflict
    /// for `method` in favor of the definition in `from_super` (Meyer's
    /// explicit-choice rule, §6.1).
    pub fn resolve_inheritance(
        &mut self,
        class: Oid,
        method: Oid,
        from_super: Oid,
    ) -> DbResult<()> {
        if !self.classes.contains_key(&class) {
            return Err(DbError::UnknownClass(self.render(class)));
        }
        if !self.is_subclass(class, from_super) {
            return Err(DbError::WrongSort {
                oid: self.render(from_super),
                expected: "superclass of the resolving class",
            });
        }
        let old = self
            .classes
            .get_mut(&class)
            .unwrap()
            .resolutions
            .insert(method, from_super);
        self.record(UndoOp::RestoreResolution { class, method, old });
        self.emit(RedoOp::SetResolution {
            class,
            method,
            from: from_super,
        });
        self.bump_schema_epoch();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Instances
    // ------------------------------------------------------------------

    /// Creates a new named individual object, an instance of each class
    /// in `classes`.
    pub fn new_individual(&mut self, name: &str, classes: &[Oid]) -> DbResult<Oid> {
        let o = self.oids.sym(name);
        self.register_individual(o, classes)?;
        Ok(o)
    }

    /// Registers an existing OID (e.g. an id-term produced by a view's
    /// id-function, §4.1) as an individual instance of the given classes.
    pub fn register_individual(&mut self, o: Oid, classes: &[Oid]) -> DbResult<()> {
        for c in classes {
            if !self.classes.contains_key(c) {
                return Err(DbError::UnknownClass(self.render(*c)));
            }
        }
        if self.individuals.insert(o) {
            self.record(UndoOp::RestoreIndividual { o, present: false });
            self.emit(RedoOp::AddIndividual(o));
        }
        for &c in classes {
            let fresh = self.instance_of.entry(o).or_default().insert(c);
            self.extent.entry(c).or_default().insert(o);
            if fresh {
                self.record(UndoOp::RestoreMembership {
                    o,
                    class: c,
                    present: false,
                });
                self.emit(RedoOp::AddMembership { o, class: c });
            }
        }
        Ok(())
    }

    /// Adds `obj` to the direct extent of `class`.
    pub fn add_instance(&mut self, obj: Oid, class: Oid) -> DbResult<()> {
        self.register_individual(obj, &[class])
    }

    /// Removes `obj` from the direct extent of `class` (the converse of
    /// [`Database::add_instance`]; the paper's model lets class
    /// membership change over time, §2 "Classes").
    pub fn remove_instance(&mut self, obj: Oid, class: Oid) {
        let mut held = false;
        if let Some(s) = self.instance_of.get_mut(&obj) {
            held |= s.remove(&class);
        }
        if let Some(s) = self.extent.get_mut(&class) {
            held |= s.remove(&obj);
        }
        if held {
            self.record(UndoOp::RestoreMembership {
                o: obj,
                class,
                present: true,
            });
            self.emit(RedoOp::RemoveMembership { o: obj, class });
        }
    }

    /// Direct classes of an object, including the implied builtin class
    /// of literal objects (a numeral is an instance of `Numeral`, etc.).
    pub fn direct_classes(&self, o: Oid) -> Vec<Oid> {
        let mut out: Vec<Oid> = self
            .instance_of
            .get(&o)
            .into_iter()
            .flatten()
            .copied()
            .collect();
        match self.oids.get(o) {
            OidData::Int(_) | OidData::Real(_) => out.push(self.builtins.numeral),
            OidData::Str(_) => out.push(self.builtins.string),
            OidData::Bool(_) => out.push(self.builtins.boolean),
            _ => {}
        }
        out
    }

    /// The instance-of judgment, closed under IS-A: an instance of `C`
    /// belongs to every superclass of `C` (§2 "Classes"). Class-objects
    /// are instances of the catalogue class `Class`; method-objects of
    /// `Method`; `nil` only of `Object`.
    pub fn is_instance_of(&self, o: Oid, class: Oid) -> bool {
        if class == self.builtins.class {
            return self.is_class(o);
        }
        if class == self.builtins.method {
            return self.is_method_object(o);
        }
        if class == self.builtins.object && (self.oids.is_nil(o) || self.individuals.contains(&o)) {
            return true;
        }
        self.direct_classes(o)
            .iter()
            .any(|&d| self.is_subclass(d, class))
    }

    /// The full extent of `class`: all individuals that are instances of
    /// it (directly or via IS-A), in deterministic order. For the
    /// builtin value classes this enumerates the literals in the active
    /// domain.
    pub fn instances_of(&self, class: Oid) -> Vec<Oid> {
        if class == self.builtins.object {
            return self.individuals.iter().copied().collect();
        }
        if class == self.builtins.class {
            return self.class_order.clone();
        }
        if class == self.builtins.method {
            return self.method_objects.iter().copied().collect();
        }
        let mut out = BTreeSet::new();
        for (&c, ext) in &self.extent {
            if self.is_subclass(c, class) {
                out.extend(ext.iter().copied());
            }
        }
        if self.is_subclass(self.builtins.numeral, class)
            || self.is_subclass(self.builtins.string, class)
            || self.is_subclass(self.builtins.boolean, class)
        {
            for &o in &self.individuals {
                if self.is_instance_of(o, class) {
                    out.insert(o);
                }
            }
        }
        out.into_iter().collect()
    }

    /// The active domain of individual objects (range of individual
    /// variables under the naive semantics of §3.4).
    pub fn individuals(&self) -> impl Iterator<Item = Oid> + '_ {
        self.individuals.iter().copied()
    }

    /// Number of individuals in the active domain.
    pub fn individual_count(&self) -> usize {
        self.individuals.len()
    }

    // ------------------------------------------------------------------
    // State: explicitly stored method values
    // ------------------------------------------------------------------

    fn note_domain(&mut self, o: Oid) {
        // Literals entering the state become part of the active domain;
        // symbols/id-terms must be registered explicitly to avoid
        // treating class- or method-objects as individuals.
        if matches!(
            self.oids.get(o),
            OidData::Int(_) | OidData::Real(_) | OidData::Str(_) | OidData::Bool(_)
        ) && self.individuals.insert(o)
        {
            self.record(UndoOp::RestoreIndividual { o, present: false });
            self.emit(RedoOp::AddIndividual(o));
        }
    }

    /// Catalogues `m` as a method-object, recording the inverse.
    fn note_method_object(&mut self, m: Oid) {
        if self.method_objects.insert(m) {
            self.record(UndoOp::RestoreMethodObject { m, present: false });
            self.emit(RedoOp::AddMethodObject(m));
        }
    }

    /// Records the pre-image of the state entry at `key` (done before
    /// the entry is touched, so the slot can be restored exactly).
    fn record_state(&mut self, key: &StateKey) {
        if self.undo.is_some() {
            let old = self.state.get(key).cloned();
            self.record(UndoOp::RestoreState {
                key: key.clone(),
                old,
            });
        }
    }

    fn index_insert(&mut self, recv: Oid, method: Oid, val: &Val) {
        self.by_method.entry(method).or_default().insert(recv);
        for m in val.members() {
            self.by_method_value
                .entry((method, m))
                .or_default()
                .insert(recv);
            let key = ValueKey::of(&self.oids, m);
            self.by_method_key
                .entry(method)
                .or_default()
                .entry(key)
                .or_default()
                .insert(recv);
        }
    }

    fn index_remove(&mut self, recv: Oid, method: Oid, old: &Val) {
        for m in old.members() {
            if let Some(set) = self.by_method_value.get_mut(&(method, m)) {
                set.remove(&recv);
            }
        }
        // Ordered index: a (key, recv) posting dies only when no
        // remaining stored entry of (recv, method) witnesses the key —
        // the state map already reflects the post-change value at every
        // call site, so the check is against what survives. Keys are
        // collected first (members of `old` can collapse onto one key,
        // e.g. `2` and `2.0`), then the postings are dropped with empty
        // buckets pruned so the live structure stays equal to a fresh
        // rebuild (`attr_index_divergence`).
        let mut dead: Vec<ValueKey> = Vec::new();
        for m in old.members() {
            let key = ValueKey::of(&self.oids, m);
            if dead.contains(&key) {
                continue;
            }
            let witnessed = self
                .stored_entries_for(recv, method)
                .any(|(_, v)| v.members().any(|x| ValueKey::of(&self.oids, x) == key));
            if !witnessed {
                dead.push(key);
            }
        }
        if !dead.is_empty() {
            if let Some(map) = self.by_method_key.get_mut(&method) {
                for key in dead {
                    if let Some(set) = map.get_mut(&key) {
                        set.remove(&recv);
                        if set.is_empty() {
                            map.remove(&key);
                        }
                    }
                }
                if map.is_empty() {
                    self.by_method_key.remove(&method);
                }
            }
        }
        // recv stays in by_method iff another entry for (recv, method)
        // remains (a different argument tuple).
        let still = self.stored_entries_for(recv, method).next().is_some();
        if !still {
            if let Some(set) = self.by_method.get_mut(&method) {
                set.remove(&recv);
            }
        }
    }

    /// Stores a scalar value for `(recv, method, args)`.
    pub fn set_scalar(&mut self, recv: Oid, method: Oid, args: &[Oid], value: Oid) -> DbResult<()> {
        self.note_method_object(method);
        self.note_domain(value);
        for &a in args {
            self.note_domain(a);
        }
        let key = (recv, method, args.to_vec());
        self.record_state(&key);
        let new = Val::Scalar(value);
        if self.redo_on() {
            self.emit(RedoOp::PutState {
                key: key.clone(),
                val: new.clone(),
            });
        }
        let old = self.state.insert(key, new.clone());
        if let Some(old) = old {
            self.index_remove(recv, method, &old);
        }
        self.index_insert(recv, method, &new);
        Ok(())
    }

    /// Stores a set value for `(recv, method, args)`.
    pub fn set_set<I: IntoIterator<Item = Oid>>(
        &mut self,
        recv: Oid,
        method: Oid,
        args: &[Oid],
        values: I,
    ) -> DbResult<()> {
        self.note_method_object(method);
        let set: BTreeSet<Oid> = values.into_iter().collect();
        for &v in &set {
            self.note_domain(v);
        }
        for &a in args {
            self.note_domain(a);
        }
        let key = (recv, method, args.to_vec());
        self.record_state(&key);
        let new = Val::Set(set);
        if self.redo_on() {
            self.emit(RedoOp::PutState {
                key: key.clone(),
                val: new.clone(),
            });
        }
        let old = self.state.insert(key, new.clone());
        if let Some(old) = old {
            self.index_remove(recv, method, &old);
        }
        self.index_insert(recv, method, &new);
        Ok(())
    }

    /// Adds one member to a set-valued entry, creating it if absent.
    pub fn insert_into_set(
        &mut self,
        recv: Oid,
        method: Oid,
        args: &[Oid],
        value: Oid,
    ) -> DbResult<()> {
        self.note_method_object(method);
        self.note_domain(value);
        let key = (recv, method, args.to_vec());
        // Pre-image recorded up front: the error branch below fires
        // after `note_*` already mutated, so the caller must be able to
        // roll the whole call back.
        self.record_state(&key);
        match self.state.entry(key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(Val::set([value]));
            }
            std::collections::btree_map::Entry::Occupied(mut e) => match e.get_mut() {
                Val::Set(s) => {
                    s.insert(value);
                }
                Val::Scalar(_) => {
                    return Err(DbError::ArityOrKindMismatch {
                        method: self.oids.render(method),
                        detail: "cannot insert into a scalar-valued entry".into(),
                    })
                }
            },
        }
        self.index_insert(recv, method, &Val::Scalar(value));
        if self.redo_on() {
            // Log the full resulting set so replay never depends on the
            // pre-state of the entry.
            let key = (recv, method, args.to_vec());
            let cur = self.state.get(&key).cloned().expect("entry just written");
            self.emit(RedoOp::PutState { key, val: cur });
        }
        Ok(())
    }

    /// Removes the stored entry for `(recv, method, args)`, making the
    /// method undefined there (a null).
    pub fn remove_value(&mut self, recv: Oid, method: Oid, args: &[Oid]) {
        let key = (recv, method, args.to_vec());
        if let Some(old) = self.state.remove(&key) {
            if self.redo_on() {
                self.emit(RedoOp::RemoveState { key: key.clone() });
            }
            self.record(UndoOp::RestoreState {
                key,
                old: Some(old.clone()),
            });
            self.index_remove(recv, method, &old);
        }
    }

    /// The candidate receivers on which `method` may be *defined*: the
    /// indexed receivers with stored entries, plus the instances of any
    /// class-object holding a default for it, plus the instances of
    /// classes with a computed definition. A sound superset of the
    /// objects for which [`Database::value`] is `Some` — the evaluator
    /// uses it to avoid scanning the whole domain for head-unbound path
    /// expressions (cf. \[BERT89\]).
    pub fn candidates_with_method(&self, method: Oid) -> BTreeSet<Oid> {
        let mut out = BTreeSet::new();
        if let Some(recvs) = self.by_method.get(&method) {
            for &r in recvs {
                if self.is_class(r) {
                    out.extend(self.instances_of(r));
                    // Subclass class-objects inherit the default too.
                    for d in self.strict_descendants(r) {
                        out.insert(d);
                    }
                    out.insert(r);
                } else {
                    out.insert(r);
                }
            }
        }
        for &(c, m, _) in &self.computed_order {
            if m == method {
                out.extend(self.instances_of(c));
            }
        }
        out
    }

    /// The receivers whose stored value for `method` contains `value`
    /// (exact-member lookup in the inverted index; inherited defaults
    /// are reachable through the class-object receiver).
    pub fn receivers_by_value(&self, method: Oid, value: Oid) -> BTreeSet<Oid> {
        self.by_method_value
            .get(&(method, value))
            .cloned()
            .unwrap_or_default()
    }

    /// As [`Database::candidates_with_method`], further anchored on a
    /// known value member: a sound superset of the objects `o` with
    /// `value ∈ o.method(…)`. Exact-value lookups only — numeral
    /// equality across `Int`/`Real` OIDs is the caller's concern (it
    /// falls back to the unanchored candidates when both spellings
    /// could be stored).
    pub fn candidates_with_method_value(&self, method: Oid, value: Oid) -> BTreeSet<Oid> {
        let mut out = BTreeSet::new();
        if let Some(recvs) = self.by_method_value.get(&(method, value)) {
            for &r in recvs {
                if self.is_class(r) {
                    out.extend(self.instances_of(r));
                    for d in self.strict_descendants(r) {
                        out.insert(d);
                    }
                    out.insert(r);
                } else {
                    out.insert(r);
                }
            }
        }
        for &(c, m, _) in &self.computed_order {
            if m == method {
                out.extend(self.instances_of(c));
            }
        }
        out
    }

    /// The ordered secondary index of one method: typed value key →
    /// receivers with a stored entry containing a member with that key
    /// (see [`crate::attr_index`]). `None` when nothing is stored under
    /// the method. Planner access paths probe this for equality and
    /// range predicates; soundness of treating a probe as a *complete*
    /// candidate set additionally needs
    /// [`Database::attr_index_complete`].
    pub fn attr_index(&self, method: Oid) -> Option<&AttrIndex> {
        self.by_method_key.get(&method)
    }

    /// Receivers whose stored value for `method` contains a member with
    /// exactly this typed key (numeral-insensitive, unlike
    /// [`Database::receivers_by_value`]).
    pub fn attr_receivers_eq(&self, method: Oid, key: &ValueKey) -> BTreeSet<Oid> {
        self.by_method_key
            .get(&method)
            .and_then(|m| m.get(key))
            .cloned()
            .unwrap_or_default()
    }

    /// Receivers whose stored value for `method` contains a member with
    /// a key in the given range (a single ordered scan; the typed key
    /// families are contiguous runs, so a numeric range never visits
    /// string or object keys).
    pub fn attr_receivers_range<R>(&self, method: Oid, range: R) -> BTreeSet<Oid>
    where
        R: std::ops::RangeBounds<ValueKey>,
    {
        let mut out = BTreeSet::new();
        if let Some(m) = self.by_method_key.get(&method) {
            for (_, recvs) in m.range(range) {
                out.extend(recvs.iter().copied());
            }
        }
        out
    }

    /// Index sizes for the planner's cost model: distinct keys and
    /// total postings stored under `method`. `None` when the method has
    /// no stored entries.
    pub fn attr_stats(&self, method: Oid) -> Option<AttrStats> {
        self.by_method_key.get(&method).map(|m| AttrStats {
            distinct_keys: m.len(),
            postings: m.values().map(|s| s.len()).sum(),
        })
    }

    /// True when the stored state of `method` tells the whole story:
    /// no computed definition exists for it at any arity, and no
    /// class-object holds a stored default for it (which instances
    /// would inherit without appearing in the index themselves). Under
    /// this condition, `value(o, method, args)` is exactly the stored
    /// entry (or undefined), so an index probe plus an extent
    /// intersection is a sound candidate set for attribute predicates.
    pub fn attr_index_complete(&self, method: Oid) -> bool {
        if self.computed_order.iter().any(|&(_, m, _)| m == method) {
            return false;
        }
        match self.by_method.get(&method) {
            Some(recvs) => !recvs.iter().any(|&r| self.is_class(r)),
            None => true,
        }
    }

    /// Rebuilds the ordered secondary index from scratch by scanning
    /// the stored state — the oracle [`Database::attr_index_divergence`]
    /// compares the live structure against.
    pub fn rebuilt_attr_index(&self) -> HashMap<Oid, AttrIndex> {
        let mut out: HashMap<Oid, AttrIndex> = HashMap::new();
        for ((recv, method, _args), val) in &self.state {
            for m in val.members() {
                out.entry(*method)
                    .or_default()
                    .entry(ValueKey::of(&self.oids, m))
                    .or_default()
                    .insert(*recv);
            }
        }
        out
    }

    /// Differences between the live ordered index and a fresh rebuild
    /// from the stored state, rendered one per line. Empty means the
    /// incremental maintenance (including undo/redo application) left
    /// the index bit-identical to the rebuild — the invariant the
    /// transaction-interleaving proptests assert.
    pub fn attr_index_divergence(&self) -> Vec<String> {
        let rebuilt = self.rebuilt_attr_index();
        let mut out = Vec::new();
        let mut methods: BTreeSet<Oid> = self.by_method_key.keys().copied().collect();
        methods.extend(rebuilt.keys().copied());
        for m in methods {
            let live = self.by_method_key.get(&m);
            let want = rebuilt.get(&m);
            if live != want {
                let name = self.render(m);
                match (live, want) {
                    (Some(l), Some(w)) => {
                        let lk: BTreeSet<&ValueKey> = l.keys().collect();
                        let wk: BTreeSet<&ValueKey> = w.keys().collect();
                        for k in lk.symmetric_difference(&wk) {
                            out.push(format!("{name}: key {k:?} present on one side only"));
                        }
                        for k in lk.intersection(&wk) {
                            if l[k] != w[k] {
                                out.push(format!("{name}: key {k:?} receiver sets differ"));
                            }
                        }
                    }
                    (Some(_), None) => out.push(format!("{name}: stale index (no stored state)")),
                    (None, Some(_)) => out.push(format!("{name}: missing index entries")),
                    (None, None) => unreachable!("method came from one of the two maps"),
                }
            }
        }
        out
    }

    /// Removes an object entirely: its stored state (as receiver), its
    /// class memberships, and its presence in the active domain.
    /// References to it from *other* objects' values are left in place —
    /// like the paper's logical OIDs, the id keeps denoting the (now
    /// description-less) object.
    pub fn purge_object(&mut self, o: Oid) {
        let keys: Vec<(Oid, Vec<Oid>)> = self
            .state
            .range((o, Oid::MIN, Vec::new())..)
            .take_while(|((r, _, _), _)| *r == o)
            .map(|((_, m, a), _)| (*m, a.clone()))
            .collect();
        for (m, a) in keys {
            self.remove_value(o, m, &a);
        }
        if let Some(classes) = self.instance_of.remove(&o) {
            for c in classes {
                if let Some(ext) = self.extent.get_mut(&c) {
                    ext.remove(&o);
                }
                self.record(UndoOp::RestoreMembership {
                    o,
                    class: c,
                    present: true,
                });
                self.emit(RedoOp::RemoveMembership { o, class: c });
            }
        }
        if self.individuals.remove(&o) {
            self.record(UndoOp::RestoreIndividual { o, present: true });
            self.emit(RedoOp::RemoveIndividual(o));
        }
    }

    /// The raw stored value, without inheritance or computed methods.
    pub fn stored_value(&self, recv: Oid, method: Oid, args: &[Oid]) -> Option<&Val> {
        self.state.get(&(recv, method, args.to_vec()))
    }

    /// Iterates all stored state entries (used by the F-logic model
    /// extraction and by schema browsing).
    pub fn state_entries(&self) -> impl Iterator<Item = (Oid, Oid, &[Oid], &Val)> + '_ {
        self.state
            .iter()
            .map(|((r, m, a), v)| (*r, *m, a.as_slice(), v))
    }

    /// Iterates the stored entries of one `(receiver, method)` pair —
    /// the argument tuples for which the method has an explicit value.
    /// Used to enumerate unbound method arguments in path expressions.
    pub fn stored_entries_for(
        &self,
        recv: Oid,
        method: Oid,
    ) -> impl Iterator<Item = (&[Oid], &Val)> + '_ {
        self.state
            .range((recv, method, Vec::new())..)
            .take_while(move |((r, m, _), _)| *r == recv && *m == method)
            .map(|((_, _, a), v)| (a.as_slice(), v))
    }

    // ------------------------------------------------------------------
    // Computed methods
    // ------------------------------------------------------------------

    /// Installs a computed method implementation for `(class, method,
    /// arity)`. Subclasses inherit it behaviorally; redefinition in a
    /// subclass overrides (§6.1).
    pub fn define_method(
        &mut self,
        class: Oid,
        method: Oid,
        arity: usize,
        imp: Arc<dyn MethodImpl>,
    ) -> DbResult<()> {
        if !self.classes.contains_key(&class) {
            return Err(DbError::UnknownClass(self.render(class)));
        }
        self.note_method_object(method);
        let key = (class, method, arity);
        if !self.computed.contains_key(&key) {
            self.computed_order.push(key);
        }
        let old = self.computed.insert(key, imp);
        self.record(UndoOp::RestoreComputed { key, old });
        self.bump_schema_epoch();
        Ok(())
    }

    /// True if a computed method exists for exactly `(class, method,
    /// arity)`.
    pub fn has_computed(&self, class: Oid, method: Oid, arity: usize) -> bool {
        self.computed.contains_key(&(class, method, arity))
    }

    /// Finds the computed-method implementation inherited by `recv` for
    /// `(method, arity)` under behavioral inheritance with overriding:
    /// among the defining classes that `recv` belongs to, keep the most
    /// specific ones; a unique survivor wins; several incomparable
    /// survivors require an explicit resolution on one of `recv`'s
    /// direct classes, otherwise it is an inheritance conflict (§6.1).
    fn resolve_computed(
        &self,
        recv: Oid,
        method: Oid,
        arity: usize,
    ) -> DbResult<Option<&Arc<dyn MethodImpl>>> {
        let mut defining: Vec<Oid> = Vec::new();
        for &(c, m, k) in &self.computed_order {
            if m == method && k == arity && self.is_instance_of(recv, c) {
                defining.push(c);
            }
        }
        if defining.is_empty() {
            return Ok(None);
        }
        // Keep most specific classes only (overriding).
        let minimal: Vec<Oid> = defining
            .iter()
            .copied()
            .filter(|&c| {
                !defining
                    .iter()
                    .any(|&d| d != c && self.is_strict_subclass(d, c))
            })
            .collect();
        let chosen = if minimal.len() == 1 {
            minimal[0]
        } else {
            // Look for an explicit resolution on a direct class of recv.
            let mut pick = None;
            for dc in self.direct_classes(recv) {
                if let Some(info) = self.classes.get(&dc) {
                    if let Some(&from) = info.resolutions.get(&method) {
                        if minimal.contains(&from) {
                            pick = Some(from);
                            break;
                        }
                    }
                }
            }
            match pick {
                Some(c) => c,
                None => {
                    return Err(DbError::InheritanceConflict {
                        object: self.render(recv),
                        method: self.render(method),
                        candidates: minimal.iter().map(|&c| self.render(c)).collect(),
                    })
                }
            }
        };
        Ok(self.computed.get(&(chosen, method, arity)))
    }

    // ------------------------------------------------------------------
    // The defined/undefined/inapplicable judgments
    // ------------------------------------------------------------------

    /// The value of `method` on `recv` with `args`, under full lookup:
    /// explicit state, then behavioral inheritance of default values
    /// from class-objects (footnote 5: default attributes are inherited
    /// from superclasses), then computed methods. `Ok(None)` means
    /// *undefined* (null). Inapplicability is *not* checked here — the
    /// naive semantics of §3.4 simply finds no satisfying path; use
    /// [`Database::is_applicable`] for the type-error judgment.
    pub fn value(&self, recv: Oid, method: Oid, args: &[Oid]) -> DbResult<Option<Val>> {
        self.value_at_depth(recv, method, args, 0)
    }

    /// As [`Database::value`], at an explicit invocation depth (computed
    /// methods evaluating path expressions pass their own depth + 1).
    pub fn value_at_depth(
        &self,
        recv: Oid,
        method: Oid,
        args: &[Oid],
        depth: usize,
    ) -> DbResult<Option<Val>> {
        if depth > MAX_INVOKE_DEPTH {
            return Err(DbError::RecursionLimit {
                method: self.render(method),
            });
        }
        // 1. Explicit state on the receiver itself.
        if let Some(v) = self.stored_value(recv, method, args) {
            return Ok(Some(v.clone()));
        }
        // 2. Inherited default value: the value the method has on the
        //    most specific class-object(s) the receiver belongs to; for
        //    a class receiver, on its superclasses.
        if let Some(v) = self.inherited_default(recv, method, args)? {
            return Ok(Some(v));
        }
        // 3. Computed method (behavioral inheritance with overriding).
        if let Some(imp) = self.resolve_computed(recv, method, args.len())? {
            let imp = Arc::clone(imp);
            return imp.invoke(self, recv, args, depth + 1);
        }
        Ok(None)
    }

    /// Behavioral inheritance of stored (default) values: if the method
    /// has an explicit value on a class the receiver belongs to, the
    /// receiver inherits the value of the most specific such class;
    /// incomparable candidates with distinct values are a conflict
    /// unless explicitly resolved.
    fn inherited_default(&self, recv: Oid, method: Oid, args: &[Oid]) -> DbResult<Option<Val>> {
        // Classes to search: for an individual, all classes it belongs
        // to; for a class-object, its strict ancestors.
        let search: Vec<Oid> = if self.is_class(recv) {
            self.ancestors_of(recv).filter(|&c| c != recv).collect()
        } else {
            let mut cs = BTreeSet::new();
            for d in self.direct_classes(recv) {
                cs.extend(self.ancestors_of(d));
            }
            cs.into_iter().collect()
        };
        let holders: Vec<Oid> = search
            .iter()
            .copied()
            .filter(|&c| self.state.contains_key(&(c, method, args.to_vec())))
            .collect();
        if holders.is_empty() {
            return Ok(None);
        }
        let minimal: Vec<Oid> = holders
            .iter()
            .copied()
            .filter(|&c| {
                !holders
                    .iter()
                    .any(|&d| d != c && self.is_strict_subclass(d, c))
            })
            .collect();
        if minimal.len() == 1 {
            return Ok(self.stored_value(minimal[0], method, args).cloned());
        }
        // Distinct incomparable defaults: identical values are fine,
        // otherwise require an explicit resolution.
        let vals: Vec<&Val> = minimal
            .iter()
            .map(|&c| self.stored_value(c, method, args).unwrap())
            .collect();
        if vals.windows(2).all(|w| w[0] == w[1]) {
            return Ok(Some(vals[0].clone()));
        }
        for dc in self.direct_classes(recv) {
            if let Some(info) = self.classes.get(&dc) {
                if let Some(&from) = info.resolutions.get(&method) {
                    if let Some(c) = minimal.iter().copied().find(|&c| c == from) {
                        return Ok(self.stored_value(c, method, args).cloned());
                    }
                }
            }
        }
        Err(DbError::InheritanceConflict {
            object: self.render(recv),
            method: self.render(method),
            candidates: minimal.iter().map(|&c| self.render(c)).collect(),
        })
    }

    /// Invokes an update method (one whose implementation mutates the
    /// database, §5). Read-only methods may also be invoked this way.
    pub fn invoke_update(&mut self, recv: Oid, method: Oid, args: &[Oid]) -> DbResult<Option<Val>> {
        if let Some(v) = self.stored_value(recv, method, args) {
            return Ok(Some(v.clone()));
        }
        let imp = match self.resolve_computed(recv, method, args.len())? {
            Some(i) => Arc::clone(i),
            None => return Ok(None),
        };
        imp.invoke_mut(self, recv, args, 1)
    }

    /// The applicability judgment (§2): `method` is applicable to `recv`
    /// on `args` iff some declared signature covers them — i.e. the
    /// method *possesses* a type whose receiver class contains `recv`
    /// and whose argument classes contain the respective `args`. Used by
    /// the typing system; inapplicability is the paper's type error.
    pub fn is_applicable(&self, recv: Oid, method: Oid, args: &[Oid]) -> bool {
        for c in &self.class_order {
            if !self.is_instance_of(recv, *c) {
                continue;
            }
            for s in &self.classes[c].sigs {
                if s.method == method
                    && s.arity() == args.len()
                    && args
                        .iter()
                        .zip(&s.args)
                        .all(|(&a, &cl)| self.is_instance_of(a, cl))
                {
                    return true;
                }
            }
        }
        false
    }

    /// Checks that the stored state conforms to the declared signatures:
    /// every entry `(recv, m, args) -> v` must be covered by a signature
    /// applicable to `(recv, args)` whose result class contains every
    /// member of `v`, with matching scalar/set kind. Returns the
    /// violations (empty = conformant). Theorem 6.1's range restriction
    /// is sound exactly on conformant databases — the paper assumes data
    /// respects the schema.
    pub fn check_conformance(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (recv, m, args, v) in self.state_entries() {
            let mut covered = false;
            let mut kind_ok = false;
            'sigs: for c in &self.class_order {
                if !self.is_instance_of(recv, *c) {
                    continue;
                }
                for s in &self.classes[c].sigs {
                    if s.method != m
                        || s.arity() != args.len()
                        || !args
                            .iter()
                            .zip(&s.args)
                            .all(|(&a, &cl)| self.is_instance_of(a, cl))
                    {
                        continue;
                    }
                    covered = true;
                    if s.set_valued == v.is_set()
                        && v.members().all(|o| self.is_instance_of(o, s.result))
                    {
                        kind_ok = true;
                        break 'sigs;
                    }
                }
            }
            if !covered {
                out.push(format!(
                    "no applicable signature for `{}` on `{}`",
                    self.render(m),
                    self.render(recv)
                ));
            } else if !kind_ok {
                out.push(format!(
                    "value of `{}` on `{}` violates every applicable signature",
                    self.render(m),
                    self.render(recv)
                ));
            }
        }
        out
    }

    /// All method names of the given arity that could be *defined* on
    /// `recv` — candidates when a method variable must be enumerated
    /// (query (3): `X."Y.City`). Sources: explicit state on the
    /// receiver, inheritable defaults on its classes, and computed
    /// methods it inherits.
    pub fn methods_defined_on(&self, recv: Oid, arity: usize) -> BTreeSet<Oid> {
        let mut out = BTreeSet::new();
        for ((r, m, a), _) in self.state.range((recv, Oid::MIN, Vec::new())..) {
            if *r != recv {
                break;
            }
            if a.len() == arity {
                out.insert(*m);
            }
        }
        // Defaults on classes the receiver belongs to.
        let classes: BTreeSet<Oid> = if self.is_class(recv) {
            self.ancestors_of(recv).filter(|&c| c != recv).collect()
        } else {
            let mut cs = BTreeSet::new();
            for d in self.direct_classes(recv) {
                cs.extend(self.ancestors_of(d));
            }
            cs
        };
        for &c in &classes {
            for ((r, m, a), _) in self.state.range((c, Oid::MIN, Vec::new())..) {
                if *r != c {
                    break;
                }
                if a.len() == arity {
                    out.insert(*m);
                }
            }
        }
        for &(c, m, k) in &self.computed_order {
            if k == arity && self.is_instance_of(recv, c) {
                out.insert(m);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Database {
        let mut db = Database::new();
        let person = db.define_class("Person", &[]).unwrap();
        let string = db.builtins().string;
        db.add_signature(person, "Name", &[], string, false)
            .unwrap();
        db
    }

    #[test]
    fn conformance_flags_uncovered_and_ill_kinded_state() {
        let mut db = small();
        let person = db.oids().find_sym("Person").unwrap();
        let p = db.new_individual("p1", &[person]).unwrap();
        let name = db.oids().find_sym("Name").unwrap();
        let v = db.oids_mut().str("Pat");
        db.set_scalar(p, name, &[], v).unwrap();
        assert!(db.check_conformance().is_empty());
        // A value of the wrong kind (set where scalar declared).
        db.set_set(p, name, &[], [v]).unwrap();
        assert_eq!(db.check_conformance().len(), 1);
        db.set_scalar(p, name, &[], v).unwrap();
        // A method with no signature anywhere.
        let ghost = db.oids_mut().sym("Ghost");
        db.set_scalar(p, ghost, &[], v).unwrap();
        assert_eq!(db.check_conformance().len(), 1);
        // A value outside the declared result class.
        let n = db.oids_mut().int(5);
        db.remove_value(p, ghost, &[]);
        db.set_scalar(p, name, &[], n).unwrap();
        assert_eq!(db.check_conformance().len(), 1);
    }

    #[test]
    fn clone_is_independent() {
        let mut db = small();
        let person = db.oids().find_sym("Person").unwrap();
        let p = db.new_individual("p1", &[person]).unwrap();
        let name = db.oids().find_sym("Name").unwrap();
        let v = db.oids_mut().str("Pat");
        db.set_scalar(p, name, &[], v).unwrap();
        let snapshot = db.clone();
        db.remove_value(p, name, &[]);
        assert!(db.value(p, name, &[]).unwrap().is_none());
        assert!(snapshot.value(p, name, &[]).unwrap().is_some());
    }

    #[test]
    fn remove_instance_shrinks_extent() {
        let mut db = small();
        let person = db.oids().find_sym("Person").unwrap();
        let p = db.new_individual("p1", &[person]).unwrap();
        assert_eq!(db.instances_of(person).len(), 1);
        db.remove_instance(p, person);
        assert!(db.instances_of(person).is_empty());
        // Still an individual (in the active domain) until fully purged.
        assert!(db.is_instance_of(p, db.builtins().object));
    }

    #[test]
    fn methods_defined_on_includes_all_sources() {
        let mut db = small();
        let person = db.oids().find_sym("Person").unwrap();
        let p = db.new_individual("p1", &[person]).unwrap();
        let name = db.oids().find_sym("Name").unwrap();
        let v = db.oids_mut().str("Pat");
        // Explicit state.
        db.set_scalar(p, name, &[], v).unwrap();
        // Class default.
        let hobby = db.oids_mut().sym("Hobby");
        db.set_scalar(person, hobby, &[], v).unwrap();
        let defined = db.methods_defined_on(p, 0);
        assert!(defined.contains(&name));
        assert!(defined.contains(&hobby));
    }
}

#[cfg(test)]
mod purge_tests {
    use super::*;

    #[test]
    fn purge_removes_state_membership_and_domain() {
        let mut db = Database::new();
        let c = db.define_class("Thing", &[]).unwrap();
        let a = db.new_individual("a", &[c]).unwrap();
        let b = db.new_individual("b", &[c]).unwrap();
        let m = db.oids_mut().sym("Link");
        db.set_scalar(a, m, &[], b).unwrap();
        db.set_scalar(b, m, &[], a).unwrap();
        db.purge_object(a);
        assert!(db.value(a, m, &[]).unwrap().is_none());
        assert!(!db.is_instance_of(a, c));
        assert!(!db.individuals().any(|o| o == a));
        // Dangling reference from b keeps denoting the id (logical OIDs).
        let v = db.value(b, m, &[]).unwrap().unwrap();
        assert_eq!(v.as_scalar(), Some(a));
        // Index no longer lists a as a receiver.
        assert!(!db.candidates_with_method(m).contains(&a));
    }

    #[test]
    fn value_anchored_candidates() {
        let mut db = Database::new();
        let c = db.define_class("Thing", &[]).unwrap();
        let a = db.new_individual("a", &[c]).unwrap();
        let b = db.new_individual("b", &[c]).unwrap();
        let m = db.oids_mut().sym("Tag");
        let red = db.oids_mut().str("red");
        let blue = db.oids_mut().str("blue");
        db.set_scalar(a, m, &[], red).unwrap();
        db.set_scalar(b, m, &[], blue).unwrap();
        let got = db.candidates_with_method_value(m, red);
        assert!(got.contains(&a) && !got.contains(&b));
        // Class defaults expand to instances.
        let other = db.define_class("Other", &[]).unwrap();
        let o1 = db.new_individual("o1", &[other]).unwrap();
        db.set_scalar(other, m, &[], red).unwrap();
        let got = db.candidates_with_method_value(m, red);
        assert!(got.contains(&o1));
    }
}
