//! Error type for the object-oriented database engine.

use std::fmt;

/// Errors raised by schema manipulation, state updates and method
/// invocation.
///
/// The paper distinguishes *undefinedness* (a null, not an error) from
/// *inapplicability* (a type error, §2 "Attributes"); only the latter and
/// genuine integrity violations surface as `DbError`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum DbError {
    /// The class named in an operation does not exist.
    UnknownClass(String),
    /// A class with this name already exists.
    DuplicateClass(String),
    /// Adding this IS-A edge would create a cycle (the IS-A relationship
    /// is acyclic by definition, §2 "Classes").
    IsACycle { sub: String, sup: String },
    /// A method was invoked on an object for which it is not applicable
    /// (no possessed type covers the receiver/arguments) — the paper's
    /// notion of a (dynamic) type error.
    Inapplicable {
        receiver: String,
        method: String,
        arity: usize,
    },
    /// Multiple incomparable superclasses supply conflicting inherited
    /// definitions or default values and no explicit resolution was
    /// declared (§6.1; the paper adopts Meyer's require-explicit-choice
    /// rule \[MEY88\]).
    InheritanceConflict {
        object: String,
        method: String,
        candidates: Vec<String>,
    },
    /// Two conflicting descriptions were given for the same object — e.g.
    /// a scalar attribute assigned two distinct values, the run-time
    /// error of §4.1's ill-defined query discussion.
    ConflictingDescription {
        object: String,
        method: String,
        old: String,
        new: String,
    },
    /// A scalar method was given a set value or vice versa.
    ArityOrKindMismatch { method: String, detail: String },
    /// The OID given where a class-object was required is not a class
    /// (or not a method-object where one was required).
    WrongSort { oid: String, expected: &'static str },
    /// Invocation of a computed method failed; carries the inner message.
    MethodFailed { method: String, message: String },
    /// Recursion limit exceeded while invoking computed methods.
    RecursionLimit { method: String },
    /// `rollback_to` was given a savepoint from a span that has already
    /// committed (or been rolled past) — the log no longer reaches it.
    StaleSavepoint,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            DbError::DuplicateClass(c) => write!(f, "class `{c}` already exists"),
            DbError::IsACycle { sub, sup } => {
                write!(f, "IS-A edge `{sub}` -> `{sup}` would create a cycle")
            }
            DbError::Inapplicable {
                receiver,
                method,
                arity,
            } => write!(
                f,
                "method `{method}`/{arity} is inapplicable to object `{receiver}` (type error)"
            ),
            DbError::InheritanceConflict {
                object,
                method,
                candidates,
            } => write!(
                f,
                "multiple-inheritance conflict for `{method}` on `{object}`: \
                 candidate definitions in {candidates:?}; declare an explicit resolution"
            ),
            DbError::ConflictingDescription {
                object,
                method,
                old,
                new,
            } => write!(
                f,
                "conflicting descriptions of object `{object}`: `{method}` = `{old}` vs `{new}`"
            ),
            DbError::ArityOrKindMismatch { method, detail } => {
                write!(f, "kind/arity mismatch for `{method}`: {detail}")
            }
            DbError::WrongSort { oid, expected } => {
                write!(f, "`{oid}` is not a {expected}")
            }
            DbError::MethodFailed { method, message } => {
                write!(f, "invocation of `{method}` failed: {message}")
            }
            DbError::RecursionLimit { method } => {
                write!(f, "recursion limit exceeded while invoking `{method}`")
            }
            DbError::StaleSavepoint => {
                write!(f, "savepoint is stale (its span already committed)")
            }
        }
    }
}

impl std::error::Error for DbError {}

/// Convenient result alias used throughout the engine.
pub type DbResult<T> = Result<T, DbError>;
