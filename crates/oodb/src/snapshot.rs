//! Plain-data snapshots of a [`Database`](crate::Database).
//!
//! A [`DbSnapshot`] is the complete persistent state of a database as
//! owned values with no interior maps or closures: the raw OID interner
//! entries plus the schema and state keyed by raw [`Oid`] handles (which
//! are indices into that same entry list, so the snapshot is
//! self-contained). The `storage` crate serializes it for checkpoint
//! files; [`Database::export_snapshot`](crate::Database::export_snapshot)
//! / [`Database::import_snapshot`](crate::Database::import_snapshot)
//! convert to and from the live representation, rebuilding every derived
//! index (IS-A closure, extents, method indexes) on import.
//!
//! Computed-method implementations are **not** part of a snapshot — they
//! are closures ([`crate::MethodImpl`]) with no serialization. The xsql
//! session keeps a catalog of the definitional statements that installed
//! them and replays those after importing a snapshot.

use crate::oid::{Oid, OidData};
use crate::schema::Signature;
use crate::value::Val;

/// One class in a snapshot: identity, direct supers, declared signatures
/// and explicit inheritance resolutions. Direct subclasses and the IS-A
/// closure are derived on import.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassEntry {
    /// The class-object.
    pub class: Oid,
    /// Direct superclasses, in declaration order.
    pub supers: Vec<Oid>,
    /// Signatures declared directly in this class, in declaration order.
    pub sigs: Vec<Signature>,
    /// Explicit multiple-inheritance resolutions, sorted by method OID
    /// for deterministic encoding.
    pub resolutions: Vec<(Oid, Oid)>,
}

/// The complete persistent state of a database as plain data. All `Oid`
/// values index into `oids`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DbSnapshot {
    /// The raw interner entries, in interning order. Builtins occupy
    /// their fixed positions from [`Database::new`](crate::Database::new).
    pub oids: Vec<OidData>,
    /// All classes in definition order (builtins included).
    pub classes: Vec<ClassEntry>,
    /// Direct class memberships per object, sorted by object OID.
    pub instance_of: Vec<(Oid, Vec<Oid>)>,
    /// The individuals active domain.
    pub individuals: Vec<Oid>,
    /// The method-objects catalogue.
    pub method_objects: Vec<Oid>,
    /// Explicit stored state, sorted by key.
    pub state: Vec<StateEntry>,
}

/// One stored state entry as exported by a snapshot: the
/// `(receiver, method, args)` key and its value.
pub type StateEntry = ((Oid, Oid, Vec<Oid>), Val);
