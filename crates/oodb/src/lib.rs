//! # oodb — object-oriented database engine
//!
//! A from-scratch implementation of the object-oriented data model of
//! *Kifer, Kim & Sagiv, "Querying Object-Oriented Databases", SIGMOD 1992*
//! (§2): logical object ids (including id-terms built from explicit
//! id-functions, \[KW89\]), classes-as-objects organized in an acyclic IS-A
//! DAG, tuple-objects with scalar and set-valued k-ary methods (attributes
//! are 0-ary methods), the *defined / undefined / inapplicable* trichotomy,
//! behavioral inheritance with overriding and Meyer-style explicit conflict
//! resolution, structural (covariant) inheritance of signatures, and a
//! system catalogue that is part of the class hierarchy (`Object`, `Class`,
//! `Method`, plus the value classes `Numeral`, `String`, `Boolean`).
//!
//! The XSQL query language itself lives in the `xsql` crate; this crate is
//! the substrate it queries and updates.
//!
//! ```
//! use oodb::DbBuilder;
//!
//! let mut b = DbBuilder::new();
//! b.class("Person");
//! b.attr("Person", "Name", "String");
//! b.set_attr("Person", "FamMembers", "Person");
//! let mary = b.obj("mary123", "Person");
//! b.set_str(mary, "Name", "Mary");
//! let db = b.build();
//!
//! let name = db.oids().find_sym("Name").unwrap();
//! let v = db.value(mary, name, &[]).unwrap().unwrap();
//! assert_eq!(db.oids().as_str(v.as_scalar().unwrap()), Some("Mary"));
//! ```

#![warn(missing_docs)]

mod attr_index;
mod builder;
mod database;
mod epoch;
mod error;
mod oid;
mod redo;
mod schema;
mod snapshot;
mod undo;
mod value;

pub use attr_index::{AttrIndex, AttrStats, ValueKey};
pub use builder::DbBuilder;
pub use database::{Database, MethodImpl, MAX_INVOKE_DEPTH};
pub use epoch::{EpochCell, EpochDb};
pub use error::{DbError, DbResult};
pub use oid::{Oid, OidData, OidTable};
pub use redo::RedoOp;
pub use schema::{Builtins, ClassInfo, Signature};
pub use snapshot::{ClassEntry, DbSnapshot};
pub use undo::{Savepoint, UndoLog};
pub use value::{Val, ValIter};
