//! Logical object identities.
//!
//! Following §2 of the paper, the programmer refers to objects via *logical
//! object ids* — syntactic terms of the language. A logical OID is either a
//! symbol (`mary123`, `Person`, `Residence`), a value whose OID "carries
//! semantic information" (the numeral `20`, the string `"Ford Motor Co."`,
//! a boolean), the special object `nil` (§5), or an *id-term*
//! `f(t1,…,tk)` built with an explicit id-function as in \[KW89\] — the
//! mechanism the paper uses to invent OIDs for view objects (§4).
//!
//! All OIDs are interned in an [`OidTable`]; the handle type [`Oid`] is a
//! `u32` index, so equality, hashing and ordering of OIDs are O(1) and the
//! structural uniqueness of id-terms ("the value of f(x,w) is unique, if
//! defined, and does not occur elsewhere in the database", §4.1) holds by
//! construction.

use std::collections::HashMap;
use std::fmt;

/// Interned handle to a logical object id. Copyable, order is the
/// (deterministic) interning order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(u32);

impl Oid {
    /// Smallest possible handle; useful as a range lower bound for
    /// ordered scans keyed by `Oid`.
    pub const MIN: Oid = Oid(0);

    /// Raw index into the owning [`OidTable`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a handle from a raw index. For persistence codecs that
    /// serialize OIDs as table positions; the index must denote an entry
    /// of the table the handle will be used with.
    #[inline]
    pub fn from_index(i: usize) -> Oid {
        Oid(u32::try_from(i).expect("OID index out of range"))
    }
}

/// The interned datum behind an [`Oid`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OidData {
    /// A symbolic id: individual names, class names, method names. The
    /// paper deliberately does not isolate attribute names from other
    /// logical OIDs (§2 "Attributes").
    Sym(Box<str>),
    /// An integer numeral object.
    Int(i64),
    /// A real numeral object, stored as the bit pattern of a non-NaN
    /// `f64` so the datum is `Eq + Hash`.
    Real(u64),
    /// A string object, written `'newyork'` in XSQL.
    Str(Box<str>),
    /// A boolean object.
    Bool(bool),
    /// The special object `nil` returned by update methods (§5).
    Nil,
    /// An id-term `f(t1,…,tk)`: functor symbol plus argument OIDs.
    Func(Oid, Box<[Oid]>),
}

/// Interner for logical OIDs. Owned by [`crate::Database`].
#[derive(Debug, Default, Clone)]
pub struct OidTable {
    data: Vec<OidData>,
    index: HashMap<OidData, Oid>,
}

impl OidTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct OIDs interned so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no OID has been interned.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn intern(&mut self, d: OidData) -> Oid {
        if let Some(&o) = self.index.get(&d) {
            return o;
        }
        let o = Oid(u32::try_from(self.data.len()).expect("OID space exhausted"));
        self.data.push(d.clone());
        self.index.insert(d, o);
        o
    }

    /// Interns a symbolic id.
    pub fn sym(&mut self, name: &str) -> Oid {
        if let Some(&o) = self.index.get(&OidData::Sym(name.into())) {
            return o;
        }
        self.intern(OidData::Sym(name.into()))
    }

    /// Interns an integer numeral object.
    pub fn int(&mut self, v: i64) -> Oid {
        self.intern(OidData::Int(v))
    }

    /// Interns a real numeral object. NaN is rejected (it has no
    /// equality, hence no object identity).
    pub fn real(&mut self, v: f64) -> Oid {
        assert!(!v.is_nan(), "NaN has no object identity");
        // Normalize -0.0 to 0.0 so numerically equal reals share an OID.
        let v = if v == 0.0 { 0.0 } else { v };
        self.intern(OidData::Real(v.to_bits()))
    }

    /// Interns a string object.
    pub fn str(&mut self, v: &str) -> Oid {
        if let Some(&o) = self.index.get(&OidData::Str(v.into())) {
            return o;
        }
        self.intern(OidData::Str(v.into()))
    }

    /// Interns a boolean object.
    pub fn bool(&mut self, v: bool) -> Oid {
        self.intern(OidData::Bool(v))
    }

    /// The special object `nil`.
    pub fn nil(&mut self) -> Oid {
        self.intern(OidData::Nil)
    }

    /// Interns an id-term `functor(args…)`. `functor` must be a symbol.
    pub fn func(&mut self, functor: Oid, args: &[Oid]) -> Oid {
        debug_assert!(
            matches!(self.get(functor), OidData::Sym(_)),
            "id-function functor must be a symbol"
        );
        self.intern(OidData::Func(functor, args.into()))
    }

    /// The raw interned entries in interning order — `entries()[o.index()]`
    /// is the datum of `o`. For persistence codecs.
    pub fn entries(&self) -> &[OidData] {
        &self.data
    }

    /// Rebuilds a table from raw entries (the inverse of
    /// [`OidTable::entries`]). Entries must be distinct and any
    /// [`OidData::Func`] arguments must point at earlier positions, as
    /// produced by interning.
    pub fn from_entries(entries: Vec<OidData>) -> OidTable {
        let mut index = HashMap::with_capacity(entries.len());
        for (i, d) in entries.iter().enumerate() {
            index.insert(d.clone(), Oid::from_index(i));
        }
        OidTable {
            data: entries,
            index,
        }
    }

    /// Looks up an already-interned symbol without interning.
    pub fn find_sym(&self, name: &str) -> Option<Oid> {
        self.index.get(&OidData::Sym(name.into())).copied()
    }

    /// Looks up an already-interned id-term `functor(args…)` without
    /// interning. Used by read-only evaluation: an id-term that was
    /// never created denotes no object, so the path simply fails (§3.1).
    pub fn find_func(&self, functor: Oid, args: &[Oid]) -> Option<Oid> {
        self.index
            .get(&OidData::Func(functor, args.into()))
            .copied()
    }

    /// The datum behind a handle.
    #[inline]
    pub fn get(&self, o: Oid) -> &OidData {
        &self.data[o.index()]
    }

    /// Numeric value if `o` is a numeral object.
    pub fn as_number(&self, o: Oid) -> Option<f64> {
        match self.get(o) {
            OidData::Int(v) => Some(*v as f64),
            OidData::Real(b) => Some(f64::from_bits(*b)),
            _ => None,
        }
    }

    /// String value if `o` is a string object.
    pub fn as_str(&self, o: Oid) -> Option<&str> {
        match self.get(o) {
            OidData::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Symbol name if `o` is a symbolic id.
    pub fn sym_name(&self, o: Oid) -> Option<&str> {
        match self.get(o) {
            OidData::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// True if `o` denotes `nil`.
    pub fn is_nil(&self, o: Oid) -> bool {
        matches!(self.get(o), OidData::Nil)
    }

    /// Total order used by deterministic result rendering: numerals by
    /// value, then strings, booleans, symbols, nil, id-terms
    /// (recursively). Falls back to interning order within a kind where
    /// no natural order exists.
    pub fn display_cmp(&self, a: Oid, b: Oid) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(d: &OidData) -> u8 {
            match d {
                OidData::Int(_) | OidData::Real(_) => 0,
                OidData::Str(_) => 1,
                OidData::Bool(_) => 2,
                OidData::Sym(_) => 3,
                OidData::Nil => 4,
                OidData::Func(..) => 5,
            }
        }
        let (da, db) = (self.get(a), self.get(b));
        match rank(da).cmp(&rank(db)) {
            Ordering::Equal => {}
            o => return o,
        }
        match (da, db) {
            (OidData::Str(x), OidData::Str(y)) => x.cmp(y),
            (OidData::Bool(x), OidData::Bool(y)) => x.cmp(y),
            (OidData::Sym(x), OidData::Sym(y)) => x.cmp(y),
            (OidData::Nil, OidData::Nil) => Ordering::Equal,
            (OidData::Func(f, xs), OidData::Func(g, ys)) => {
                self.display_cmp(*f, *g).then_with(|| {
                    for (x, y) in xs.iter().zip(ys.iter()) {
                        match self.display_cmp(*x, *y) {
                            Ordering::Equal => continue,
                            o => return o,
                        }
                    }
                    xs.len().cmp(&ys.len())
                })
            }
            _ => {
                // Both numerals (possibly mixed int/real).
                let (x, y) = (self.as_number(a).unwrap(), self.as_number(b).unwrap());
                x.partial_cmp(&y).unwrap_or(Ordering::Equal).then(a.cmp(&b))
            }
        }
    }

    /// Renders an OID the way the paper writes them: symbols bare,
    /// strings quoted, numerals plain, id-terms as `f(a,b)`.
    pub fn render(&self, o: Oid) -> String {
        let mut s = String::new();
        self.render_into(o, &mut s);
        s
    }

    fn render_into(&self, o: Oid, out: &mut String) {
        use fmt::Write;
        match self.get(o) {
            OidData::Sym(n) => out.push_str(n),
            OidData::Int(v) => {
                let _ = write!(out, "{v}");
            }
            OidData::Real(b) => {
                let _ = write!(out, "{}", f64::from_bits(*b));
            }
            OidData::Str(s) => {
                let _ = write!(out, "'{s}'");
            }
            OidData::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            OidData::Nil => out.push_str("nil"),
            OidData::Func(f, args) => {
                self.render_into(*f, out);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.render_into(*a, out);
                }
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = OidTable::new();
        let a = t.sym("mary123");
        let b = t.sym("mary123");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_kinds_distinct_oids() {
        let mut t = OidTable::new();
        let s = t.sym("20");
        let n = t.int(20);
        let st = t.str("20");
        assert_ne!(s, n);
        assert_ne!(n, st);
        assert_ne!(s, st);
    }

    #[test]
    fn id_terms_are_structural() {
        let mut t = OidTable::new();
        let f = t.sym("secretary");
        let d = t.sym("dept77");
        let a = t.func(f, &[d]);
        let b = t.func(f, &[d]);
        assert_eq!(a, b);
        let e = t.sym("dept78");
        let c = t.func(f, &[e]);
        assert_ne!(a, c);
        assert_eq!(t.render(a), "secretary(dept77)");
    }

    #[test]
    fn negative_zero_normalized() {
        let mut t = OidTable::new();
        assert_eq!(t.real(0.0), t.real(-0.0));
    }

    #[test]
    fn numbers_compare_numerically() {
        let mut t = OidTable::new();
        let a = t.int(2);
        let b = t.real(10.0);
        assert_eq!(t.display_cmp(a, b), std::cmp::Ordering::Less);
    }

    #[test]
    fn render_forms() {
        let mut t = OidTable::new();
        let s = t.str("newyork");
        assert_eq!(t.render(s), "'newyork'");
        let n = t.int(35000);
        assert_eq!(t.render(n), "35000");
        let nil = t.nil();
        assert_eq!(t.render(nil), "nil");
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        let mut t = OidTable::new();
        t.real(f64::NAN);
    }
}
