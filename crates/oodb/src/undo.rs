//! Undo-log transactions over [`Database`](crate::Database).
//!
//! The paper's semantics surfaces several *run-time* errors — ill-defined
//! object-creating queries (§4.1), non-translatable view updates (§4.2),
//! inheritance conflicts (§6.1) — that an engine can only detect after it
//! has started mutating the store. To make failed statements atomic, every
//! mutating entry point of [`Database`](crate::Database) records an
//! inverse operation ([`UndoOp`]) into the active [`UndoLog`] (when one
//! is open). Rolling back applies the recorded inverses in LIFO order.
//!
//! The API is mark-based rather than nested-handle-based:
//!
//! * [`Database::begin`](crate::Database::begin) opens a log (if none is
//!   open) and returns a [`Savepoint`] marking the current position;
//! * [`Database::savepoint`](crate::Database::savepoint) returns another
//!   mark further along the same log;
//! * [`Database::rollback_to`](crate::Database::rollback_to) undoes
//!   everything recorded after a mark (the log stays open, so an outer
//!   transaction can still roll back further);
//! * [`Database::commit`](crate::Database::commit) discards the log and
//!   stops recording.
//!
//! Two deliberate non-goals:
//!
//! * **OID interning is never undone.** The interner is append-only and
//!   monotone — an interned symbol that no statement refers to is
//!   semantically invisible (it is not an individual, class, or
//!   method-object until registered), so unwinding it would buy nothing
//!   and invalidate `Oid` handles held by callers.
//! * **No persistence here.** The undo log exists for statement
//!   atomicity, not durability; the durable mirror is the redo-op
//!   vocabulary of [`crate::redo`], recorded separately and written to
//!   disk by the `storage` crate.

use crate::oid::Oid;
use crate::schema::Signature;
use crate::value::Val;
use crate::MethodImpl;
use std::sync::Arc;

/// A position in the active [`UndoLog`]. Obtained from
/// [`Database::begin`](crate::Database::begin) /
/// [`Database::savepoint`](crate::Database::savepoint) and consumed by
/// [`Database::rollback_to`](crate::Database::rollback_to).
///
/// A savepoint taken under one `begin` span is dead once that span
/// commits; rolling back to a dead or already-rolled-back mark is an
/// error ([`crate::DbError::StaleSavepoint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Savepoint(pub(crate) usize);

/// One inverse operation. Each variant stores the pre-image needed to
/// reverse a single primitive mutation; applying a log's suffix in
/// reverse order restores the database to the state at the matching
/// [`Savepoint`].
#[derive(Clone)]
pub(crate) enum UndoOp {
    /// Inverse of `define_class`: remove the (then fresh) class again.
    UndefineClass(Oid),
    /// Inverse of `add_is_a`: remove the (then fresh) edge again.
    RemoveIsA {
        /// Subclass end of the edge.
        sub: Oid,
        /// Superclass end of the edge.
        sup: Oid,
    },
    /// Restore one stored-state entry to its pre-image (`None` =
    /// absent). Covers `set_scalar`, `set_set`, `insert_into_set`,
    /// `remove_value`, and the per-entry part of `purge_object`.
    RestoreState {
        /// The `(receiver, method, args)` key.
        key: (Oid, Oid, Vec<Oid>),
        /// Value before the mutation, if any.
        old: Option<Val>,
    },
    /// Restore membership of `o` in the individuals active domain.
    RestoreIndividual {
        /// The object.
        o: Oid,
        /// Whether it was an individual before the mutation.
        present: bool,
    },
    /// Restore the direct instance-of / extent membership of `(o, class)`.
    RestoreMembership {
        /// The object.
        o: Oid,
        /// The class.
        class: Oid,
        /// Whether the membership held before the mutation.
        present: bool,
    },
    /// Restore membership of `m` in the method-objects catalogue.
    RestoreMethodObject {
        /// The method-object.
        m: Oid,
        /// Whether it was catalogued before the mutation.
        present: bool,
    },
    /// Inverse of `add_signature`'s push: remove the (then fresh)
    /// signature from the class again.
    RemoveSignature {
        /// The declaring class.
        class: Oid,
        /// The signature that was pushed.
        sig: Signature,
    },
    /// Restore a class's inheritance-conflict resolution for `method`
    /// to its pre-image (`None` = no resolution).
    RestoreResolution {
        /// The resolving class.
        class: Oid,
        /// The conflicted method.
        method: Oid,
        /// Previous resolution target, if any.
        old: Option<Oid>,
    },
    /// Restore a computed-method slot to its pre-image (`None` = the
    /// slot did not exist, so the enumeration-order entry is popped too).
    RestoreComputed {
        /// The `(class, method, arity)` slot.
        key: (Oid, Oid, usize),
        /// Previous implementation, if any.
        old: Option<Arc<dyn MethodImpl>>,
    },
}

impl std::fmt::Debug for UndoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UndoOp::UndefineClass(c) => f.debug_tuple("UndefineClass").field(c).finish(),
            UndoOp::RemoveIsA { sub, sup } => f
                .debug_struct("RemoveIsA")
                .field("sub", sub)
                .field("sup", sup)
                .finish(),
            UndoOp::RestoreState { key, old } => f
                .debug_struct("RestoreState")
                .field("key", key)
                .field("old", old)
                .finish(),
            UndoOp::RestoreIndividual { o, present } => f
                .debug_struct("RestoreIndividual")
                .field("o", o)
                .field("present", present)
                .finish(),
            UndoOp::RestoreMembership { o, class, present } => f
                .debug_struct("RestoreMembership")
                .field("o", o)
                .field("class", class)
                .field("present", present)
                .finish(),
            UndoOp::RestoreMethodObject { m, present } => f
                .debug_struct("RestoreMethodObject")
                .field("m", m)
                .field("present", present)
                .finish(),
            UndoOp::RemoveSignature { class, sig } => f
                .debug_struct("RemoveSignature")
                .field("class", class)
                .field("sig", sig)
                .finish(),
            UndoOp::RestoreResolution { class, method, old } => f
                .debug_struct("RestoreResolution")
                .field("class", class)
                .field("method", method)
                .field("old", old)
                .finish(),
            UndoOp::RestoreComputed { key, old } => f
                .debug_struct("RestoreComputed")
                .field("key", key)
                .field("old", &old.as_ref().map(|_| "<impl>"))
                .finish(),
        }
    }
}

/// The active undo log: inverse operations in mutation order.
/// Held by [`Database`](crate::Database) while a transaction is open.
#[derive(Clone, Debug, Default)]
pub struct UndoLog {
    pub(crate) ops: Vec<UndoOp>,
}

impl UndoLog {
    /// Number of recorded inverse operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use crate::Database;

    /// Digest of the observable state the paper's semantics can see:
    /// stored entries, class sets, memberships, active domains.
    fn observe(db: &Database) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (r, m, a, v) in db.state_entries() {
            writeln!(s, "state {r:?} {m:?} {a:?} {v:?}").unwrap();
        }
        for c in db.classes() {
            writeln!(
                s,
                "class {c:?} supers={:?} inst={:?} sigs={:?}",
                db.direct_supers(c),
                db.instances_of(c),
                db.direct_signatures(c)
            )
            .unwrap();
        }
        writeln!(s, "individuals {:?}", db.individuals().collect::<Vec<_>>()).unwrap();
        writeln!(s, "methods {:?}", db.method_objects().collect::<Vec<_>>()).unwrap();
        s
    }

    #[test]
    fn rollback_reverses_schema_and_state_edits() {
        let mut db = Database::new();
        let person = db.define_class("Person", &[]).unwrap();
        let name = db.oids_mut().sym("Name");
        let p = db.new_individual("p1", &[person]).unwrap();
        let v = db.oids_mut().str("Pat");
        db.set_scalar(p, name, &[], v).unwrap();
        let before = observe(&db);

        let sp = db.begin();
        let emp = db.define_class("Employee", &[person]).unwrap();
        db.add_is_a(emp, db.builtins().object).unwrap();
        let string = db.builtins().string;
        db.add_signature(emp, "Dept", &[], string, false).unwrap();
        let dept = db.oids().find_sym("Dept").unwrap();
        let e = db.new_individual("e1", &[emp]).unwrap();
        let sales = db.oids_mut().str("Sales");
        db.set_scalar(e, dept, &[], sales).unwrap();
        db.insert_into_set(e, name, &[sales], v).unwrap();
        db.set_set(p, dept, &[], [sales, v]).unwrap();
        db.remove_value(p, name, &[]);
        db.remove_instance(p, person);
        db.purge_object(p);
        db.resolve_inheritance(emp, name, person).unwrap();
        assert_ne!(before, observe(&db));

        db.rollback_to(sp).unwrap();
        db.commit();
        assert_eq!(before, observe(&db));
        // The value is really back, through the full lookup path.
        assert_eq!(
            db.value(p, name, &[]).unwrap().and_then(|v| v.as_scalar()),
            Some(v)
        );
    }

    #[test]
    fn savepoints_nest_and_partial_rollback_keeps_outer_work() {
        let mut db = Database::new();
        let txn = db.begin();
        let a = db.define_class("A", &[]).unwrap();
        let sp = db.savepoint();
        let _b = db.define_class("B", &[a]).unwrap();
        assert!(db.oids().find_sym("B").is_some());
        db.rollback_to(sp).unwrap();
        // Inner work gone, outer work kept.
        assert!(db.classes().all(|c| db.render(c) != "B"));
        assert!(db.is_class(a));
        db.rollback_to(txn).unwrap();
        db.commit();
        assert!(!db.is_class(a));
        assert!(!db.in_transaction());
    }

    #[test]
    fn commit_makes_changes_permanent_and_marks_stale() {
        let mut db = Database::new();
        let sp = db.begin();
        let c = db.define_class("Keep", &[]).unwrap();
        db.commit();
        // Rolling back to a stale savepoint is an error and leaves the
        // committed state untouched.
        assert_eq!(db.rollback_to(sp), Err(crate::DbError::StaleSavepoint));
        assert!(db.is_class(c));
    }

    #[test]
    fn value_replacement_restores_old_value_and_index() {
        let mut db = Database::new();
        let c = db.define_class("Thing", &[]).unwrap();
        let o = db.new_individual("o", &[c]).unwrap();
        let m = db.oids_mut().sym("Tag");
        let red = db.oids_mut().str("red");
        let blue = db.oids_mut().str("blue");
        db.set_scalar(o, m, &[], red).unwrap();
        let sp = db.begin();
        db.set_scalar(o, m, &[], blue).unwrap();
        assert!(db.receivers_by_value(m, blue).contains(&o));
        db.rollback_to(sp).unwrap();
        db.commit();
        assert!(db.receivers_by_value(m, red).contains(&o));
        assert!(!db.receivers_by_value(m, blue).contains(&o));
        assert_eq!(
            db.value(o, m, &[]).unwrap().and_then(|v| v.as_scalar()),
            Some(red)
        );
    }

    #[test]
    fn computed_method_definition_rolls_back() {
        use crate::{DbResult, MethodImpl, Oid, Val};
        use std::sync::Arc;

        struct Answer;
        impl MethodImpl for Answer {
            fn invoke(
                &self,
                db: &Database,
                _recv: Oid,
                _args: &[Oid],
                _depth: usize,
            ) -> DbResult<Option<Val>> {
                let _ = db;
                Ok(None)
            }
        }

        let mut db = Database::new();
        let c = db.define_class("Thing", &[]).unwrap();
        let m = db.oids_mut().sym("Compute");
        let sp = db.begin();
        db.define_method(c, m, 0, Arc::new(Answer)).unwrap();
        assert!(db.has_computed(c, m, 0));
        db.rollback_to(sp).unwrap();
        db.commit();
        assert!(!db.has_computed(c, m, 0));
        assert!(!db.is_method_object(m));
    }
}
