//! Ergonomic construction of schemas and instances.
//!
//! [`DbBuilder`] wraps a [`Database`] with name-based, panicking helpers so
//! tests, examples and the workload generators can state schemas at the
//! same altitude as Figure 1 of the paper. Errors during construction are
//! programming errors in the fixture, hence the panics; the underlying
//! `Database` API remains fully `Result`-based.

use crate::database::Database;
use crate::oid::Oid;
use crate::value::Val;

/// Builder wrapper. Deref gives access to the underlying database.
#[derive(Debug, Default)]
pub struct DbBuilder {
    db: Database,
}

impl DbBuilder {
    /// Starts from a fresh database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing database.
    pub fn from_db(db: Database) -> Self {
        DbBuilder { db }
    }

    /// Finishes building.
    pub fn build(self) -> Database {
        self.db
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying database.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    // -- OID helpers ----------------------------------------------------

    /// Interns a symbol.
    pub fn sym(&mut self, name: &str) -> Oid {
        self.db.oids_mut().sym(name)
    }

    /// Interns an integer numeral object.
    pub fn int(&mut self, v: i64) -> Oid {
        self.db.oids_mut().int(v)
    }

    /// Interns a real numeral object.
    pub fn real(&mut self, v: f64) -> Oid {
        self.db.oids_mut().real(v)
    }

    /// Interns a string object.
    pub fn str(&mut self, v: &str) -> Oid {
        self.db.oids_mut().str(v)
    }

    // -- Schema ---------------------------------------------------------

    /// Defines a class under `Object`.
    pub fn class(&mut self, name: &str) -> Oid {
        self.db.define_class(name, &[]).expect("class")
    }

    /// Defines a class with explicit superclasses (by name).
    pub fn subclass(&mut self, name: &str, supers: &[&str]) -> Oid {
        let sup: Vec<Oid> = supers.iter().map(|s| self.sym(s)).collect();
        self.db.define_class(name, &sup).expect("subclass")
    }

    /// Declares a scalar attribute `class.name => result`.
    pub fn attr(&mut self, class: &str, name: &str, result: &str) -> Oid {
        let (c, r) = (self.sym(class), self.sym(result));
        self.db.add_signature(c, name, &[], r, false).expect("attr")
    }

    /// Declares a set-valued attribute `class.name =>> result`
    /// (the `*`-marked attributes of Figure 1).
    pub fn set_attr(&mut self, class: &str, name: &str, result: &str) -> Oid {
        let (c, r) = (self.sym(class), self.sym(result));
        self.db
            .add_signature(c, name, &[], r, true)
            .expect("set_attr")
    }

    /// Declares a k-ary method signature.
    pub fn method_sig(
        &mut self,
        class: &str,
        name: &str,
        args: &[&str],
        result: &str,
        set_valued: bool,
    ) -> Oid {
        let c = self.sym(class);
        let a: Vec<Oid> = args.iter().map(|s| self.sym(s)).collect();
        let r = self.sym(result);
        self.db
            .add_signature(c, name, &a, r, set_valued)
            .expect("method_sig")
    }

    // -- Instances and state ---------------------------------------------

    /// Creates an individual of one class.
    pub fn obj(&mut self, name: &str, class: &str) -> Oid {
        let c = self.sym(class);
        self.db.new_individual(name, &[c]).expect("obj")
    }

    /// Creates an individual of several classes (e.g. the workstudy
    /// example of §6.1).
    pub fn obj_multi(&mut self, name: &str, classes: &[&str]) -> Oid {
        let cs: Vec<Oid> = classes.iter().map(|c| self.sym(c)).collect();
        self.db.new_individual(name, &cs).expect("obj_multi")
    }

    /// Sets a scalar attribute value.
    pub fn set(&mut self, recv: Oid, attr: &str, value: Oid) {
        let m = self.sym(attr);
        self.db.set_scalar(recv, m, &[], value).expect("set");
    }

    /// Sets a scalar attribute to a string object.
    pub fn set_str(&mut self, recv: Oid, attr: &str, value: &str) {
        let v = self.str(value);
        self.set(recv, attr, v);
    }

    /// Sets a scalar attribute to an integer numeral.
    pub fn set_int(&mut self, recv: Oid, attr: &str, value: i64) {
        let v = self.int(value);
        self.set(recv, attr, v);
    }

    /// Sets a set-valued attribute.
    pub fn set_many(&mut self, recv: Oid, attr: &str, values: &[Oid]) {
        let m = self.sym(attr);
        self.db
            .set_set(recv, m, &[], values.iter().copied())
            .expect("set_many");
    }

    /// Adds one member to a set-valued attribute.
    pub fn add_to(&mut self, recv: Oid, attr: &str, value: Oid) {
        let m = self.sym(attr);
        self.db
            .insert_into_set(recv, m, &[], value)
            .expect("add_to");
    }

    /// Stores a k-ary method value (extensional method, e.g. the stored
    /// `workstudy : semester ==> student` facts).
    pub fn set_method_value(&mut self, recv: Oid, method: &str, args: &[Oid], value: Val) {
        let m = self.sym(method);
        match value {
            Val::Scalar(v) => self.db.set_scalar(recv, m, args, v).expect("method value"),
            Val::Set(s) => self.db.set_set(recv, m, args, s).expect("method value"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_schema() {
        let mut b = DbBuilder::new();
        b.class("Person");
        b.subclass("Employee", &["Person"]);
        b.attr("Person", "Name", "String");
        b.set_attr("Employee", "Qualifications", "String");
        let mary = b.obj("mary123", "Employee");
        b.set_str(mary, "Name", "Mary");
        let db = b.build();
        let person = db.oids().find_sym("Person").unwrap();
        let employee = db.oids().find_sym("Employee").unwrap();
        assert!(db.is_strict_subclass(employee, person));
        assert!(db.is_instance_of(mary, person));
        let name = db.oids().find_sym("Name").unwrap();
        let v = db.value(mary, name, &[]).unwrap().unwrap();
        assert_eq!(db.oids().as_str(v.as_scalar().unwrap()), Some("Mary"));
    }
}
