//! Snapshot-epoch publication for concurrent readers.
//!
//! The concurrency model of the `service` crate is *single writer,
//! many readers over immutable snapshots*: one thread owns the mutable
//! [`Database`] and, after each durable commit, publishes a frozen copy
//! behind an [`Arc`]. Readers grab the current [`EpochDb`] with one
//! cheap lock acquisition and then evaluate against it without any
//! further coordination — the writer never mutates a published copy
//! (copy-on-write at publication time), so readers observe a
//! consistent, committed state for as long as they hold the `Arc`.
//!
//! The epoch sequence number increases by one per publication and lets
//! clients reason about recency ("was this read before or after that
//! commit?") and lets the chaos harness assert plan invariance: two
//! reads of the same query at the same epoch must produce identical
//! answers regardless of thread interleaving.

use crate::database::Database;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// An immutable database snapshot tagged with its publication epoch.
///
/// Cloning is cheap (an `Arc` bump plus a `u64`); the underlying
/// [`Database`] is shared and must never be mutated after publication.
#[derive(Debug, Clone)]
pub struct EpochDb {
    /// Monotone publication counter: 0 for the initial state, +1 per
    /// [`EpochCell::publish`].
    pub seq: u64,
    /// The frozen committed state of this epoch.
    pub db: Arc<Database>,
}

/// Shared cell holding the most recently published epoch.
///
/// The single writer calls [`publish`](EpochCell::publish) after each
/// durable commit; any number of readers call
/// [`load`](EpochCell::load). The lock is held only for the duration
/// of an `Arc` clone, so readers never block the writer for a
/// meaningful time (and vice versa).
#[derive(Debug)]
pub struct EpochCell {
    cur: RwLock<EpochDb>,
    /// Mirror of the current sequence number, readable without taking
    /// the `RwLock`. Readers that cache a snapshot per epoch check this
    /// first and only pay the lock + two `Arc` refcount bumps when the
    /// epoch actually moved — under a read-heavy steady state that
    /// turns the per-read cost into one relaxed atomic load instead of
    /// cross-core refcount traffic on the shared `Arc<Database>`.
    seq: AtomicU64,
}

impl EpochCell {
    /// Wraps `db` as epoch 0 — the initial committed state.
    pub fn new(db: Database) -> Self {
        EpochCell {
            cur: RwLock::new(EpochDb {
                seq: 0,
                db: Arc::new(db),
            }),
            seq: AtomicU64::new(0),
        }
    }

    /// Returns the current epoch (an `Arc` clone of the snapshot).
    pub fn load(&self) -> EpochDb {
        self.cur.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The current sequence number without touching the snapshot lock
    /// or any `Arc`. May race one step behind [`EpochCell::load`]
    /// during a publication, never ahead of it — a reader that sees an
    /// equal sequence for its cached snapshot holds a snapshot at least
    /// that fresh.
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Publishes `db` as the next epoch and returns its sequence
    /// number. Called by the writer after its commit became durable;
    /// `db` must be a copy the writer will not touch again.
    pub fn publish(&self, db: Database) -> u64 {
        let mut cur = self.cur.write().unwrap_or_else(|e| e.into_inner());
        cur.seq += 1;
        cur.db = Arc::new(db);
        let seq = cur.seq;
        // Publish the mirror while still holding the write lock so
        // `seq()` can never run ahead of what `load()` returns.
        self.seq.store(seq, Ordering::Release);
        seq
    }
}
