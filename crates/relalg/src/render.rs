//! Deterministic textual rendering of relations — the output format of
//! the `paper_examples` harness and the examples.

use crate::relation::Relation;
use oodb::OidTable;

/// Renders a relation as an aligned ASCII table, rows in deterministic
/// order, OIDs rendered the way the paper writes them.
pub fn render_table(rel: &Relation, oids: &OidTable) -> String {
    let header: Vec<String> = rel.columns().to_vec();
    let rows: Vec<Vec<String>> = rel
        .iter()
        .map(|t| t.iter().map(|&o| oids.render(o)).collect())
        .collect();
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for r in &rows {
        for (w, cell) in widths.iter_mut().zip(r.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    let row_line = |out: &mut String, cells: &[String]| {
        out.push('|');
        for (i, w) in widths.iter().enumerate().take(ncols) {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            out.push(' ');
            out.push_str(cell);
            out.push_str(&" ".repeat(w - cell.len() + 1));
            out.push('|');
        }
        out.push('\n');
    };
    rule(&mut out);
    row_line(&mut out, &header);
    rule(&mut out);
    for r in &rows {
        row_line(&mut out, r);
    }
    rule(&mut out);
    out.push_str(&format!(
        "{} tuple{}\n",
        rows.len(),
        if rows.len() == 1 { "" } else { "s" }
    ));
    out
}

/// A node of a pretty-printable tree: a one-line label plus children.
/// Used by the `EXPLAIN ANALYZE` profile renderer, but generic — any
/// hierarchical report can be laid out with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// The single line of text shown for this node.
    pub label: String,
    /// Sub-nodes, rendered indented beneath the label.
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    /// A leaf node with the given label.
    pub fn leaf(label: impl Into<String>) -> Self {
        TreeNode {
            label: label.into(),
            children: Vec::new(),
        }
    }

    /// A node with children.
    pub fn branch(label: impl Into<String>, children: Vec<TreeNode>) -> Self {
        TreeNode {
            label: label.into(),
            children,
        }
    }
}

/// Renders a tree with box-drawing guides, deterministic and
/// newline-terminated:
///
/// ```text
/// root
/// ├─ first child
/// │  └─ grandchild
/// └─ second child
/// ```
pub fn render_tree(root: &TreeNode) -> String {
    let mut out = String::new();
    out.push_str(&root.label);
    out.push('\n');
    render_children(&root.children, "", &mut out);
    out
}

fn render_children(children: &[TreeNode], prefix: &str, out: &mut String) {
    for (i, child) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        out.push_str(prefix);
        out.push_str(if last { "└─ " } else { "├─ " });
        out.push_str(&child.label);
        out.push('\n');
        let deeper = format!("{prefix}{}", if last { "   " } else { "│  " });
        render_children(&child.children, &deeper, out);
    }
}

#[cfg(test)]
mod tree_tests {
    use super::*;

    #[test]
    fn renders_nested_tree_with_guides() {
        let tree = TreeNode::branch(
            "root",
            vec![
                TreeNode::branch("a", vec![TreeNode::leaf("a1"), TreeNode::leaf("a2")]),
                TreeNode::leaf("b"),
            ],
        );
        let s = render_tree(&tree);
        assert_eq!(s, "root\n├─ a\n│  ├─ a1\n│  └─ a2\n└─ b\n");
    }

    #[test]
    fn leaf_renders_as_single_line() {
        assert_eq!(render_tree(&TreeNode::leaf("only")), "only\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    #[test]
    fn renders_header_and_rows() {
        let mut t = OidTable::new();
        let a = t.sym("acme");
        let n = t.int(35000);
        let mut r = Relation::new(["CompName", "Salary"]);
        r.insert(vec![a, n]);
        let s = render_table(&r, &t);
        assert!(s.contains("CompName"));
        assert!(s.contains("acme"));
        assert!(s.contains("35000"));
        assert!(s.contains("1 tuple"));
    }

    #[test]
    fn empty_relation_renders() {
        let t = OidTable::new();
        let r = Relation::new(["X"]);
        let s = render_table(&r, &t);
        assert!(s.contains("0 tuples"));
    }
}

#[cfg(test)]
mod alignment_tests {
    use super::*;
    use crate::relation::Relation;
    use oodb::OidTable;

    #[test]
    fn columns_align_across_rows() {
        let mut t = OidTable::new();
        let long = t.str("a rather long value");
        let short = t.int(1);
        let mut r = Relation::new(["V"]);
        r.insert(vec![long]);
        r.insert(vec![short]);
        let s = render_table(&r, &t);
        let widths: std::collections::BTreeSet<usize> = s
            .lines()
            .filter(|l| l.starts_with('|'))
            .map(str::len)
            .collect();
        assert_eq!(widths.len(), 1, "ragged table:\n{s}");
    }

    #[test]
    fn id_terms_render_functionally() {
        let mut t = OidTable::new();
        let f = t.sym("CompSalaries");
        let a = t.sym("uniSQL");
        let b = t.sym("john13");
        let o = t.func(f, &[a, b]);
        let mut r = Relation::new(["V"]);
        r.insert(vec![o]);
        let s = render_table(&r, &t);
        assert!(s.contains("CompSalaries(uniSQL, john13)"), "{s}");
    }
}
