//! # relalg — relations as first-class query results
//!
//! §2 "Relations" of the SIGMOD'92 XSQL paper argues for having relations
//! on a par with objects: query answers are *sets of tuples of objects*
//! (duplicates eliminated, §4 intro), and relations computed by queries
//! "can be manipulated by relational algebra operators, e.g., UNION,
//! MINUS" (§3.3). This crate provides that substrate: ordered, duplicate-
//! free relations of OID tuples with the algebra operators and a
//! deterministic textual rendering used by the benchmark harness.

#![warn(missing_docs)]

mod relation;
mod render;

pub use relation::{RelError, Relation, Tuple};
pub use render::{render_table, render_tree, TreeNode};
