//! Duplicate-free relations of OID tuples and the algebra over them.

use oodb::Oid;
use std::collections::BTreeSet;
use std::fmt;

/// A tuple of object ids — one row of a query answer (§3.3).
pub type Tuple = Vec<Oid>;

/// Errors from relational algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// The two operands of UNION/MINUS/INTERSECT have different arities
    /// (union compatibility, as in SQL).
    ArityMismatch {
        /// Arity of the left operand.
        left: usize,
        /// Arity of the right operand.
        right: usize,
    },
    /// A projection referenced a column index outside the relation.
    BadColumn {
        /// The offending column index.
        column: usize,
        /// The relation's arity.
        arity: usize,
    },
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::ArityMismatch { left, right } => {
                write!(f, "arity mismatch: {left} vs {right}")
            }
            RelError::BadColumn { column, arity } => {
                write!(f, "column {column} out of range for arity {arity}")
            }
        }
    }
}

impl std::error::Error for RelError {}

/// A relation: named columns plus an ordered set of tuples. "Tuples
/// themselves do not have object id's and duplicates are not allowed"
/// (§4 intro) — the `BTreeSet` enforces both set-ness and a deterministic
/// iteration order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation {
    columns: Vec<String>,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// Creates an empty relation with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(columns: I) -> Self {
        Relation {
            columns: columns.into_iter().map(Into::into).collect(),
            tuples: BTreeSet::new(),
        }
    }

    /// Creates a relation of the given arity with default column names
    /// `c0, c1, …`.
    pub fn with_arity(arity: usize) -> Self {
        Relation::new((0..arity).map(|i| format!("c{i}")))
    }

    /// Builds a relation from a bulk of tuples in one pass: one sort
    /// plus a bulk tree build instead of a tree descent per tuple.
    /// Panics on arity mismatch, like [`Relation::insert`].
    pub fn from_tuples<S, C, I>(columns: C, tuples: I) -> Self
    where
        S: Into<String>,
        C: IntoIterator<Item = S>,
        I: IntoIterator<Item = Tuple>,
    {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        let arity = columns.len();
        let tuples: BTreeSet<Tuple> = tuples
            .into_iter()
            .inspect(|t| assert_eq!(t.len(), arity, "tuple arity mismatch"))
            .collect();
        Relation { columns, tuples }
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple (duplicates are silently absorbed). Panics if the
    /// tuple arity does not match — rows are produced by the evaluator,
    /// so a mismatch is a bug, not user error.
    pub fn insert(&mut self, t: Tuple) {
        assert_eq!(t.len(), self.arity(), "tuple arity mismatch");
        self.tuples.insert(t);
    }

    /// Membership test.
    pub fn contains(&self, t: &[Oid]) -> bool {
        self.tuples.contains(t)
    }

    /// Iterates tuples in deterministic (OID) order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The single column of a unary relation as a set — the common case
    /// `SELECT X` (§3.2 "the result of this query is a set of objects").
    pub fn as_set(&self) -> BTreeSet<Oid> {
        assert_eq!(self.arity(), 1, "as_set on non-unary relation");
        self.tuples.iter().map(|t| t[0]).collect()
    }

    fn check_compatible(&self, other: &Relation) -> Result<(), RelError> {
        if self.arity() != other.arity() {
            return Err(RelError::ArityMismatch {
                left: self.arity(),
                right: other.arity(),
            });
        }
        Ok(())
    }

    /// UNION (§3.3). Keeps the left operand's column names.
    pub fn union(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_compatible(other)?;
        let mut out = self.clone();
        out.tuples.extend(other.tuples.iter().cloned());
        Ok(out)
    }

    /// MINUS (§3.3).
    pub fn minus(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_compatible(other)?;
        let mut out = Relation::new(self.columns.clone());
        out.tuples = self.tuples.difference(&other.tuples).cloned().collect();
        Ok(out)
    }

    /// INTERSECT.
    pub fn intersect(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_compatible(other)?;
        let mut out = Relation::new(self.columns.clone());
        out.tuples = self.tuples.intersection(&other.tuples).cloned().collect();
        Ok(out)
    }

    /// Projection onto the given column indices (duplicates eliminated,
    /// set semantics).
    pub fn project(&self, cols: &[usize]) -> Result<Relation, RelError> {
        for &c in cols {
            if c >= self.arity() {
                return Err(RelError::BadColumn {
                    column: c,
                    arity: self.arity(),
                });
            }
        }
        let mut out = Relation::new(cols.iter().map(|&c| self.columns[c].clone()));
        for t in &self.tuples {
            out.tuples.insert(cols.iter().map(|&c| t[c]).collect());
        }
        Ok(out)
    }

    /// Selection by predicate.
    pub fn select<F: Fn(&[Oid]) -> bool>(&self, pred: F) -> Relation {
        let mut out = Relation::new(self.columns.clone());
        out.tuples = self.tuples.iter().filter(|t| pred(t)).cloned().collect();
        out
    }

    /// Cartesian product; columns concatenated.
    pub fn product(&self, other: &Relation) -> Relation {
        let mut out = Relation::new(
            self.columns
                .iter()
                .cloned()
                .chain(other.columns.iter().cloned()),
        );
        for a in &self.tuples {
            for b in &other.tuples {
                let mut t = a.clone();
                t.extend_from_slice(b);
                out.tuples.insert(t);
            }
        }
        out
    }

    /// Renames the columns (arity must match).
    pub fn renamed<S: Into<String>, I: IntoIterator<Item = S>>(mut self, columns: I) -> Relation {
        let cols: Vec<String> = columns.into_iter().map(Into::into).collect();
        assert_eq!(cols.len(), self.arity(), "rename arity mismatch");
        self.columns = cols;
        self
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let tuples: BTreeSet<Tuple> = iter.into_iter().collect();
        let arity = tuples.iter().next().map_or(0, |t| t.len());
        let mut r = Relation::with_arity(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb::OidTable;

    fn oids(t: &mut OidTable, names: &[&str]) -> Vec<Oid> {
        names.iter().map(|n| t.sym(n)).collect()
    }

    #[test]
    fn duplicates_eliminated() {
        let mut t = OidTable::new();
        let v = oids(&mut t, &["a", "b"]);
        let mut r = Relation::with_arity(2);
        r.insert(v.clone());
        r.insert(v);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn union_minus_intersect() {
        let mut t = OidTable::new();
        let (a, b, c) = (t.sym("a"), t.sym("b"), t.sym("c"));
        let r1: Relation = [vec![a], vec![b]].into_iter().collect();
        let r2: Relation = [vec![b], vec![c]].into_iter().collect();
        assert_eq!(r1.union(&r2).unwrap().len(), 3);
        assert_eq!(r1.minus(&r2).unwrap().as_set(), [a].into());
        assert_eq!(r1.intersect(&r2).unwrap().as_set(), [b].into());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let r1 = Relation::with_arity(1);
        let r2 = Relation::with_arity(2);
        assert!(matches!(
            r1.union(&r2),
            Err(RelError::ArityMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn project_and_select() {
        let mut t = OidTable::new();
        let (a, b, c) = (t.sym("a"), t.sym("b"), t.sym("c"));
        let r: Relation = [vec![a, b], vec![a, c], vec![b, c]].into_iter().collect();
        let p = r.project(&[0]).unwrap();
        assert_eq!(p.len(), 2); // duplicates collapse
        let s = r.select(|row| row[0] == a);
        assert_eq!(s.len(), 2);
        assert!(r.project(&[5]).is_err());
    }

    #[test]
    fn product_concatenates() {
        let mut t = OidTable::new();
        let (a, b) = (t.sym("a"), t.sym("b"));
        let r1: Relation = [vec![a]].into_iter().collect();
        let r2: Relation = [vec![b], vec![a]].into_iter().collect();
        let p = r1.product(&r2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.arity(), 2);
    }
}

impl Relation {
    /// Equi-join on column pairs: keeps every concatenation of an
    /// `self`-tuple and an `other`-tuple that agrees on all `(left,
    /// right)` column index pairs. Hash join on the key columns.
    pub fn join(&self, other: &Relation, on: &[(usize, usize)]) -> Result<Relation, RelError> {
        for &(l, r) in on {
            if l >= self.arity() {
                return Err(RelError::BadColumn {
                    column: l,
                    arity: self.arity(),
                });
            }
            if r >= other.arity() {
                return Err(RelError::BadColumn {
                    column: r,
                    arity: other.arity(),
                });
            }
        }
        let mut index: std::collections::HashMap<Vec<Oid>, Vec<&Tuple>> =
            std::collections::HashMap::new();
        for t in other.iter() {
            let key: Vec<Oid> = on.iter().map(|&(_, r)| t[r]).collect();
            index.entry(key).or_default().push(t);
        }
        let mut out = Relation::new(
            self.columns
                .iter()
                .cloned()
                .chain(other.columns.iter().cloned()),
        );
        for a in self.iter() {
            let key: Vec<Oid> = on.iter().map(|&(l, _)| a[l]).collect();
            if let Some(matches) = index.get(&key) {
                for b in matches {
                    let mut row = a.clone();
                    row.extend_from_slice(b);
                    out.insert(row);
                }
            }
        }
        Ok(out)
    }

    /// The tuples ordered by the given column sequence under a caller-
    /// supplied comparator (e.g. [`oodb::OidTable::display_cmp`] for
    /// human-meaningful output order).
    pub fn sorted_by<F>(&self, cols: &[usize], mut cmp: F) -> Vec<Tuple>
    where
        F: FnMut(Oid, Oid) -> std::cmp::Ordering,
    {
        let mut rows: Vec<Tuple> = self.iter().cloned().collect();
        rows.sort_by(|a, b| {
            for &c in cols {
                match cmp(a[c], b[c]) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    }
}

#[cfg(test)]
mod join_tests {
    use super::*;
    use oodb::OidTable;

    #[test]
    fn hash_join_matches_keys() {
        let mut t = OidTable::new();
        let (a, b, c) = (t.sym("a"), t.sym("b"), t.sym("c"));
        let (x, y) = (t.sym("x"), t.sym("y"));
        let r1: Relation = [vec![a, x], vec![b, y], vec![c, x]].into_iter().collect();
        let r2: Relation = [vec![x, a], vec![y, b]].into_iter().collect();
        let j = r1.join(&r2, &[(1, 0)]).unwrap();
        assert_eq!(j.arity(), 4);
        assert_eq!(j.len(), 3); // (a,x)+(x,a), (b,y)+(y,b), (c,x)+(x,a)
        assert!(r1.join(&r2, &[(9, 0)]).is_err());
    }

    #[test]
    fn sorted_by_orders_rows() {
        let mut t = OidTable::new();
        let (n1, n2, n3) = (t.int(3), t.int(1), t.int(2));
        let r: Relation = [vec![n1], vec![n2], vec![n3]].into_iter().collect();
        let sorted = r.sorted_by(&[0], |a, b| t.display_cmp(a, b));
        let vals: Vec<f64> = sorted
            .iter()
            .map(|row| t.as_number(row[0]).unwrap())
            .collect();
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
    }
}
