//! Direct tests of the F-logic substrate: molecule satisfaction in the
//! extracted structure, quantifiers, and translation details.

use flogic::{evaluate, translate_select, Atom, FStructure, FTerm, Formula, Sort};
use oodb::DbBuilder;
use std::collections::BTreeMap;
use xsql::ast::Stmt;
use xsql::{parse, resolve_stmt};

fn tiny_db() -> oodb::Database {
    let mut b = DbBuilder::new();
    b.class("Person");
    b.subclass("Employee", &["Person"]);
    b.attr("Person", "Name", "String");
    b.set_attr("Person", "Knows", "Person");
    let a = b.obj("alice", "Employee");
    let c = b.obj("carol", "Person");
    b.set_str(a, "Name", "Alice");
    b.set_many(a, "Knows", &[c]);
    b.build()
}

#[test]
fn data_molecule_member_semantics() {
    let db = tiny_db();
    let m = FStructure::new(&db);
    let alice = db.oids().find_sym("alice").unwrap();
    let carol = db.oids().find_sym("carol").unwrap();
    let knows = db.oids().find_sym("Knows").unwrap();
    let v = BTreeMap::new();
    // alice[Knows ->> carol] holds; carol[Knows ->> alice] does not.
    let atom = |o, val| Atom::Data {
        obj: FTerm::Oid(o),
        method: FTerm::Oid(knows),
        args: vec![],
        value: FTerm::Oid(val),
    };
    assert!(m.holds(&atom(alice, carol), &v));
    assert!(!m.holds(&atom(carol, alice), &v));
}

#[test]
fn isa_molecule_closed_upward() {
    let db = tiny_db();
    let m = FStructure::new(&db);
    let alice = db.oids().find_sym("alice").unwrap();
    let person = db.oids().find_sym("Person").unwrap();
    let v = BTreeMap::new();
    assert!(m.holds(&Atom::IsA(FTerm::Oid(alice), FTerm::Oid(person)), &v));
    assert!(m.holds(
        &Atom::IsA(FTerm::Oid(alice), FTerm::Oid(db.builtins().object)),
        &v
    ));
}

#[test]
fn quantifiers_over_active_domain() {
    let db = tiny_db();
    let m = FStructure::new(&db);
    let person = db.oids().find_sym("Person").unwrap();
    // ∃x. x : Person
    let exists = Formula::exists(
        vec![("x".into(), Sort::Individual)],
        Formula::Atom(Atom::IsA(FTerm::ivar("x"), FTerm::Oid(person))),
    );
    assert!(flogic::evaluate(
        &m,
        &flogic::FQuery {
            head: vec![],
            body: exists.clone()
        }
    )
    .contains(&vec![]));
    // ∀x. x : Person is false — strings/numerals are individuals too.
    let forall = Formula::forall(
        vec![("x".into(), Sort::Individual)],
        Formula::Atom(Atom::IsA(FTerm::ivar("x"), FTerm::Oid(person))),
    );
    assert!(evaluate(
        &m,
        &flogic::FQuery {
            head: vec![],
            body: forall
        }
    )
    .is_empty());
}

#[test]
fn translation_produces_data_molecules_per_step() {
    let mut db = tiny_db();
    let stmt = parse("SELECT X FROM Person X WHERE X.Knows.Name['Carol']").unwrap();
    let Stmt::Select(q) = resolve_stmt(&mut db, &stmt).unwrap() else {
        panic!()
    };
    let fq = translate_select(&db, &q).unwrap();
    assert_eq!(fq.head.len(), 1);
    // Count Data atoms in the body: one per path step (2).
    fn count_data(f: &Formula) -> usize {
        match f {
            Formula::Atom(Atom::Data { .. }) => 1,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().map(count_data).sum(),
            Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => count_data(g),
            _ => 0,
        }
    }
    assert_eq!(count_data(&fq.body), 2);
}

#[test]
fn method_variable_translates_to_method_sorted_var() {
    let mut db = tiny_db();
    let stmt = parse("SELECT Y FROM Person X WHERE X.\"Y.Name['Alice']").unwrap();
    let Stmt::Select(q) = resolve_stmt(&mut db, &stmt).unwrap() else {
        panic!()
    };
    let fq = translate_select(&db, &q).unwrap();
    assert_eq!(fq.head, vec![("Y".to_string(), Sort::Method)]);
    let m = FStructure::new(&db);
    let answers = evaluate(&m, &fq);
    // X."Y.Name['Alice'] needs an attribute Y whose value's Name is
    // 'Alice'; alice's only link (Knows) reaches carol, who has no
    // name, so no attribute qualifies.
    assert!(answers.is_empty());
}

#[test]
fn strict_subclass_atom() {
    let db = tiny_db();
    let m = FStructure::new(&db);
    let person = db.oids().find_sym("Person").unwrap();
    let employee = db.oids().find_sym("Employee").unwrap();
    let v = BTreeMap::new();
    assert!(m.holds(
        &Atom::StrictSub(FTerm::Oid(employee), FTerm::Oid(person)),
        &v
    ));
    assert!(!m.holds(&Atom::StrictSub(FTerm::Oid(person), FTerm::Oid(person)), &v));
}

mod more_equivalence {
    use flogic::{evaluate, translate_select, FStructure};
    use oodb::Oid;
    use std::collections::BTreeSet;
    use xsql::ast::Stmt;
    use xsql::{eval_select, parse, resolve_stmt, EvalOptions};

    fn check(db: &mut oodb::Database, src: &str) {
        let stmt = parse(src).unwrap();
        let Stmt::Select(q) = resolve_stmt(db, &stmt).unwrap() else {
            panic!()
        };
        let xs: BTreeSet<Vec<Oid>> = eval_select(db, &q, &EvalOptions::default())
            .unwrap()
            .iter()
            .cloned()
            .collect();
        let fq = translate_select(db, &q).unwrap();
        let fl = evaluate(&FStructure::new(db), &fq);
        assert_eq!(xs, fl, "on {src}");
    }

    #[test]
    fn set_comparators_and_operand_set_ops_equivalent() {
        let mut db = datagen::figure1_db();
        for src in [
            "SELECT X FROM Employee X WHERE X.OwnedVehicles.Color containsEq {'red'}",
            "SELECT X FROM Person X WHERE X.OwnedVehicles.Color subsetEq {'green'}",
            "SELECT X FROM Employee X WHERE X.OwnedVehicles.Color contains {'red'}",
            "SELECT X FROM Person X WHERE X.OwnedVehicles.Color union X.Residence.City \
             containsEq {'green', 'newyork'}",
            "SELECT X FROM Person X WHERE X.Age >= 34 and not X.Residence.City['austin']",
        ] {
            check(&mut db, src);
        }
    }

    #[test]
    fn quantifier_matrix_equivalent() {
        let mut db = datagen::figure1_db();
        for op in ["<", "<=", ">", ">=", "=", "!="] {
            for (lq, rq) in [
                ("", ""),
                ("some", ""),
                ("all", ""),
                ("", "some"),
                ("", "all"),
                ("all", "all"),
            ] {
                let src = format!(
                    "SELECT X, Y FROM Employee X, Employee Y \
                     WHERE X.FamMembers.Age {lq}{op}{rq} Y.FamMembers.Age"
                );
                check(&mut db, &src);
            }
        }
    }
}
