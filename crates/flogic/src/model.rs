//! The F-structure extracted from an `oodb` database.
//!
//! F-logic semantics interprets molecules in a structure; for the
//! purposes of Theorem 3.1 the structure is exactly the database with
//! behavioral inheritance applied — which is what [`oodb::Database`]'s
//! `value` judgment computes. This wrapper exposes the three atom
//! interpretations and the sort domains.

use crate::term::{Atom, CmpOp, FTerm, Sort};
use oodb::{Database, Oid, OidData};
use std::collections::BTreeMap;

/// A read-only F-structure over a database.
pub struct FStructure<'d> {
    db: &'d Database,
}

impl<'d> FStructure<'d> {
    /// Wraps a database.
    pub fn new(db: &'d Database) -> Self {
        FStructure { db }
    }

    /// The underlying database.
    pub fn db(&self) -> &'d Database {
        self.db
    }

    /// The domain of a sort (active-domain semantics).
    pub fn domain(&self, sort: Sort) -> Vec<Oid> {
        match sort {
            Sort::Individual => self.db.individuals().collect(),
            Sort::Class => self.db.classes().collect(),
            Sort::Method => self.db.method_objects().collect(),
        }
    }

    /// Resolves a term under a variable valuation.
    pub fn term(&self, t: &FTerm, v: &BTreeMap<String, Oid>) -> Option<Oid> {
        match t {
            FTerm::Oid(o) => Some(*o),
            FTerm::Var(n, _) => v.get(n).copied(),
        }
    }

    /// Numeral-insensitive equality (matching the engine's `oid_eq`).
    pub fn eq(&self, a: Oid, b: Oid) -> bool {
        if a == b {
            return true;
        }
        matches!(
            (self.db.oids().as_number(a), self.db.oids().as_number(b)),
            (Some(x), Some(y)) if x == y
        )
    }

    fn cmp(&self, op: CmpOp, a: Oid, b: Oid) -> bool {
        match op {
            CmpOp::Eq => self.eq(a, b),
            CmpOp::Ne => !self.eq(a, b),
            _ => {
                if let (Some(x), Some(y)) =
                    (self.db.oids().as_number(a), self.db.oids().as_number(b))
                {
                    return match op {
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                        _ => unreachable!(),
                    };
                }
                if let (OidData::Str(x), OidData::Str(y)) =
                    (self.db.oids().get(a), self.db.oids().get(b))
                {
                    return match op {
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                        _ => unreachable!(),
                    };
                }
                false
            }
        }
    }

    /// Truth of a ground atom under a (total, for the atom) valuation.
    /// Unresolved variables make the atom false — callers quantify.
    pub fn holds(&self, atom: &Atom, v: &BTreeMap<String, Oid>) -> bool {
        match atom {
            Atom::IsA(o, c) => match (self.term(o, v), self.term(c, v)) {
                (Some(o), Some(c)) => self.db.is_instance_of(o, c),
                _ => false,
            },
            Atom::StrictSub(a, b) => match (self.term(a, v), self.term(b, v)) {
                (Some(a), Some(b)) => self.db.is_strict_subclass(a, b),
                _ => false,
            },
            Atom::Data {
                obj,
                method,
                args,
                value,
            } => {
                let (Some(o), Some(m), Some(val)) =
                    (self.term(obj, v), self.term(method, v), self.term(value, v))
                else {
                    return false;
                };
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    match self.term(a, v) {
                        Some(x) => argv.push(x),
                        None => return false,
                    }
                }
                match self.db.value(o, m, &argv) {
                    Ok(Some(val_set)) => {
                        val_set.contains(val) || val_set.members().any(|x| self.eq(x, val))
                    }
                    _ => false,
                }
            }
            Atom::Cmp(op, a, b) => match (self.term(a, v), self.term(b, v)) {
                (Some(a), Some(b)) => self.cmp(*op, a, b),
                _ => false,
            },
        }
    }
}
