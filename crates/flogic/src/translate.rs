//! The Theorem 3.1 translation: resolved XSQL queries → first-order
//! F-logic queries.
//!
//! "There exists an effective procedure P that for any given XSQL query
//! φ (of the form considered thus far) returns an equivalent first-order
//! query in F-logic P(φ)." This module is that procedure for the §3/§5
//! query fragment: path expressions with selectors and method
//! expressions (including method variables), Boolean connectives,
//! quantified comparisons, set comparators, and schema predicates.
//! Aggregates and arithmetic are *not* first-order expressible and are
//! rejected, as are object-creating clauses (§4 is beyond the theorem's
//! scope).

use crate::term::{Atom, CmpOp, FTerm, Formula, Sort};
use xsql::ast;
use xsql::XsqlError;

/// A first-order F-logic query: answer variables plus a body formula.
#[derive(Debug, Clone)]
pub struct FQuery {
    /// The answer tuple, in SELECT order.
    pub head: Vec<(String, Sort)>,
    /// The body.
    pub body: Formula,
}

struct Tr {
    fresh: usize,
}

impl Tr {
    fn fresh(&mut self) -> FTerm {
        self.fresh += 1;
        FTerm::Var(format!("_f{}", self.fresh), Sort::Individual)
    }

    fn sort_of(s: ast::VarSort) -> Sort {
        match s {
            ast::VarSort::Individual => Sort::Individual,
            ast::VarSort::Class => Sort::Class,
            ast::VarSort::Method => Sort::Method,
        }
    }

    /// Constants and variables only; composite terms are handled by the
    /// translator (which owns the database handle).
    fn term(&mut self, t: &ast::IdTerm) -> Result<FTerm, XsqlError> {
        match t {
            ast::IdTerm::Oid(o) => Ok(FTerm::Oid(*o)),
            ast::IdTerm::Var(v) => Ok(FTerm::Var(v.name.clone(), Self::sort_of(v.sort))),
            other => Err(XsqlError::Resolve(format!(
                "term {other:?} is outside the Theorem 3.1 fragment"
            ))),
        }
    }

    fn cmp_op(op: ast::CmpOp) -> CmpOp {
        match op {
            ast::CmpOp::Eq => CmpOp::Eq,
            ast::CmpOp::Ne => CmpOp::Ne,
            ast::CmpOp::Lt => CmpOp::Lt,
            ast::CmpOp::Le => CmpOp::Le,
            ast::CmpOp::Gt => CmpOp::Gt,
            ast::CmpOp::Ge => CmpOp::Ge,
        }
    }
}

/// Translates a resolved, relation-producing SELECT query into an
/// F-logic query.
pub fn translate_select(db: &oodb::Database, q: &ast::SelectQuery) -> Result<FQuery, XsqlError> {
    let mut tr = Translator {
        db,
        inner: Tr { fresh: 0 },
    };
    tr.query(q)
}

struct Translator<'d> {
    db: &'d oodb::Database,
    inner: Tr,
}

impl Translator<'_> {
    fn query(&mut self, q: &ast::SelectQuery) -> Result<FQuery, XsqlError> {
        if q.oid_fn.is_some() {
            return Err(XsqlError::Resolve(
                "object-creating queries are outside the Theorem 3.1 fragment".into(),
            ));
        }
        let mut conj: Vec<Formula> = Vec::new();
        for f in &q.from {
            let obj = self.term(&ast::IdTerm::Var(f.var.clone()), &mut conj)?;
            let class = self.term(&f.class, &mut conj)?;
            conj.push(Formula::Atom(Atom::IsA(obj, class)));
        }
        conj.push(self.cond(&q.where_clause)?);

        let mut head: Vec<(String, Sort)> = Vec::new();
        for item in &q.select {
            match item {
                ast::SelectItem::Expr(ast::Operand::Path(p)) => {
                    if p.steps.is_empty() {
                        if let ast::IdTerm::Var(v) = &p.head {
                            head.push((v.name.clone(), Tr::sort_of(v.sort)));
                            continue;
                        }
                    }
                    // A non-variable SELECT path: materialize its value
                    // into a fresh answer variable.
                    let v = format!("_ans{}", head.len());
                    head.push((v.clone(), Sort::Individual));
                    conj.push(self.path_with_tail(p, FTerm::ivar(v))?);
                }
                other => {
                    return Err(XsqlError::Resolve(format!(
                        "SELECT item {other:?} is outside the Theorem 3.1 fragment"
                    )))
                }
            }
        }
        let body = Formula::and(conj);
        // Existentially close every non-answer free variable.
        let mut free = body.free_vars();
        for (n, _) in &head {
            free.remove(n);
        }
        let ex: Vec<(String, Sort)> = free.into_iter().collect();
        Ok(FQuery {
            head,
            body: Formula::exists(ex, body),
        })
    }

    fn term(&mut self, t: &ast::IdTerm, conj: &mut Vec<Formula>) -> Result<FTerm, XsqlError> {
        match t {
            ast::IdTerm::PathArg(p) => {
                // The paper's Z-rewriting: a fresh variable constrained
                // to the path's value.
                let z = self.inner.fresh();
                let f = self.path_with_tail(p, z.clone())?;
                conj.push(f);
                Ok(z)
            }
            _ => self.inner.term(t),
        }
    }

    fn path_with_tail(&mut self, p: &ast::PathExpr, tail: FTerm) -> Result<Formula, XsqlError> {
        let mut conj: Vec<Formula> = Vec::new();
        let mut exists: Vec<(String, Sort)> = Vec::new();
        let mut cur = self.term(&p.head, &mut conj)?;
        if p.steps.is_empty() {
            conj.push(Formula::Atom(Atom::Cmp(CmpOp::Eq, cur, tail)));
            return Ok(Formula::exists(exists, Formula::and(conj)));
        }
        let n = p.steps.len();
        for (i, step) in p.steps.iter().enumerate() {
            let last = i + 1 == n;
            let ast::Step::Method {
                method,
                args,
                selector,
            } = step
            else {
                return Err(XsqlError::Resolve(
                    "path variables are outside the Theorem 3.1 fragment".into(),
                ));
            };
            let m = match method {
                ast::MethodTerm::Name(name) => FTerm::Oid(
                    self.db
                        .oids()
                        .find_sym(name)
                        .ok_or_else(|| XsqlError::Resolve(format!("`{name}` not interned")))?,
                ),
                ast::MethodTerm::Var(v) => FTerm::Var(v.clone(), Sort::Method),
            };
            let argv = args
                .iter()
                .map(|a| self.term(a, &mut conj))
                .collect::<Result<Vec<_>, _>>()?;
            let value = match (selector, last) {
                (Some(t), _) => {
                    let s = self.term(t, &mut conj)?;
                    if last {
                        conj.push(Formula::Atom(Atom::Cmp(CmpOp::Eq, s.clone(), tail.clone())));
                    }
                    s
                }
                (None, true) => tail.clone(),
                (None, false) => {
                    let v = self.inner.fresh();
                    if let FTerm::Var(vn, vs) = &v {
                        exists.push((vn.clone(), *vs));
                    }
                    v
                }
            };
            conj.push(Formula::Atom(Atom::Data {
                obj: cur,
                method: m,
                args: argv,
                value: value.clone(),
            }));
            cur = value;
        }
        Ok(Formula::exists(exists, Formula::and(conj)))
    }

    /// φ(x) such that x ranges over the operand's value set.
    fn operand_pred(&mut self, op: &ast::Operand, x: FTerm) -> Result<Formula, XsqlError> {
        match op {
            ast::Operand::Path(p) => self.path_with_tail(p, x),
            ast::Operand::SetLit(ts) => {
                let mut alts = Vec::new();
                for t in ts {
                    let mut conj = Vec::new();
                    let c = self.term(t, &mut conj)?;
                    conj.push(Formula::Atom(Atom::Cmp(CmpOp::Eq, x.clone(), c)));
                    alts.push(Formula::and(conj));
                }
                Ok(Formula::Or(alts))
            }
            ast::Operand::Union(a, b) => Ok(Formula::Or(vec![
                self.operand_pred(a, x.clone())?,
                self.operand_pred(b, x)?,
            ])),
            ast::Operand::Intersection(a, b) => Ok(Formula::and(vec![
                self.operand_pred(a, x.clone())?,
                self.operand_pred(b, x)?,
            ])),
            ast::Operand::Difference(a, b) => Ok(Formula::and(vec![
                self.operand_pred(a, x.clone())?,
                Formula::Not(Box::new(self.operand_pred(b, x)?)),
            ])),
            other => Err(XsqlError::Resolve(format!(
                "operand {other:?} is outside the Theorem 3.1 fragment \
                 (aggregates/arithmetic are not first-order)"
            ))),
        }
    }

    fn cond(&mut self, c: &ast::Cond) -> Result<Formula, XsqlError> {
        match c {
            ast::Cond::True => Ok(Formula::True),
            ast::Cond::Path(p) => {
                // Stand-alone path: its value is non-empty.
                let t = self.inner.fresh();
                let FTerm::Var(n, s) = t.clone() else {
                    unreachable!()
                };
                Ok(Formula::exists(vec![(n, s)], self.path_with_tail(p, t)?))
            }
            ast::Cond::Cmp {
                left,
                lq,
                op,
                rq,
                right,
            } => {
                // A trivial-path operand (a selector — constant or
                // variable) denotes a singleton: substitute its term
                // directly. This keeps the translation within
                // active-domain semantics even for literals that occur
                // nowhere in the database (e.g. `some> 20`), where a
                // quantified variable would find no witness.
                let direct = |op: &ast::Operand| -> Option<FTerm> {
                    match op {
                        ast::Operand::Path(p) if p.steps.is_empty() => match &p.head {
                            ast::IdTerm::Oid(o) => Some(FTerm::Oid(*o)),
                            ast::IdTerm::Var(v) => {
                                Some(FTerm::Var(v.name.clone(), Tr::sort_of(v.sort)))
                            }
                            _ => None,
                        },
                        _ => None,
                    }
                };
                let lq = lq.unwrap_or(ast::Quant::Some);
                let rq = rq.unwrap_or(ast::Quant::Some);
                // Left side: direct term or quantified predicate var.
                let (lterm, lwrap): (FTerm, Option<(String, Sort, Formula)>) = match direct(left) {
                    Some(t) => (t, None),
                    None => {
                        let lx = self.inner.fresh();
                        let FTerm::Var(ln, ls) = lx.clone() else {
                            unreachable!()
                        };
                        let fl = self.operand_pred(left, lx.clone())?;
                        (lx, Some((ln, ls, fl)))
                    }
                };
                let (rterm, rwrap): (FTerm, Option<(String, Sort, Formula)>) = match direct(right) {
                    Some(t) => (t, None),
                    None => {
                        let rx = self.inner.fresh();
                        let FTerm::Var(rn, rs) = rx.clone() else {
                            unreachable!()
                        };
                        let fr = self.operand_pred(right, rx.clone())?;
                        (rx, Some((rn, rs, fr)))
                    }
                };
                let cmp = Formula::Atom(Atom::Cmp(Tr::cmp_op(*op), lterm, rterm));
                // Build Q_l x ∈ L. Q_r y ∈ R. cmp(x,y), skipping the
                // quantifier for direct sides.
                let inner = match rwrap {
                    None => cmp,
                    Some((rn, rs, fr)) => match rq {
                        ast::Quant::Some => {
                            Formula::exists(vec![(rn, rs)], Formula::and(vec![fr, cmp]))
                        }
                        ast::Quant::All => Formula::forall(
                            vec![(rn, rs)],
                            Formula::Or(vec![Formula::Not(Box::new(fr)), cmp]),
                        ),
                    },
                };
                Ok(match lwrap {
                    None => inner,
                    Some((ln, ls, fl)) => match lq {
                        ast::Quant::Some => {
                            Formula::exists(vec![(ln, ls)], Formula::and(vec![fl, inner]))
                        }
                        ast::Quant::All => Formula::forall(
                            vec![(ln, ls)],
                            Formula::Or(vec![Formula::Not(Box::new(fl)), inner]),
                        ),
                    },
                })
            }
            ast::Cond::SetCmp { left, op, right } => {
                let x = self.inner.fresh();
                let FTerm::Var(n, s) = x.clone() else {
                    unreachable!()
                };
                let subset_eq = |me: &mut Self,
                                 a: &ast::Operand,
                                 b: &ast::Operand,
                                 x: FTerm,
                                 n: String,
                                 s: Sort|
                 -> Result<Formula, XsqlError> {
                    let fa = me.operand_pred(a, x.clone())?;
                    let fb = me.operand_pred(b, x)?;
                    Ok(Formula::forall(
                        vec![(n, s)],
                        Formula::Or(vec![Formula::Not(Box::new(fa)), fb]),
                    ))
                };
                let mk = |me: &mut Self, a: &ast::Operand, b: &ast::Operand| {
                    let x2 = me.inner.fresh();
                    let FTerm::Var(n2, s2) = x2.clone() else {
                        unreachable!()
                    };
                    subset_eq(me, a, b, x2, n2, s2)
                };
                Ok(match op {
                    ast::SetCmpOp::SubsetEq => subset_eq(self, left, right, x, n, s)?,
                    ast::SetCmpOp::ContainsEq => subset_eq(self, right, left, x, n, s)?,
                    ast::SetCmpOp::Subset => Formula::and(vec![
                        subset_eq(self, left, right, x, n, s)?,
                        Formula::Not(Box::new(mk(self, right, left)?)),
                    ]),
                    ast::SetCmpOp::Contains => Formula::and(vec![
                        subset_eq(self, right, left, x, n, s)?,
                        Formula::Not(Box::new(mk(self, left, right)?)),
                    ]),
                })
            }
            ast::Cond::SubclassOf { sub, sup } => {
                let mut conj = Vec::new();
                let a = self.term(sub, &mut conj)?;
                let b = self.term(sup, &mut conj)?;
                conj.push(Formula::Atom(Atom::StrictSub(a, b)));
                Ok(Formula::and(conj))
            }
            ast::Cond::InstanceOf { obj, class } => {
                let mut conj = Vec::new();
                let o = self.term(obj, &mut conj)?;
                let c = self.term(class, &mut conj)?;
                conj.push(Formula::Atom(Atom::IsA(o, c)));
                Ok(Formula::and(conj))
            }
            ast::Cond::And(a, b) => Ok(Formula::and(vec![self.cond(a)?, self.cond(b)?])),
            ast::Cond::Or(a, b) => Ok(Formula::Or(vec![self.cond(a)?, self.cond(b)?])),
            ast::Cond::Not(a) => Ok(Formula::Not(Box::new(self.cond(a)?))),
            ast::Cond::Update(_) => Err(XsqlError::Resolve(
                "UPDATE conjuncts are outside the Theorem 3.1 fragment".into(),
            )),
        }
    }
}
