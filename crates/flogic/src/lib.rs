//! # flogic — F-logic substrate and the Theorem 3.1 translation
//!
//! Theorem 3.1 of the paper states that every XSQL query (of the §3
//! form) has an equivalent first-order query in F-logic \[KLW90\]. This
//! crate mechanizes the theorem: it provides
//!
//! * the fragment of F-logic the translation targets — id-terms, *is-a*
//!   assertions, scalar/set *data molecules* `t[m@a1,…,ak -> v]` /
//!   `->>`, and first-order formulas over them;
//! * a model extraction from an [`oodb::Database`] (the F-structure the
//!   paper's semantics interprets molecules in, with behavioral
//!   inheritance already applied to the data);
//! * a formula evaluator over that structure (active-domain semantics);
//! * the translator from resolved XSQL queries to F-logic formulas.
//!
//! The integration tests differentially check, per Theorem 3.1, that
//! evaluating the translated formula yields exactly the XSQL answer.

#![warn(missing_docs)]

mod eval;
mod model;
mod render;
mod term;
mod translate;

pub use eval::evaluate;
pub use model::FStructure;
pub use render::{render_formula, render_term};
pub use term::{Atom, FTerm, Formula, Sort};
pub use translate::{translate_select, FQuery};
