//! Rendering F-logic formulas in the paper's molecular notation.

use crate::term::{Atom, CmpOp, FTerm, Formula, Sort};
use oodb::Database;
use std::fmt::Write;

/// Renders a term: constants as the paper writes OIDs, variables with a
/// sort-indicating prefix (`?x`, `?"m`, `?#c`).
pub fn render_term(db: &Database, t: &FTerm) -> String {
    match t {
        FTerm::Oid(o) => db.render(*o),
        FTerm::Var(n, s) => match s {
            Sort::Individual => format!("?{n}"),
            Sort::Method => format!("?\"{n}"),
            Sort::Class => format!("?#{n}"),
        },
    }
}

/// Renders a formula in F-logic syntax: data molecules as
/// `t[m@a,… ->> v]`, is-a as `t : c`, subclass as `c1 :: c2`.
pub fn render_formula(db: &Database, f: &Formula) -> String {
    let mut out = String::new();
    go(db, f, &mut out);
    out
}

fn go(db: &Database, f: &Formula, out: &mut String) {
    match f {
        Formula::True => out.push_str("true"),
        Formula::Atom(a) => atom(db, a, out),
        Formula::And(fs) => {
            out.push('(');
            for (i, g) in fs.iter().enumerate() {
                if i > 0 {
                    out.push_str(" ∧ ");
                }
                go(db, g, out);
            }
            out.push(')');
        }
        Formula::Or(fs) => {
            out.push('(');
            for (i, g) in fs.iter().enumerate() {
                if i > 0 {
                    out.push_str(" ∨ ");
                }
                go(db, g, out);
            }
            out.push(')');
        }
        Formula::Not(g) => {
            out.push('¬');
            go(db, g, out);
        }
        Formula::Exists(vs, g) => {
            quantified(db, "∃", vs, g, out);
        }
        Formula::Forall(vs, g) => {
            quantified(db, "∀", vs, g, out);
        }
    }
}

fn quantified(db: &Database, q: &str, vs: &[(String, Sort)], g: &Formula, out: &mut String) {
    out.push_str(q);
    for (i, (n, s)) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", render_term(db, &FTerm::Var(n.clone(), *s)));
    }
    out.push('(');
    go(db, g, out);
    out.push(')');
}

fn atom(db: &Database, a: &Atom, out: &mut String) {
    match a {
        Atom::IsA(o, c) => {
            let _ = write!(out, "{} : {}", render_term(db, o), render_term(db, c));
        }
        Atom::StrictSub(x, y) => {
            let _ = write!(out, "{} :: {}", render_term(db, x), render_term(db, y));
        }
        Atom::Data {
            obj,
            method,
            args,
            value,
        } => {
            let _ = write!(out, "{}[{}", render_term(db, obj), render_term(db, method));
            if !args.is_empty() {
                out.push('@');
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&render_term(db, arg));
                }
            }
            let _ = write!(out, " ->> {}]", render_term(db, value));
        }
        Atom::Cmp(op, x, y) => {
            let sym = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "≠",
                CmpOp::Lt => "<",
                CmpOp::Le => "≤",
                CmpOp::Gt => ">",
                CmpOp::Ge => "≥",
            };
            let _ = write!(out, "{} {sym} {}", render_term(db, x), render_term(db, y));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb::DbBuilder;

    #[test]
    fn renders_molecules() {
        let mut b = DbBuilder::new();
        b.class("Person");
        b.attr("Person", "Name", "String");
        let mary = b.obj("mary123", "Person");
        let db = b.build();
        let name = db.oids().find_sym("Name").unwrap();
        let f = Formula::Atom(Atom::Data {
            obj: FTerm::Oid(mary),
            method: FTerm::Oid(name),
            args: vec![],
            value: FTerm::ivar("W"),
        });
        assert_eq!(render_formula(&db, &f), "mary123[Name ->> ?W]");
        let person = db.oids().find_sym("Person").unwrap();
        let f = Formula::exists(
            vec![("X".into(), Sort::Individual)],
            Formula::Atom(Atom::IsA(FTerm::ivar("X"), FTerm::Oid(person))),
        );
        assert_eq!(render_formula(&db, &f), "∃?X(?X : Person)");
    }
}
