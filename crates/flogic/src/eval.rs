//! Naive first-order evaluation of F-logic formulas over an
//! [`FStructure`] (active-domain semantics). Exponential in the number
//! of quantified variables — it is the *specification* side of the
//! Theorem 3.1 differential tests, not an engine.

use crate::model::FStructure;
use crate::term::{Formula, Sort};
use crate::translate::FQuery;
use oodb::Oid;
use std::collections::{BTreeMap, BTreeSet};

/// Evaluates a query: the set of head-variable tuples for which the body
/// holds, head variables ranging over their sorts' domains.
pub fn evaluate(m: &FStructure<'_>, q: &FQuery) -> BTreeSet<Vec<Oid>> {
    let mut out = BTreeSet::new();
    let mut v = BTreeMap::new();
    enumerate(m, &q.head, 0, &mut v, &mut |m, v| {
        if holds(m, &q.body, v) {
            let tuple: Vec<Oid> = q.head.iter().map(|(n, _)| v[n]).collect();
            out.insert(tuple);
        }
    });
    out
}

fn enumerate(
    m: &FStructure<'_>,
    vars: &[(String, Sort)],
    i: usize,
    v: &mut BTreeMap<String, Oid>,
    k: &mut dyn FnMut(&FStructure<'_>, &BTreeMap<String, Oid>),
) {
    if i == vars.len() {
        k(m, v);
        return;
    }
    let (name, sort) = &vars[i];
    for o in m.domain(*sort) {
        v.insert(name.clone(), o);
        enumerate(m, vars, i + 1, v, k);
    }
    v.remove(name);
}

/// Truth of a formula under a valuation (quantified variables range over
/// the active domain of their sort).
pub fn holds(m: &FStructure<'_>, f: &Formula, v: &BTreeMap<String, Oid>) -> bool {
    match f {
        Formula::True => true,
        Formula::Atom(a) => m.holds(a, v),
        Formula::And(fs) => fs.iter().all(|g| holds(m, g, v)),
        Formula::Or(fs) => fs.iter().any(|g| holds(m, g, v)),
        Formula::Not(g) => !holds(m, g, v),
        Formula::Exists(vars, g) => any_valuation(m, vars, 0, &mut v.clone(), g, true),
        Formula::Forall(vars, g) => !any_valuation(m, vars, 0, &mut v.clone(), g, false),
    }
}

/// `positive`: search for a valuation making `g` true; otherwise search
/// for one making it false (∀ = no counterexample).
fn any_valuation(
    m: &FStructure<'_>,
    vars: &[(String, Sort)],
    i: usize,
    v: &mut BTreeMap<String, Oid>,
    g: &Formula,
    positive: bool,
) -> bool {
    if i == vars.len() {
        return holds(m, g, v) == positive;
    }
    let (name, sort) = &vars[i];
    for o in m.domain(*sort) {
        v.insert(name.clone(), o);
        if any_valuation(m, vars, i + 1, v, g, positive) {
            v.remove(name);
            return true;
        }
    }
    v.remove(name);
    false
}
