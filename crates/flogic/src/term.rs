//! Terms, atoms and formulas of the targeted F-logic fragment.

use oodb::Oid;

/// Sorts of F-logic variables — the three sub-universes of §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Sort {
    /// Individual objects.
    Individual,
    /// Class-objects.
    Class,
    /// Method-objects.
    Method,
}

/// An id-term of the translation: an interned OID constant or a sorted
/// variable. (Composite id-terms are already interned as OIDs by the
/// `oodb` layer, so constants suffice here.)
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum FTerm {
    /// A constant.
    Oid(Oid),
    /// A variable.
    Var(String, Sort),
}

impl FTerm {
    /// Individual variable shorthand.
    pub fn ivar(name: impl Into<String>) -> FTerm {
        FTerm::Var(name.into(), Sort::Individual)
    }
}

/// Comparison operators available as builtin predicates (the paper's
/// comparators over numerals/strings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality (numeral-insensitive, like the engine).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

/// Atomic formulas.
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// `t : c` — instance-of (F-logic is-a assertion).
    IsA(FTerm, FTerm),
    /// `c1 :: c2`, strict — the `subclassOf` predicate of query (4).
    StrictSub(FTerm, FTerm),
    /// Data molecule `t[m@a1,…,ak ->(>) v]`: the method is defined on
    /// the receiver/arguments and `v` is (a member of) its value. The
    /// member reading subsumes the scalar one, matching path-step
    /// satisfaction (§3.1).
    Data {
        /// Receiver term.
        obj: FTerm,
        /// Method term (may be a method variable — F-logic's
        /// higher-order syntax with first-order semantics).
        method: FTerm,
        /// Argument terms.
        args: Vec<FTerm>,
        /// Value term.
        value: FTerm,
    },
    /// Builtin comparison predicate.
    Cmp(CmpOp, FTerm, FTerm),
}

/// First-order formulas.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// Truth.
    True,
    /// An atom.
    Atom(Atom),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Existential quantification.
    Exists(Vec<(String, Sort)>, Box<Formula>),
    /// Universal quantification.
    Forall(Vec<(String, Sort)>, Box<Formula>),
}

impl Formula {
    /// Conjunction, flattening trivial cases.
    pub fn and(parts: Vec<Formula>) -> Formula {
        let parts: Vec<Formula> = parts
            .into_iter()
            .filter(|f| !matches!(f, Formula::True))
            .collect();
        match parts.len() {
            0 => Formula::True,
            1 => parts.into_iter().next().unwrap(),
            _ => Formula::And(parts),
        }
    }

    /// Existential closure over `vars` (no-op when empty).
    pub fn exists(vars: Vec<(String, Sort)>, body: Formula) -> Formula {
        if vars.is_empty() {
            body
        } else {
            Formula::Exists(vars, Box::new(body))
        }
    }

    /// Universal closure over `vars` (no-op when empty).
    pub fn forall(vars: Vec<(String, Sort)>, body: Formula) -> Formula {
        if vars.is_empty() {
            body
        } else {
            Formula::Forall(vars, Box::new(body))
        }
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> std::collections::BTreeMap<String, Sort> {
        fn term(t: &FTerm, out: &mut std::collections::BTreeMap<String, Sort>) {
            if let FTerm::Var(n, s) = t {
                out.insert(n.clone(), *s);
            }
        }
        fn go(f: &Formula, out: &mut std::collections::BTreeMap<String, Sort>) {
            match f {
                Formula::True => {}
                Formula::Atom(a) => match a {
                    Atom::IsA(x, y) | Atom::StrictSub(x, y) | Atom::Cmp(_, x, y) => {
                        term(x, out);
                        term(y, out);
                    }
                    Atom::Data {
                        obj,
                        method,
                        args,
                        value,
                    } => {
                        term(obj, out);
                        term(method, out);
                        for a in args {
                            term(a, out);
                        }
                        term(value, out);
                    }
                },
                Formula::And(fs) | Formula::Or(fs) => {
                    for g in fs {
                        go(g, out);
                    }
                }
                Formula::Not(g) => go(g, out),
                Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
                    let mut inner = std::collections::BTreeMap::new();
                    go(g, &mut inner);
                    for (n, s) in inner {
                        if !vs.iter().any(|(vn, _)| *vn == n) {
                            out.insert(n, s);
                        }
                    }
                }
            }
        }
        let mut out = std::collections::BTreeMap::new();
        go(self, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_flattens() {
        assert_eq!(Formula::and(vec![]), Formula::True);
        let a = Formula::Atom(Atom::Cmp(CmpOp::Eq, FTerm::ivar("X"), FTerm::ivar("X")));
        assert_eq!(Formula::and(vec![a.clone()]), a);
    }

    #[test]
    fn free_vars_respect_quantifiers() {
        let body = Formula::Atom(Atom::Cmp(CmpOp::Lt, FTerm::ivar("X"), FTerm::ivar("Y")));
        let f = Formula::exists(vec![("Y".into(), Sort::Individual)], body);
        let fv = f.free_vars();
        assert!(fv.contains_key("X"));
        assert!(!fv.contains_key("Y"));
    }
}
