//! # service — a concurrent query service over one xsql session
//!
//! The engine underneath ([`xsql::Session`]) is strictly
//! single-threaded: one mutable [`oodb::Database`], one WAL. This crate
//! turns it into a multi-session service without touching the engine's
//! internals, using the classic *single writer, snapshot readers*
//! architecture:
//!
//! * **Writes serialize through one writer thread** that owns the
//!   `Session`. Submitted write units queue on a bounded channel; the
//!   writer drains them in batches and *group-commits*: every unit in a
//!   batch appends its WAL records without an fsync, then a single
//!   fsync makes the whole batch durable at once, and only then is any
//!   unit acknowledged. One fsync per batch instead of one per
//!   statement is where multi-client write throughput comes from.
//! * **Reads never enter the writer queue.** After each durable batch
//!   the writer publishes an immutable copy of the database as a new
//!   *epoch* ([`oodb::EpochCell`]); readers evaluate against the epoch
//!   they grabbed, in parallel, with no locks held during evaluation.
//!   This is snapshot isolation: a reader sees a committed prefix of
//!   the write history, never a torn intermediate state.
//! * **Every statement carries a [`QueryContext`]** — wall-clock
//!   deadline plus a cooperative [`CancelFlag`] — threaded into the
//!   evaluator's tick loop, so a runaway query degrades into
//!   [`XsqlError::Cancelled`] instead of wedging a worker thread.
//! * **Admission control**: a bounded handle count, a bounded write
//!   queue and a bounded reader gate. When a limit is hit the service
//!   *sheds load* with [`ServiceError::Overloaded`] and a suggested
//!   retry-after, rather than queueing unboundedly.
//!
//! See `docs/CONCURRENCY.md` for the protocol in full, and
//! `crates/service/tests/chaos.rs` for the seeded chaos harness that
//! hammers all of it at once.

#![warn(missing_docs)]

use oodb::{Database, EpochCell, EpochDb};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xsql::ast::Stmt;
use xsql::eval::CancelFlag;
use xsql::{parse, EvalOptions, Outcome, Session, XsqlError};

/// Admission-control and group-commit knobs. The defaults suit an
/// interactive workload; the chaos harness shrinks them to force
/// contention.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum concurrently connected [`SessionHandle`]s; further
    /// [`Service::connect`] calls shed with [`ServiceError::Overloaded`].
    pub max_sessions: usize,
    /// Depth of the bounded write queue; a full queue sheds submitters.
    pub max_queue: usize,
    /// Maximum concurrently *evaluating* readers.
    pub max_readers: usize,
    /// Maximum readers parked waiting for an evaluation slot; beyond
    /// this the reader is shed instead of queued.
    pub max_read_waiters: usize,
    /// Maximum write units the writer folds into one group commit
    /// (one fsync).
    pub max_group_commit: usize,
    /// Deadline applied to statements whose [`QueryContext`] does not
    /// carry one. `None` means such statements run without a deadline.
    pub default_deadline: Option<Duration>,
    /// Base back-off the service suggests to shed clients. The hint
    /// actually returned is jittered: `retry_after` plus a uniformly
    /// drawn fraction of `retry_after × retry_jitter`, so a herd of
    /// clients shed together does not retry in lockstep.
    pub retry_after: Duration,
    /// Width of the jitter band on shed hints, as a fraction of
    /// `retry_after`. `0.0` restores the old fixed hint.
    pub retry_jitter: f64,
    /// Seed of the deterministic jitter stream. Two services started
    /// with the same seed hand out the same hint sequence — the chaos
    /// harness and the distribution unit test depend on that.
    pub jitter_seed: u64,
    /// Worker threads each snapshot reader may use for one query
    /// (`EvalOptions::parallelism`). `0` inherits the base session
    /// options. Readers evaluate on immutable published epochs, so
    /// intra-query parallelism is safe there; the writer thread always
    /// runs sequentially. Total evaluation threads are bounded by
    /// `max_readers × reader_parallelism`.
    pub reader_parallelism: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_sessions: 64,
            max_queue: 64,
            max_readers: 8,
            max_read_waiters: 32,
            max_group_commit: 16,
            default_deadline: None,
            retry_after: Duration::from_millis(50),
            retry_jitter: 0.5,
            jitter_seed: 0x5eed_cafe,
            reader_parallelism: 0,
        }
    }
}

/// Per-statement execution context: how long the statement may run and
/// how to interrupt it from outside.
#[derive(Debug, Clone, Default)]
pub struct QueryContext {
    /// Wall-clock point past which the statement cancels itself. Also
    /// bounds time spent queued or waiting for a reader slot.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation token; trip it from any thread to stop
    /// the statement at its next evaluation tick.
    pub cancel: CancelFlag,
    /// Deterministic cancellation injection for tests: cancel at the
    /// first evaluation tick whose work count reaches this value.
    pub cancel_at_tick: Option<u64>,
}

impl QueryContext {
    /// A context whose deadline is `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        QueryContext {
            deadline: Some(Instant::now() + timeout),
            ..QueryContext::default()
        }
    }
}

/// Deterministic jitter stream for retry-after hints.
///
/// Shedding every client with the *same* fixed hint synchronises their
/// retries: the whole herd comes back in one burst and is shed again.
/// Each draw from this stream spreads one client's hint uniformly over
/// `[base, base × (1 + frac)]`. The stream is a seeded splitmix64
/// sequence behind one atomic, so it is lock-free to sample from any
/// thread and byte-for-byte reproducible under a fixed seed — the
/// property the distribution unit test and the chaos harness pin.
#[derive(Debug)]
pub struct RetryJitter {
    state: std::sync::atomic::AtomicU64,
    frac: f64,
}

impl RetryJitter {
    /// A stream seeded with `seed`, jittering over `frac × base`.
    pub fn new(seed: u64, frac: f64) -> RetryJitter {
        RetryJitter {
            state: std::sync::atomic::AtomicU64::new(seed),
            frac: frac.clamp(0.0, 16.0),
        }
    }

    /// Draws the next unit sample in `[0, 1)` from the stream.
    pub fn next_unit(&self) -> f64 {
        // splitmix64: a fetch_add reserves this draw's slot in the
        // stream, so concurrent samplers interleave without repeats.
        let mut z = self
            .state
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Jitters `base` into `[base, base × (1 + frac)]`.
    pub fn next_after(&self, base: Duration) -> Duration {
        base + base.mul_f64(self.frac * self.next_unit())
    }
}

/// Errors produced by the service layer itself, wrapping engine errors
/// where a statement reached the engine and failed there.
#[derive(Debug, Clone)]
pub enum ServiceError {
    /// Admission control shed this request; retry after the hint.
    Overloaded {
        /// Suggested back-off before retrying.
        retry_after: Duration,
    },
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The store's disk is full: the service is in read-only degraded
    /// mode. The write was cleanly rolled back (nothing half-applied);
    /// snapshot-isolated reads keep serving. The store probes for freed
    /// space automatically, so retrying after the hint eventually
    /// succeeds without a restart.
    ReadOnly {
        /// Suggested back-off before retrying the write.
        retry_after: Duration,
    },
    /// The service hit an unrecoverable storage fault (e.g. a failed
    /// group-commit fsync, after which memory runs ahead of the log)
    /// and refuses all further writes. Reads of already-published
    /// epochs — which are all durable — keep working.
    Poisoned(String),
    /// A newer primary generation owns the store: this node was
    /// deposed by a promotion and permanently refuses writes (they
    /// belong on the new primary). Reads of already-published epochs
    /// keep working; the node should rejoin as a replica.
    Fenced {
        /// The newer generation observed in the shared manifest.
        observed: u64,
    },
    /// The statement executed and failed in the engine; the service is
    /// healthy.
    Xsql(XsqlError),
    /// The statement sequence violated the session protocol (e.g.
    /// `COMMIT WORK` with no open transaction on this handle).
    Protocol(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { retry_after } => {
                write!(f, "service overloaded; retry after {retry_after:?}")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::ReadOnly { retry_after } => {
                write!(
                    f,
                    "service is read-only (disk full); retry after {retry_after:?}"
                )
            }
            ServiceError::Poisoned(m) => {
                write!(f, "service is poisoned by a storage fault: {m}")
            }
            ServiceError::Fenced { observed } => write!(
                f,
                "fenced: primary generation {observed} owns the store; \
                 this node no longer accepts writes"
            ),
            ServiceError::Xsql(e) => write!(f, "{e}"),
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<XsqlError> for ServiceError {
    fn from(e: XsqlError) -> Self {
        ServiceError::Xsql(e)
    }
}

/// The answer to a read statement, pinned to the epoch it ran against.
#[derive(Debug, Clone)]
pub struct ReadResult {
    /// The statement's outcome ([`Outcome::Relation`] or
    /// [`Outcome::Explained`]).
    pub outcome: Outcome,
    /// Epoch sequence number the read saw.
    pub epoch: u64,
    /// The immutable snapshot the read evaluated against. Holding it
    /// keeps that state alive for follow-up inspection.
    pub snapshot: Arc<Database>,
}

/// Acknowledgement of a durably committed write unit.
#[derive(Debug, Clone)]
pub struct WriteAck {
    /// Outcome of each statement in the unit, in order.
    pub outcomes: Vec<Outcome>,
    /// The epoch that first exposes this unit to readers.
    pub epoch: u64,
}

/// What [`SessionHandle::execute`] produced.
#[derive(Debug, Clone)]
pub enum ExecResult {
    /// A read-only statement evaluated against a snapshot.
    Read(ReadResult),
    /// An auto-commit write was durably committed.
    Write(WriteAck),
    /// `BEGIN WORK`: the handle now buffers statements.
    TxnStarted,
    /// The statement was buffered into the handle's open transaction;
    /// it executes at `COMMIT WORK`.
    Buffered,
    /// `COMMIT WORK`: the buffered unit committed atomically.
    TxnCommitted(WriteAck),
    /// `ROLLBACK WORK`: the buffered unit was discarded unexecuted.
    TxnRolledBack,
}

/// Point-in-time service counters, for monitoring and leak checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Connected [`SessionHandle`]s.
    pub sessions: usize,
    /// Readers currently evaluating.
    pub active_readers: usize,
    /// Readers parked waiting for an evaluation slot.
    pub waiting_readers: usize,
    /// Sequence number of the latest published epoch.
    pub epoch: u64,
}

/// One write unit submitted to the writer thread.
struct WriteReq {
    /// The unit's statements: one for an auto-commit write, several for
    /// an explicit-transaction unit.
    stmts: Vec<String>,
    /// True when the unit must run inside `BEGIN WORK … COMMIT WORK`.
    txn: bool,
    ctx: QueryContext,
    /// When the unit entered the queue, for the queue-wait histogram.
    enqueued_at: Instant,
    reply: SyncSender<Result<WriteAck, ServiceError>>,
}

/// Reader-gate state under the mutex.
#[derive(Default)]
struct GateState {
    active: usize,
    waiting: usize,
}

/// Cached handles into the service's telemetry registry (the writer
/// session's registry, adopted at [`Service::start`]). One handle per
/// hot-path metric so recording is an atomic op, never a registry lock.
struct ServiceMetrics {
    registry: Arc<telemetry::Registry>,
    admitted_read: Arc<telemetry::Counter>,
    admitted_write: Arc<telemetry::Counter>,
    shed_read: Arc<telemetry::Counter>,
    shed_write: Arc<telemetry::Counter>,
    shed_connect: Arc<telemetry::Counter>,
    completed_read: Arc<telemetry::Counter>,
    completed_write: Arc<telemetry::Counter>,
    failed_read: Arc<telemetry::Counter>,
    failed_write: Arc<telemetry::Counter>,
    poisoned: Arc<telemetry::Counter>,
    /// Time a read spent waiting for a reader slot.
    read_admission_latency: Arc<telemetry::Histogram>,
    /// Time a write unit spent queued before the writer picked it up.
    write_queue_latency: Arc<telemetry::Histogram>,
    exec_latency_read: Arc<telemetry::Histogram>,
    exec_latency_write: Arc<telemetry::Histogram>,
    total_latency_read: Arc<telemetry::Histogram>,
    total_latency_write: Arc<telemetry::Histogram>,
    /// Group-commit fsync completion → epoch publication.
    epoch_publish_lag: Arc<telemetry::Histogram>,
}

impl ServiceMetrics {
    fn new(registry: Arc<telemetry::Registry>) -> ServiceMetrics {
        let r = &registry;
        ServiceMetrics {
            admitted_read: r.counter("svc_admitted_total", &[("kind", "read")]),
            admitted_write: r.counter("svc_admitted_total", &[("kind", "write")]),
            shed_read: r.counter("svc_shed_total", &[("kind", "read")]),
            shed_write: r.counter("svc_shed_total", &[("kind", "write")]),
            shed_connect: r.counter("svc_shed_total", &[("kind", "connect")]),
            completed_read: r.counter("svc_completed_total", &[("kind", "read")]),
            completed_write: r.counter("svc_completed_total", &[("kind", "write")]),
            failed_read: r.counter("svc_failed_total", &[("kind", "read")]),
            failed_write: r.counter("svc_failed_total", &[("kind", "write")]),
            poisoned: r.counter("svc_poisoned_total", &[]),
            read_admission_latency: r.latency("svc_read_admission_latency_us", &[]),
            write_queue_latency: r.latency("svc_write_queue_latency_us", &[]),
            exec_latency_read: r.latency("svc_exec_latency_us", &[("kind", "read")]),
            exec_latency_write: r.latency("svc_exec_latency_us", &[("kind", "write")]),
            total_latency_read: r.latency("svc_total_latency_us", &[("kind", "read")]),
            total_latency_write: r.latency("svc_total_latency_us", &[("kind", "write")]),
            epoch_publish_lag: r.latency("svc_epoch_publish_lag_us", &[]),
            registry,
        }
    }

    /// Settles one request's outcome so `shed + completed + failed ==
    /// admitted` holds per kind by construction.
    fn settle<T>(&self, read: bool, result: &Result<T, ServiceError>) {
        let (shed, completed, failed) = if read {
            (&self.shed_read, &self.completed_read, &self.failed_read)
        } else {
            (&self.shed_write, &self.completed_write, &self.failed_write)
        };
        match result {
            Ok(_) => completed.inc(),
            // Shed covers both flavours of back-pressure: queue overload
            // and the degraded read-only store. Either way the request
            // was refused cleanly and is safe to retry.
            Err(ServiceError::Overloaded { .. } | ServiceError::ReadOnly { .. }) => shed.inc(),
            Err(_) => failed.inc(),
        }
    }
}

struct Inner {
    cfg: ServiceConfig,
    epoch: EpochCell,
    /// Write-queue sender; `None` once shutdown started.
    tx: Mutex<Option<SyncSender<WriteReq>>>,
    gate: Mutex<GateState>,
    gate_cv: Condvar,
    sessions: AtomicUsize,
    poison: Mutex<Option<String>>,
    /// The store generation this writer holds (1 for in-memory
    /// sessions, which can never be deposed).
    generation: AtomicU64,
    /// `0` = not fenced; otherwise the newer generation observed when
    /// this node was deposed. Writes refuse fast once set.
    fenced: AtomicU64,
    /// Options the writer session was started with; readers inherit
    /// them (budget, strategy) with the per-statement context merged in.
    base_opts: EvalOptions,
    metrics: ServiceMetrics,
    jitter: RetryJitter,
}

impl Inner {
    /// The jittered retry-after hint for the next shed client.
    fn retry_hint(&self) -> Duration {
        self.jitter.next_after(self.cfg.retry_after)
    }

    fn poison_check(&self) -> Result<(), ServiceError> {
        match &*self.poison.lock().unwrap_or_else(|e| e.into_inner()) {
            Some(m) => Err(ServiceError::Poisoned(m.clone())),
            None => Ok(()),
        }
    }

    fn set_poison(&self, m: String) {
        let mut p = self.poison.lock().unwrap_or_else(|e| e.into_inner());
        if p.is_none() {
            self.metrics.poisoned.inc();
        }
        p.get_or_insert(m);
    }

    fn fenced_check(&self) -> Result<(), ServiceError> {
        match self.fenced.load(Ordering::Relaxed) {
            0 => Ok(()),
            observed => Err(ServiceError::Fenced { observed }),
        }
    }

    fn set_fenced(&self, observed: u64) {
        self.fenced.store(observed, Ordering::Relaxed);
    }

    /// Mirrors the point-in-time counters into registry gauges.
    fn refresh_gauges(&self) {
        let (active, waiting) = {
            let gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
            (gate.active, gate.waiting)
        };
        let r = &self.metrics.registry;
        r.gauge("svc_sessions", &[])
            .set(self.sessions.load(Ordering::Relaxed) as i64);
        r.gauge("svc_active_readers", &[]).set(active as i64);
        r.gauge("svc_waiting_readers", &[]).set(waiting as i64);
        r.gauge("svc_epoch", &[]).set(self.epoch.load().seq as i64);
    }
}

/// The running service: a writer thread plus shared state. Connect
/// handles with [`Service::connect`]; stop it with
/// [`Service::shutdown`], which returns the underlying [`Session`].
pub struct Service {
    inner: Arc<Inner>,
    writer: Option<JoinHandle<Session>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Service {
    /// Starts the service over `session`, which becomes the single
    /// writer's engine. The session's current committed state is
    /// published as epoch 0.
    pub fn start(session: Session, cfg: ServiceConfig) -> Service {
        let (tx, rx) = mpsc::sync_channel::<WriteReq>(cfg.max_queue.max(1));
        let inner = Arc::new(Inner {
            epoch: EpochCell::new(session.db().clone()),
            tx: Mutex::new(Some(tx)),
            gate: Mutex::new(GateState::default()),
            gate_cv: Condvar::new(),
            sessions: AtomicUsize::new(0),
            poison: Mutex::new(None),
            generation: AtomicU64::new(session.store_generation()),
            fenced: AtomicU64::new(0),
            base_opts: session.options().clone(),
            // One registry for the whole service: the writer session's.
            // Storage metrics (it owns the store) and service metrics
            // land in the same exposition.
            metrics: ServiceMetrics::new(Arc::clone(session.registry())),
            jitter: RetryJitter::new(cfg.jitter_seed, cfg.retry_jitter),
            cfg,
        });
        let writer_inner = Arc::clone(&inner);
        let writer = std::thread::Builder::new()
            .name("xsql-service-writer".into())
            .spawn(move || writer_loop(session, rx, writer_inner))
            .expect("spawn writer thread");
        Service {
            inner,
            writer: Some(writer),
        }
    }

    /// Connects a new session handle, or sheds with
    /// [`ServiceError::Overloaded`] when `max_sessions` are connected.
    pub fn connect(&self) -> Result<SessionHandle, ServiceError> {
        let cfg = &self.inner.cfg;
        let mut n = self.inner.sessions.load(Ordering::Relaxed);
        loop {
            if n >= cfg.max_sessions {
                self.inner.metrics.shed_connect.inc();
                return Err(ServiceError::Overloaded {
                    retry_after: self.inner.retry_hint(),
                });
            }
            match self.inner.sessions.compare_exchange(
                n,
                n + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => n = cur,
            }
        }
        Ok(SessionHandle {
            inner: Arc::clone(&self.inner),
            reader: None,
            txn: None,
            prepared: std::collections::BTreeMap::new(),
        })
    }

    /// Current counters. Also mirrors them into the telemetry
    /// registry's gauges, so the exposition and this struct agree at
    /// the moment of the call.
    pub fn stats(&self) -> ServiceStats {
        let stats = {
            let gate = self.inner.gate.lock().unwrap_or_else(|e| e.into_inner());
            ServiceStats {
                sessions: self.inner.sessions.load(Ordering::Relaxed),
                active_readers: gate.active,
                waiting_readers: gate.waiting,
                epoch: self.inner.epoch.load().seq,
            }
        };
        self.inner.refresh_gauges();
        stats
    }

    /// The service's telemetry registry (shared with the writer session
    /// and its store).
    pub fn registry(&self) -> &Arc<telemetry::Registry> {
        &self.inner.metrics.registry
    }

    /// Renders the full telemetry exposition with the point-in-time
    /// gauges refreshed (what `STATS` returns through a handle).
    pub fn stats_text(&self) -> String {
        self.stats();
        self.inner.metrics.registry.render()
    }

    /// The latest published epoch (snapshot + sequence number).
    pub fn epoch(&self) -> EpochDb {
        self.inner.epoch.load()
    }

    /// The store generation (fencing term) this service's writer
    /// holds. 1 for in-memory sessions.
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Relaxed)
    }

    /// `Some(observed)` once a newer primary generation deposed this
    /// node: writes refuse with [`ServiceError::Fenced`], reads keep
    /// serving published epochs.
    pub fn fenced(&self) -> Option<u64> {
        match self.inner.fenced.load(Ordering::Relaxed) {
            0 => None,
            g => Some(g),
        }
    }

    /// The poison message, if a storage fault killed the writer.
    pub fn poisoned(&self) -> Option<String> {
        self.inner
            .poison
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Stops accepting writes, drains the queue, joins the writer and
    /// returns the underlying session. Queued units still commit (or
    /// are answered with an error) before the writer exits.
    pub fn shutdown(mut self) -> Result<Session, ServiceError> {
        self.close_queue();
        let writer = self.writer.take().expect("writer joined once");
        writer
            .join()
            .map_err(|_| ServiceError::Poisoned("writer thread panicked".into()))
    }

    fn close_queue(&self) {
        self.inner
            .tx
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.close_queue();
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
    }
}

/// One client's connection to the [`Service`].
///
/// Reads evaluate in parallel on the calling thread against the latest
/// published epoch; writes are submitted to the writer queue and block
/// (respecting the context deadline) until durably committed. `BEGIN
/// WORK` opens a *buffered* transaction: subsequent statements queue on
/// the handle and execute as one atomic, group-committed unit at
/// `COMMIT WORK` — so a handle transaction holds no engine resources
/// while open and cannot block other sessions.
pub struct SessionHandle {
    inner: Arc<Inner>,
    /// Cached reader session, valid for exactly one epoch: resolving a
    /// statement interns symbols (a mutation), so reads run on a
    /// private copy of the snapshot, rebuilt when the epoch advances.
    reader: Option<CachedReader>,
    /// Buffered statements of the open handle transaction.
    txn: Option<Vec<String>>,
    /// Prepared statements registered on this handle (`PREPARE name AS
    /// …`). Per-connection, like the engine's: the stored PREPARE
    /// source is replayed into each epoch's private reader session on
    /// first EXECUTE (readers are rebuilt per epoch) and bundled with
    /// write EXECUTEs so the writer unit is self-contained.
    prepared: std::collections::BTreeMap<String, HandlePrepared>,
}

/// Per-epoch private reader state of one handle.
struct CachedReader {
    /// Epoch the session was built from.
    seq: u64,
    /// The published snapshot of that epoch (returned with each read).
    snapshot: Arc<Database>,
    /// Private session over a clone of the snapshot.
    sess: Session,
    /// Prepared-statement names already installed into `sess`.
    prepared: std::collections::BTreeSet<String>,
}

/// One handle-registered prepared statement.
#[derive(Debug, Clone)]
struct HandlePrepared {
    /// The full `PREPARE name AS …` source, replayed where needed.
    prepare_src: String,
    /// Whether the body is read-only (EXECUTE routes like the body).
    read_only: bool,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("in_transaction", &self.txn.is_some())
            .finish()
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        self.inner.sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

/// True when `stmt` cannot modify the database and may run on a
/// snapshot: plain SELECTs (no OID FUNCTION clause), their set-algebra
/// combinations, and EXPLAIN. Public so other serving layers (the TCP
/// replica front end) classify statements exactly like the service.
pub fn is_read_only(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Select(q) => q.oid_fn.is_none(),
        Stmt::RelOp { left, right, .. } => is_read_only(left) && is_read_only(right),
        Stmt::Explain { .. } => true,
        _ => false,
    }
}

impl SessionHandle {
    /// Runs one statement under `ctx`. Classification is automatic:
    /// read-only statements evaluate on this thread against the latest
    /// epoch; everything else goes through the writer.
    pub fn execute(&mut self, src: &str, ctx: &QueryContext) -> Result<ExecResult, ServiceError> {
        let stmt = parse(src)?;
        match stmt {
            // Diagnostics, answered before read/write classification:
            // renders the service-wide registry (never a reader's own),
            // pinned to the epoch current at the call.
            Stmt::Stats => {
                self.inner.refresh_gauges();
                let ep = self.inner.epoch.load();
                Ok(ExecResult::Read(ReadResult {
                    outcome: Outcome::Stats {
                        report: self.inner.metrics.registry.render(),
                    },
                    epoch: ep.seq,
                    snapshot: ep.db,
                }))
            }
            Stmt::Begin => {
                if self.txn.is_some() {
                    return Err(ServiceError::Protocol(
                        "BEGIN WORK inside an open transaction".into(),
                    ));
                }
                self.txn = Some(Vec::new());
                Ok(ExecResult::TxnStarted)
            }
            Stmt::Commit => {
                let stmts = self.txn.take().ok_or_else(|| {
                    ServiceError::Protocol("COMMIT WORK without BEGIN WORK".into())
                })?;
                if stmts.is_empty() {
                    return Ok(ExecResult::TxnCommitted(WriteAck {
                        outcomes: Vec::new(),
                        epoch: self.inner.epoch.load().seq,
                    }));
                }
                match self.submit_write(stmts.clone(), true, ctx) {
                    Ok(ack) => Ok(ExecResult::TxnCommitted(ack)),
                    // Shedding happens before the unit is enqueued
                    // (`Overloaded`) or after it rolled back cleanly
                    // without touching the log (`ReadOnly`): either way
                    // the transaction did not apply, so restore the
                    // buffer and let the client retry the COMMIT.
                    Err(e @ (ServiceError::Overloaded { .. } | ServiceError::ReadOnly { .. })) => {
                        self.txn = Some(stmts);
                        Err(e)
                    }
                    Err(e) => Err(e),
                }
            }
            Stmt::Rollback => {
                self.txn.take().ok_or_else(|| {
                    ServiceError::Protocol("ROLLBACK WORK without BEGIN WORK".into())
                })?;
                Ok(ExecResult::TxnRolledBack)
            }
            _ if self.txn.is_some() => {
                self.txn.as_mut().expect("checked").push(src.to_string());
                Ok(ExecResult::Buffered)
            }
            // PREPARE registers on the handle without touching the
            // database: readers get the statement lazily, and write
            // EXECUTEs carry it to the writer themselves.
            Stmt::Prepare {
                ref name,
                stmt: ref inner,
            } => {
                let read_only = is_read_only(inner);
                self.prepared.insert(
                    name.clone(),
                    HandlePrepared {
                        prepare_src: src.to_string(),
                        read_only,
                    },
                );
                // A re-PREPARE under the same name must displace the
                // copy already installed in the cached reader.
                if let Some(reader) = &mut self.reader {
                    reader.prepared.remove(name);
                }
                let ep = self.inner.epoch.load();
                Ok(ExecResult::Read(ReadResult {
                    outcome: Outcome::Prepared { name: name.clone() },
                    epoch: ep.seq,
                    snapshot: ep.db,
                }))
            }
            Stmt::Execute { ref name, .. } => {
                let entry = self.prepared.get(name).cloned().ok_or_else(|| {
                    ServiceError::Protocol(format!(
                        "unknown prepared statement `{name}` (prepared statements are \
                         per-connection; re-PREPARE after reconnect)"
                    ))
                })?;
                if entry.read_only {
                    self.read_prepared(src, name, &entry.prepare_src, ctx)
                        .map(ExecResult::Read)
                } else {
                    // The writer session has its own prepared map;
                    // bundle the PREPARE so the unit is self-contained
                    // (and atomic: a failing EXECUTE drops the PREPARE
                    // with the rest of the unit).
                    self.submit_write(vec![entry.prepare_src, src.to_string()], true, ctx)
                        .map(|mut ack| {
                            // Drop the bundled PREPARE's outcome: the
                            // client executed one statement.
                            if !ack.outcomes.is_empty() {
                                ack.outcomes.remove(0);
                            }
                            ExecResult::Write(ack)
                        })
                }
            }
            ref s if is_read_only(s) => self.read(src, ctx).map(ExecResult::Read),
            _ => self
                .submit_write(vec![src.to_string()], false, ctx)
                .map(ExecResult::Write),
        }
    }

    /// Convenience: run a read-only query and return its relation.
    pub fn query(
        &mut self,
        src: &str,
        ctx: &QueryContext,
    ) -> Result<relalg::Relation, ServiceError> {
        match self.execute(src, ctx)? {
            ExecResult::Read(r) => match r.outcome {
                Outcome::Relation(rel) => Ok(rel),
                o => Err(ServiceError::Protocol(format!(
                    "statement did not produce a relation: {o:?}"
                ))),
            },
            _ => Err(ServiceError::Protocol(
                "statement was not a read-only query".into(),
            )),
        }
    }

    /// True while a handle transaction is buffering statements.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Resolves the effective deadline: the context's own, else the
    /// service default.
    fn effective_deadline(&self, ctx: &QueryContext) -> Option<Instant> {
        ctx.deadline
            .or_else(|| self.inner.cfg.default_deadline.map(|d| Instant::now() + d))
    }

    fn read(&mut self, src: &str, ctx: &QueryContext) -> Result<ReadResult, ServiceError> {
        self.read_gated(src, None, ctx)
    }

    /// A read-only `EXECUTE`: like [`SessionHandle::read`], but makes
    /// sure the prepared statement is installed in this epoch's private
    /// reader session first.
    fn read_prepared(
        &mut self,
        src: &str,
        name: &str,
        prepare_src: &str,
        ctx: &QueryContext,
    ) -> Result<ReadResult, ServiceError> {
        self.read_gated(src, Some((name, prepare_src)), ctx)
    }

    fn read_gated(
        &mut self,
        src: &str,
        prep: Option<(&str, &str)>,
        ctx: &QueryContext,
    ) -> Result<ReadResult, ServiceError> {
        let inner = Arc::clone(&self.inner);
        let m = &inner.metrics;
        m.admitted_read.inc();
        let started = Instant::now();
        let deadline = self.effective_deadline(ctx);
        let wait_started = Instant::now();
        let slot = self.acquire_read_slot(deadline);
        m.read_admission_latency.observe_since(wait_started);
        let r = match slot {
            Ok(()) => {
                let exec_started = Instant::now();
                let r = self.read_in_slot(src, prep, ctx, deadline);
                m.exec_latency_read.observe_since(exec_started);
                self.release_read_slot();
                r
            }
            Err(e) => Err(e),
        };
        m.total_latency_read.observe_since(started);
        m.settle(true, &r);
        r
    }

    fn read_in_slot(
        &mut self,
        src: &str,
        prep: Option<(&str, &str)>,
        ctx: &QueryContext,
        deadline: Option<Instant>,
    ) -> Result<ReadResult, ServiceError> {
        // Staleness check on the lock-free sequence mirror: the warm
        // path (epoch unchanged since the last read) costs one atomic
        // load instead of the epoch lock plus cross-core refcount
        // traffic on the shared snapshot Arc. `seq()` can lag `load()`
        // one step during a publication, never lead it, so a matching
        // cached reader is still a committed snapshot.
        let fresh = matches!(&self.reader, Some(r) if r.seq == self.inner.epoch.seq());
        if !fresh {
            let ep = self.inner.epoch.load();
            // Private copy of the snapshot: resolution interns symbols,
            // which must never touch the shared published state.
            self.reader = Some(CachedReader {
                seq: ep.seq,
                snapshot: Arc::clone(&ep.db),
                sess: Session::with_options((*ep.db).clone(), self.inner.base_opts.clone()),
                prepared: std::collections::BTreeSet::new(),
            });
        }
        let reader = self.reader.as_mut().expect("just cached");
        let mut opts = self.inner.base_opts.clone();
        opts.cancel = ctx.cancel.clone();
        opts.budget.deadline = deadline;
        opts.budget.cancel_at_tick = ctx.cancel_at_tick;
        if self.inner.cfg.reader_parallelism > 0 {
            opts.parallelism = self.inner.cfg.reader_parallelism;
        }
        reader.sess.set_options(opts);
        // Install the prepared statement into this epoch's session on
        // first use (reader sessions are rebuilt per epoch, and the
        // engine's prepared map is session-local).
        if let Some((name, prepare_src)) = prep {
            if !reader.prepared.contains(name) {
                reader.sess.run(prepare_src)?;
                reader.prepared.insert(name.to_string());
            }
        }
        let outcome = reader.sess.run(src)?;
        Ok(ReadResult {
            outcome,
            epoch: reader.seq,
            snapshot: Arc::clone(&reader.snapshot),
        })
    }

    fn acquire_read_slot(&self, deadline: Option<Instant>) -> Result<(), ServiceError> {
        let cfg = &self.inner.cfg;
        let mut gate = self.inner.gate.lock().unwrap_or_else(|e| e.into_inner());
        if gate.active < cfg.max_readers {
            gate.active += 1;
            return Ok(());
        }
        if gate.waiting >= cfg.max_read_waiters {
            return Err(ServiceError::Overloaded {
                retry_after: self.inner.retry_hint(),
            });
        }
        gate.waiting += 1;
        let r = loop {
            if gate.active < cfg.max_readers {
                gate.active += 1;
                break Ok(());
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        break Err(ServiceError::Xsql(XsqlError::Cancelled {
                            reason: "deadline exceeded while waiting for a reader slot".into(),
                        }));
                    }
                    let (g, _) = self
                        .inner
                        .gate_cv
                        .wait_timeout(gate, d - now)
                        .unwrap_or_else(|e| e.into_inner());
                    gate = g;
                }
                None => {
                    gate = self
                        .inner
                        .gate_cv
                        .wait(gate)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
        };
        gate.waiting -= 1;
        r
    }

    fn release_read_slot(&self) {
        let mut gate = self.inner.gate.lock().unwrap_or_else(|e| e.into_inner());
        gate.active -= 1;
        // Only wake the condvar when a reader is actually parked.
        // Below the concurrency cap nobody ever waits, and the
        // unconditional futex wake was a measurable per-read cost at
        // low reader counts.
        let wake = gate.waiting > 0;
        drop(gate);
        if wake {
            self.inner.gate_cv.notify_one();
        }
    }

    fn submit_write(
        &self,
        stmts: Vec<String>,
        txn: bool,
        ctx: &QueryContext,
    ) -> Result<WriteAck, ServiceError> {
        let m = &self.inner.metrics;
        m.admitted_write.inc();
        let started = Instant::now();
        let r = self.submit_write_inner(stmts, txn, ctx);
        m.total_latency_write.observe_since(started);
        m.settle(false, &r);
        r
    }

    fn submit_write_inner(
        &self,
        stmts: Vec<String>,
        txn: bool,
        ctx: &QueryContext,
    ) -> Result<WriteAck, ServiceError> {
        self.inner.fenced_check()?;
        self.inner.poison_check()?;
        let deadline = self.effective_deadline(ctx);
        let tx = self
            .inner
            .tx
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .ok_or(ServiceError::ShuttingDown)?
            .clone();
        let (reply, ack) = mpsc::sync_channel(1);
        let req = WriteReq {
            stmts,
            txn,
            ctx: QueryContext {
                deadline,
                cancel: ctx.cancel.clone(),
                cancel_at_tick: ctx.cancel_at_tick,
            },
            enqueued_at: Instant::now(),
            reply,
        };
        match tx.try_send(req) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                return Err(ServiceError::Overloaded {
                    retry_after: self.inner.retry_hint(),
                })
            }
            Err(TrySendError::Disconnected(_)) => return Err(ServiceError::ShuttingDown),
        }
        drop(tx);
        // Wait for the commit acknowledgement. Past the deadline, trip
        // the cancel token — the writer will abort the unit at its next
        // tick — and keep waiting for the definitive answer, so the
        // client always learns whether the unit committed.
        let got = match deadline {
            None => ack.recv().map_err(|_| ()),
            Some(d) => {
                let now = Instant::now();
                match ack.recv_timeout(d.saturating_duration_since(now)) {
                    Ok(r) => Ok(r),
                    Err(RecvTimeoutError::Timeout) => {
                        req_cancel(&self.inner, ctx);
                        ack.recv().map_err(|_| ())
                    }
                    Err(RecvTimeoutError::Disconnected) => Err(()),
                }
            }
        };
        match got {
            Ok(r) => r,
            Err(()) => Err(self
                .inner
                .fenced_check()
                .err()
                .or_else(|| self.inner.poison_check().err())
                .unwrap_or(ServiceError::ShuttingDown)),
        }
    }
}

/// Trips the context's cancel token (helper so the borrow of `inner`
/// stays narrow).
fn req_cancel(_inner: &Inner, ctx: &QueryContext) {
    ctx.cancel.cancel();
}

/// Outcome of one unit inside the writer: a statement-level failure
/// leaves the service healthy; a disk-full failure sheds the unit and
/// degrades the service to read-only (the store recovers by probing);
/// a fatal (storage) failure poisons it.
enum UnitError {
    Stmt(XsqlError),
    ReadOnly,
    /// A newer primary generation owns the store: the node is deposed,
    /// not broken — reads keep serving, writes go to the new primary.
    Fenced {
        observed: u64,
    },
    Fatal(String),
}

fn classify(e: XsqlError) -> UnitError {
    match e {
        // ENOSPC is not fatal: the failed append rolled the statement
        // back, so memory still matches the log — the service degrades
        // to read-only and recovers when space frees, without restart.
        XsqlError::DiskFull(_) => UnitError::ReadOnly,
        // Fencing is not fatal either: the refused append rolled back
        // cleanly, the node is simply no longer the writer.
        XsqlError::Fenced { observed, .. } => UnitError::Fenced { observed },
        XsqlError::Storage(m) => UnitError::Fatal(format!("storage fault: {m}")),
        other => UnitError::Stmt(other),
    }
}

/// Executes one write unit on the writer session. On any statement
/// error inside an explicit unit the whole unit is rolled back, so a
/// unit is always all-or-nothing.
fn exec_unit(session: &mut Session, req: &WriteReq) -> Result<Vec<Outcome>, UnitError> {
    let mut opts = session.options().clone();
    opts.cancel = req.ctx.cancel.clone();
    opts.budget.deadline = req.ctx.deadline;
    opts.budget.cancel_at_tick = req.ctx.cancel_at_tick;
    // The writer is the one thread allowed to mutate state; its
    // statements (including the reads embedded in updates) always
    // evaluate sequentially.
    opts.parallelism = 1;
    session.set_options(opts);
    if !req.txn {
        return session
            .run(&req.stmts[0])
            .map(|o| vec![o])
            .map_err(classify);
    }
    session.run("BEGIN WORK").map_err(classify)?;
    let mut outcomes = Vec::with_capacity(req.stmts.len());
    for s in &req.stmts {
        match session.run(s) {
            Ok(o) => outcomes.push(o),
            Err(e) => return Err(abort_unit(session, e)),
        }
    }
    match session.run("COMMIT WORK") {
        Ok(_) => Ok(outcomes),
        Err(e) => Err(abort_unit(session, e)),
    }
}

/// Rolls the open unit back after `e`; a rollback failure is fatal
/// (the writer session is no longer in a known state).
fn abort_unit(session: &mut Session, e: XsqlError) -> UnitError {
    if let Err(r) = session.run("ROLLBACK WORK") {
        return UnitError::Fatal(format!("unit failed ({e}) and rollback also failed: {r}"));
    }
    classify(e)
}

/// The writer thread: drain the queue in batches, execute each unit,
/// group-commit with one fsync, publish the new epoch, acknowledge.
fn writer_loop(mut session: Session, rx: Receiver<WriteReq>, inner: Arc<Inner>) -> Session {
    loop {
        let first = match rx.recv() {
            Ok(r) => r,
            Err(_) => break, // queue closed and drained: shutdown
        };
        let mut batch = vec![first];
        while batch.len() < inner.cfg.max_group_commit.max(1) {
            match rx.try_recv() {
                Ok(r) => batch.push(r),
                Err(_) => break,
            }
        }
        // While degraded (disk full), probe for freed space before the
        // batch: a successful probe lets this very batch commit instead
        // of being shed. Rate-limited by the store; no-op when healthy.
        session.probe_space();
        // Execute the whole batch with per-statement fsync off; the
        // single group fsync below makes it durable all at once.
        session.set_sync_on_commit(false);
        let mut fatal: Option<String> = None;
        let mut fenced: Option<u64> = None;
        let mut results: Vec<Result<Vec<Outcome>, ServiceError>> = Vec::with_capacity(batch.len());
        for req in &batch {
            inner
                .metrics
                .write_queue_latency
                .observe_since(req.enqueued_at);
            if let Some(m) = &fatal {
                results.push(Err(ServiceError::Poisoned(m.clone())));
                continue;
            }
            if let Some(observed) = fenced {
                results.push(Err(ServiceError::Fenced { observed }));
                continue;
            }
            let exec_started = Instant::now();
            let r = exec_unit(&mut session, req);
            inner.metrics.exec_latency_write.observe_since(exec_started);
            match r {
                Ok(o) => results.push(Ok(o)),
                Err(UnitError::Stmt(e)) => results.push(Err(ServiceError::Xsql(e))),
                Err(UnitError::ReadOnly) => results.push(Err(ServiceError::ReadOnly {
                    retry_after: inner.retry_hint(),
                })),
                Err(UnitError::Fenced { observed }) => {
                    results.push(Err(ServiceError::Fenced { observed }));
                    fenced = Some(observed);
                }
                Err(UnitError::Fatal(m)) => {
                    results.push(Err(ServiceError::Poisoned(m.clone())));
                    fatal = Some(m);
                }
            }
        }
        session.set_sync_on_commit(true);
        if fatal.is_none() && fenced.is_none() {
            // The generation is re-validated by this pre-ack fsync: a
            // promotion that raced the batch surfaces *here*, before
            // anything is acknowledged or published.
            if let Err(e) = session.sync_wal() {
                if let XsqlError::Fenced { observed, .. } = e {
                    fenced = Some(observed);
                } else {
                    fatal = Some(format!("group-commit fsync failed: {e}"));
                }
            }
        }
        let fsync_done = Instant::now();
        if let Some(observed) = fenced {
            // Deposed, not broken: nothing in this batch is acked or
            // published (any appended-but-unsynced records are stale-
            // term bytes the new timeline quarantines on rejoin), the
            // node keeps serving reads from its published epochs, and
            // every queued or future write is redirected by the typed
            // error. The writer parks — only reads remain.
            inner.set_fenced(observed);
            for (req, res) in batch.into_iter().zip(results) {
                let err = match res {
                    Err(e) => e,
                    Ok(_) => ServiceError::Fenced { observed },
                };
                let _ = req.reply.send(Err(err));
            }
            break;
        }
        match fatal {
            None => {
                // Durable: publish the new state and acknowledge. The
                // epoch is published *after* the fsync so readers never
                // observe state that could vanish in a crash.
                let seq = inner.epoch.publish(session.db().clone());
                inner.metrics.epoch_publish_lag.observe_since(fsync_done);
                for (req, res) in batch.into_iter().zip(results) {
                    let _ = req.reply.send(res.map(|outcomes| WriteAck {
                        outcomes,
                        epoch: seq,
                    }));
                }
                // The batch is durable and acknowledged; fold the WAL
                // into an incremental checkpoint when enough segments
                // have accumulated. A checkpoint failure is harmless
                // here (the WAL still holds everything; the attempt is
                // recorded under `result=err` in telemetry).
                let _ = session.checkpoint_if_due();
            }
            Some(m) => {
                // Memory may have run ahead of the log: nothing in this
                // batch is acknowledged as committed, the epoch is not
                // advanced, and the service stops accepting writes.
                inner.set_poison(m.clone());
                for (req, res) in batch.into_iter().zip(results) {
                    let err = match res {
                        Err(e) => e,
                        Ok(_) => ServiceError::Poisoned(m.clone()),
                    };
                    let _ = req.reply.send(Err(err));
                }
                break;
            }
        }
    }
    // Drain epilogue: whichever path ended the loop — queue closed by
    // shutdown/drop or a fatal storage fault — the session leaves the
    // writer with per-statement durability re-armed and the log tail
    // flushed. Shutdown racing a group commit must never hand back a
    // session holding acked-but-unsynced state; the flush is a no-op on
    // the healthy path (the batch already fsynced) and best-effort on
    // the poisoned one.
    session.set_sync_on_commit(true);
    let _ = session.sync_wal();
    session
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_session() -> Session {
        let mut s = Session::new(Database::new());
        s.run_script(
            "CREATE CLASS Counter;
             ALTER CLASS Counter ADD SIGNATURE Val => Numeral;
             ALTER CLASS Counter ADD SIGNATURE Tag => String;
             CREATE OBJECT c0 CLASS Counter SET Val = 0, Tag = 'zero';",
        )
        .unwrap();
        s
    }

    fn val(h: &mut SessionHandle) -> i64 {
        let rel = h
            .query(
                "SELECT W FROM Numeral W WHERE c0.Val[W]",
                &QueryContext::default(),
            )
            .unwrap();
        let oid = rel.iter().next().unwrap()[0];
        let snap = match h
            .execute(
                "SELECT W FROM Numeral W WHERE c0.Val[W]",
                &QueryContext::default(),
            )
            .unwrap()
        {
            ExecResult::Read(r) => r.snapshot,
            _ => unreachable!(),
        };
        snap.oids().as_number(oid).unwrap() as i64
    }

    #[test]
    fn writes_publish_epochs_reads_see_them() {
        let svc = Service::start(mini_session(), ServiceConfig::default());
        let mut h = svc.connect().unwrap();
        assert_eq!(val(&mut h), 0);
        let r = h
            .execute(
                "UPDATE CLASS Counter SET c0.Val = 41",
                &QueryContext::default(),
            )
            .unwrap();
        let ExecResult::Write(ack) = r else {
            panic!("{r:?}")
        };
        assert!(ack.epoch >= 1);
        assert_eq!(val(&mut h), 41);
        drop(h);
        let session = svc.shutdown().unwrap();
        assert!(!session.in_transaction());
    }

    #[test]
    fn handle_transaction_is_atomic_and_buffered() {
        let svc = Service::start(mini_session(), ServiceConfig::default());
        let mut h = svc.connect().unwrap();
        let ctx = QueryContext::default();
        assert!(matches!(
            h.execute("BEGIN WORK", &ctx).unwrap(),
            ExecResult::TxnStarted
        ));
        assert!(matches!(
            h.execute("UPDATE CLASS Counter SET c0.Val = 7", &ctx)
                .unwrap(),
            ExecResult::Buffered
        ));
        // Buffered, not executed: other sessions still see 0.
        let mut h2 = svc.connect().unwrap();
        assert_eq!(val(&mut h2), 0);
        let r = h.execute("COMMIT WORK", &ctx).unwrap();
        let ExecResult::TxnCommitted(ack) = r else {
            panic!("{r:?}")
        };
        assert_eq!(ack.outcomes.len(), 1);
        assert_eq!(val(&mut h2), 7);
    }

    #[test]
    fn failing_statement_aborts_the_whole_unit() {
        let svc = Service::start(mini_session(), ServiceConfig::default());
        let mut h = svc.connect().unwrap();
        let ctx = QueryContext::default();
        h.execute("BEGIN WORK", &ctx).unwrap();
        h.execute("UPDATE CLASS Counter SET c0.Val = 9", &ctx)
            .unwrap();
        // Arithmetic on the string-valued Tag fails at eval time.
        h.execute("UPDATE CLASS Counter SET c0.Val = c0.Tag + 1", &ctx)
            .unwrap();
        let err = h.execute("COMMIT WORK", &ctx).unwrap_err();
        assert!(matches!(err, ServiceError::Xsql(_)), "{err}");
        assert_eq!(val(&mut h), 0, "unit must be all-or-nothing");
        // The writer session is healthy: later writes commit.
        h.execute("UPDATE CLASS Counter SET c0.Val = 5", &ctx)
            .unwrap();
        assert_eq!(val(&mut h), 5);
    }

    #[test]
    fn connect_limit_sheds() {
        let cfg = ServiceConfig {
            max_sessions: 2,
            ..ServiceConfig::default()
        };
        let svc = Service::start(mini_session(), cfg);
        let _a = svc.connect().unwrap();
        let _b = svc.connect().unwrap();
        assert!(matches!(
            svc.connect(),
            Err(ServiceError::Overloaded { .. })
        ));
        drop(_a);
        assert!(svc.connect().is_ok());
    }

    /// Pins the jitter distribution under a fixed seed: deterministic,
    /// inside the advertised band, and actually dispersed (no lockstep).
    #[test]
    fn retry_jitter_distribution_is_pinned_under_a_seed() {
        let base = Duration::from_millis(100);
        let a = RetryJitter::new(42, 0.5);
        let draws: Vec<Duration> = (0..64).map(|_| a.next_after(base)).collect();
        // Reproducible: a second stream with the same seed replays it.
        let b = RetryJitter::new(42, 0.5);
        let again: Vec<Duration> = (0..64).map(|_| b.next_after(base)).collect();
        assert_eq!(draws, again);
        // A different seed gives a different sequence.
        let c = RetryJitter::new(43, 0.5);
        assert_ne!(
            draws,
            (0..64).map(|_| c.next_after(base)).collect::<Vec<_>>()
        );
        // Every hint sits in [base, base * 1.5].
        for d in &draws {
            assert!(*d >= base && *d <= base.mul_f64(1.5), "{d:?}");
        }
        // Dispersed, not lockstep: many distinct values, spanning most
        // of the band.
        let mut uniq: Vec<Duration> = draws.clone();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() >= 48, "only {} distinct hints", uniq.len());
        let lo = *uniq.first().unwrap();
        let hi = *uniq.last().unwrap();
        assert!(
            hi - lo >= base.mul_f64(0.25),
            "band too narrow: {lo:?}..{hi:?}"
        );
        // frac = 0 restores the legacy fixed hint.
        let fixed = RetryJitter::new(42, 0.0);
        assert!((0..8).all(|_| fixed.next_after(base) == base));
    }

    /// Two services configured with the same seed shed identical hint
    /// sequences; clients shed together still get *different* hints.
    #[test]
    fn shed_hints_are_jittered_and_seed_deterministic() {
        let cfg = ServiceConfig {
            max_sessions: 1,
            jitter_seed: 7,
            ..ServiceConfig::default()
        };
        let hints = |cfg: ServiceConfig| -> Vec<Duration> {
            let svc = Service::start(mini_session(), cfg);
            let _keep = svc.connect().unwrap();
            (0..8)
                .map(|_| match svc.connect() {
                    Err(ServiceError::Overloaded { retry_after }) => retry_after,
                    other => panic!("expected shed, got {other:?}"),
                })
                .collect()
        };
        let a = hints(cfg.clone());
        let b = hints(cfg.clone());
        assert_eq!(a, b, "same seed, same hint sequence");
        let mut uniq = a.clone();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() >= 6, "hints should not be lockstep: {a:?}");
        for d in &a {
            assert!(*d >= cfg.retry_after && *d <= cfg.retry_after.mul_f64(1.5));
        }
    }

    #[test]
    fn shutdown_rejects_new_writes() {
        let svc = Service::start(mini_session(), ServiceConfig::default());
        let mut h = svc.connect().unwrap();
        let session = {
            let svc2 = svc;
            svc2.close_queue();
            let err = h
                .execute(
                    "UPDATE CLASS Counter SET c0.Val = 1",
                    &QueryContext::default(),
                )
                .unwrap_err();
            assert!(matches!(err, ServiceError::ShuttingDown), "{err}");
            svc2.shutdown().unwrap()
        };
        assert!(!session.in_transaction());
    }
}
