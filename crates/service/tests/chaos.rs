//! Deterministic, seeded chaos harness for the concurrent service.
//!
//! Each seed drives one full service lifetime over a fault-injecting
//! filesystem: a randomized (but seed-determined) admission-control
//! configuration, concurrent reader threads with injected cancellations
//! and pre-expired deadlines, concurrent writer clients issuing
//! numbered single-statement and transactional units, a seeded
//! mid-run storage fault — a crashing fault **or** a disk-full
//! (ENOSPC) episode whose space frees mid-run — shutdown under a
//! deadlock watchdog, a simulated power-loss crash, and recovery.
//! Thread interleavings vary run to run; every *injection*
//! (cancellation tick, fault op count, crash mode, workload shape) is
//! a pure function of the seed, and the invariants asserted hold under
//! **all** interleavings:
//!
//! 1. **Plan invariance** (Theorem 6.1 at the service level): two
//!    successful evaluations of the same query at the same epoch give
//!    identical relations, and both match a single-threaded
//!    re-evaluation on that epoch's snapshot after the fact.
//! 2. **Durability**: every acknowledged write unit survives crash +
//!    recovery; units that failed before submission never appear; a
//!    transactional unit applies all-or-nothing.
//! 3. **Liveness**: shutdown completes under a watchdog timeout (no
//!    deadlock) and no session or reader slot leaks.
//! 4. **ENOSPC degradation**: while the disk is full, writers are shed
//!    with the retryable `ReadOnly` error (never poisoned), snapshot
//!    readers keep serving at the published epoch, and once space
//!    frees every retried unit commits — the store returns to
//!    writable without a restart.
//!
//! Seed count defaults to 500; override with `CHAOS_SEEDS=<n>`.

use oodb::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use service::{ExecResult, QueryContext, Service, ServiceConfig, ServiceError};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use storage::fault::{CrashMode, FaultFs};
use storage::StoreConfig;
use xsql::{EvalOptions, Session, XsqlError};

const DIR: &str = "/db";
const PROLOGUE: &[&str] = &[
    "CREATE CLASS Counter",
    "ALTER CLASS Counter ADD SIGNATURE Val => Numeral",
    "ALTER CLASS Counter ADD SIGNATURE Aux => Numeral",
    "CREATE OBJECT c0 CLASS Counter SET Val = 0, Aux = 0",
    "CREATE OBJECT c1 CLASS Counter SET Val = 0, Aux = 0",
];
/// The read workload; index identifies the query in invariance checks.
const READS: &[&str] = &[
    "SELECT W FROM Numeral W WHERE c0.Val[W]",
    "SELECT W FROM Numeral W WHERE c1.Val[W]",
    "SELECT X FROM Counter X",
];

fn open(fs: &FaultFs) -> Result<Session, XsqlError> {
    Session::open_dir(
        Box::new(fs.clone()),
        Path::new(DIR),
        Database::new(),
        "empty",
        EvalOptions::default(),
    )
}

/// One write unit as planned (seed-determined) and as it played out.
#[derive(Debug, Clone)]
struct UnitPlan {
    /// Unit number within its stream; the unit sets `Val = j` (and
    /// `Aux = j` when transactional).
    j: i64,
    /// Run as a `BEGIN … COMMIT` handle transaction of two statements.
    txn: bool,
    /// Deterministic cancellation injected at this evaluation tick.
    cancel_at_tick: Option<u64>,
    /// Issue a CHECKPOINT right before this unit.
    checkpoint_before: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum UnitResult {
    /// Acknowledged durably committed.
    Ok,
    /// Definitely not applied (cancelled or failed in the engine, unit
    /// rolled back before any WAL append).
    DefiniteErr,
    /// Fate unknown (storage fault / shutdown race): the unit may or
    /// may not have reached the durable log.
    Maybe,
}

/// Per-stream counter state used to fold unit plans into expected
/// `(Val, Aux)` pairs.
fn apply(state: (i64, i64), u: &UnitPlan) -> (i64, i64) {
    if u.txn {
        (u.j, u.j)
    } else {
        (u.j, state.1)
    }
}

struct StreamLog {
    units: Vec<(UnitPlan, UnitResult)>,
}

/// A successful service read, pinned for post-hoc verification.
struct ReadLog {
    query: usize,
    epoch: u64,
    rendered: String,
    snapshot: Arc<Database>,
}

fn render(rel: &relalg::Relation) -> String {
    format!("{rel:?}")
}

fn counter_state(s: &mut Session, obj: &str) -> (i64, i64) {
    let get = |s: &mut Session, attr: &str| -> i64 {
        let rel = s
            .query(&format!("SELECT W FROM Numeral W WHERE {obj}.{attr}[W]"))
            .expect("recovered session answers reads");
        assert_eq!(rel.len(), 1, "{obj}.{attr} must stay scalar");
        let oid = rel.iter().next().unwrap()[0];
        s.db().oids().as_number(oid).unwrap() as i64
    };
    (get(s, "Val"), get(s, "Aux"))
}

/// Submits one planned unit through `h`, retrying on load shedding and
/// read-only (disk full) degradation. Returns how the unit ended.
fn run_unit(
    h: &mut service::SessionHandle,
    stream: usize,
    u: &UnitPlan,
    saw_readonly: &AtomicBool,
) -> UnitResult {
    let ctx = QueryContext {
        cancel_at_tick: u.cancel_at_tick,
        ..QueryContext::default()
    };
    let obj = format!("c{stream}");
    let set_val = format!("UPDATE CLASS Counter SET {obj}.Val = {}", u.j);
    let set_aux = format!("UPDATE CLASS Counter SET {obj}.Aux = {}", u.j);
    if u.checkpoint_before {
        // Best-effort; a checkpoint hitting an injected fault poisons
        // the service, which the Maybe path below will observe.
        let _ = retry_shed(saw_readonly, || {
            h.execute("CHECKPOINT", &QueryContext::default())
        });
    }
    let result = if u.txn {
        (|| {
            h.execute("BEGIN WORK", &ctx)?;
            h.execute(&set_val, &ctx)?;
            h.execute(&set_aux, &ctx)?;
            // A `ReadOnly` shed rolls the unit back cleanly and keeps
            // the handle buffer, so retrying the COMMIT is exact.
            retry_shed(saw_readonly, || h.execute("COMMIT WORK", &ctx))
        })()
    } else {
        retry_shed(saw_readonly, || h.execute(&set_val, &ctx))
    };
    match result {
        Ok(_) => UnitResult::Ok,
        Err(ServiceError::Xsql(XsqlError::Cancelled { .. })) => {
            // A cancelled transactional unit leaves the handle buffer
            // open only if BEGIN had succeeded and COMMIT failed — the
            // unit itself was rolled back either way. Clear the buffer.
            if h.in_transaction() {
                let _ = h.execute("ROLLBACK WORK", &QueryContext::default());
            }
            UnitResult::DefiniteErr
        }
        Err(ServiceError::Xsql(_)) => {
            if h.in_transaction() {
                let _ = h.execute("ROLLBACK WORK", &QueryContext::default());
            }
            UnitResult::DefiniteErr
        }
        Err(_) => {
            if h.in_transaction() {
                let _ = h.execute("ROLLBACK WORK", &QueryContext::default());
            }
            UnitResult::Maybe
        }
    }
}

/// Retries through both shed shapes: `Overloaded` (admission control)
/// and `ReadOnly` (disk full — the space-freer thread unfills the disk,
/// so the retry loop terminates).
fn retry_shed<F>(saw_readonly: &AtomicBool, mut f: F) -> Result<ExecResult, ServiceError>
where
    F: FnMut() -> Result<ExecResult, ServiceError>,
{
    for _ in 0..10_000 {
        match f() {
            Err(ServiceError::Overloaded { retry_after }) => {
                std::thread::sleep(retry_after.min(Duration::from_millis(1)));
            }
            Err(ServiceError::ReadOnly { retry_after }) => {
                saw_readonly.store(true, Ordering::Relaxed);
                std::thread::sleep(retry_after.min(Duration::from_millis(1)));
            }
            other => return other,
        }
    }
    panic!("service shed the same request 10000 times");
}

fn chaos_round(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51ED_5EED);
    let fs = FaultFs::new();

    // Deterministic base state, durable before any fault is armed.
    {
        let mut s = open(&fs).expect("fresh store");
        for stmt in PROLOGUE {
            s.run(stmt).expect("prologue");
        }
    }
    let mut session = open(&fs).expect("reopen over prologue");
    // Instant ENOSPC probes: the moment the space-freer thread unfills
    // the disk, the next retried unit recovers the store.
    session.set_store_config(StoreConfig {
        probe_min_interval: Duration::ZERO,
        ..StoreConfig::default()
    });

    let cfg = ServiceConfig {
        max_sessions: 16,
        max_queue: rng.gen_range(1..=4usize),
        max_readers: rng.gen_range(1..=3usize),
        max_read_waiters: rng.gen_range(0..=4usize),
        max_group_commit: rng.gen_range(1..=4usize),
        default_deadline: None,
        retry_after: Duration::from_micros(200),
        // Seed-determined jitter: injections stay a pure function of
        // the seed.
        retry_jitter: 0.5,
        jitter_seed: seed,
        // Exercise sequential and parallel snapshot readers alike;
        // results are bit-identical either way, so the checker needs no
        // special case.
        reader_parallelism: rng.gen_range(1..=2usize),
    };

    // Plan the workload up front so it is a pure function of the seed.
    let streams: Vec<Vec<UnitPlan>> = (0..2)
        .map(|_| {
            let n = rng.gen_range(3..=6i64);
            (1..=n)
                .map(|j| UnitPlan {
                    j,
                    txn: rng.gen_bool(0.4),
                    cancel_at_tick: if rng.gen_bool(0.25) {
                        Some(rng.gen_range(1..=40u64))
                    } else {
                        None
                    },
                    checkpoint_before: rng.gen_bool(0.15),
                })
                .collect()
        })
        .collect();
    // Transactional units must not carry injected cancellations here:
    // the plan-folding below needs executed units to be exactly the
    // acked ones, and a cancellation inside a txn unit is covered by
    // the DefiniteErr path of single units anyway.
    let streams: Vec<Vec<UnitPlan>> = streams
        .into_iter()
        .map(|units| {
            units
                .into_iter()
                .map(|mut u| {
                    if u.txn {
                        u.cancel_at_tick = None;
                    }
                    u
                })
                .collect()
        })
        .collect();
    let reader_plans: Vec<Vec<(usize, u8)>> = (0..2)
        .map(|_| {
            let n = rng.gen_range(4..=8usize);
            (0..n)
                .map(|_| {
                    let q = rng.gen_range(0..READS.len());
                    // 0 = plain, 1 = injected tick cancel, 2 = expired
                    // deadline, 3 = yield first, 4 = via PREPARE/EXECUTE
                    // (exercises the plan cache across epoch changes).
                    let mode = if rng.gen_bool(0.6) {
                        0
                    } else {
                        rng.gen_range(1..=4u8) as u8
                    };
                    (q, mode)
                })
                .collect()
        })
        .collect();
    let arm: Option<u64> = if rng.gen_bool(0.5) {
        Some(rng.gen_range(5..=120u64))
    } else {
        None
    };
    // Mutually exclusive with the crashing fault: a disk-full episode
    // after a seeded op count, unfilled mid-run by the freer thread.
    let enospc: Option<u64> = if arm.is_none() && rng.gen_bool(0.5) {
        Some(rng.gen_range(5..=120u64))
    } else {
        None
    };
    let crash_mode = match rng.gen_range(0..4u8) {
        0 => CrashMode::TornTail,
        1 => CrashMode::LostFsync,
        2 => CrashMode::BitFlip,
        _ => CrashMode::LostRename,
    };

    let svc = Arc::new(Service::start(session, cfg));
    if let Some(n) = arm {
        fs.fail_after_ops(n);
    }
    if let Some(n) = enospc {
        fs.disk_full_after_ops(n);
    }

    // The space-freer: once the seeded ENOSPC episode starts, let the
    // degraded phase be observed briefly, then free the disk so every
    // retried unit can commit. Freeing also disarms the trigger, so the
    // disk fills at most once per round.
    let saw_readonly = Arc::new(AtomicBool::new(false));
    let freer_done = Arc::new(AtomicBool::new(false));
    let freer = {
        let fs = fs.clone();
        let done = Arc::clone(&freer_done);
        std::thread::spawn(move || {
            let mut freed = false;
            while !done.load(Ordering::Relaxed) {
                if !freed && fs.is_disk_full() {
                    std::thread::sleep(Duration::from_millis(2));
                    fs.set_disk_full(false);
                    freed = true;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            freed
        })
    };

    let logs: Arc<Mutex<Vec<ReadLog>>> = Arc::new(Mutex::new(Vec::new()));

    let writer_threads: Vec<_> = streams
        .iter()
        .cloned()
        .enumerate()
        .map(|(stream, units)| {
            let svc = Arc::clone(&svc);
            let saw_readonly = Arc::clone(&saw_readonly);
            std::thread::spawn(move || {
                let mut h = retry_connect(&svc);
                let mut log = StreamLog { units: Vec::new() };
                for u in units {
                    let r = run_unit(&mut h, stream, &u, &saw_readonly);
                    let stop = r == UnitResult::Maybe;
                    log.units.push((u, r));
                    // After an indeterminate failure the service is
                    // poisoned or shutting down; stop the stream so
                    // at most one unit has unknown fate.
                    if stop {
                        break;
                    }
                }
                log
            })
        })
        .collect();

    let reader_threads: Vec<_> = reader_plans
        .into_iter()
        .map(|plan| {
            let svc = Arc::clone(&svc);
            let logs = Arc::clone(&logs);
            std::thread::spawn(move || {
                let mut h = retry_connect(&svc);
                let mut prepared: std::collections::BTreeSet<usize> =
                    std::collections::BTreeSet::new();
                for (q, mode) in plan {
                    if mode == 3 {
                        std::thread::yield_now();
                    }
                    let ctx = QueryContext {
                        cancel_at_tick: (mode == 1).then_some(2),
                        deadline: (mode == 2).then(Instant::now),
                        ..QueryContext::default()
                    };
                    // Prepared-read mode: register the query once per
                    // connection, then read through EXECUTE — results
                    // must be indistinguishable from the plain read.
                    let src = if mode == 4 {
                        if !prepared.contains(&q)
                            && h.execute(
                                &format!("PREPARE p{q} AS {}", READS[q]),
                                &QueryContext::default(),
                            )
                            .is_ok()
                        {
                            prepared.insert(q);
                        }
                        if prepared.contains(&q) {
                            format!("EXECUTE p{q}")
                        } else {
                            READS[q].to_string()
                        }
                    } else {
                        READS[q].to_string()
                    };
                    match h.execute(&src, &ctx) {
                        Ok(ExecResult::Read(r)) => {
                            let rel = match &r.outcome {
                                xsql::Outcome::Relation(rel) => rel,
                                o => panic!("read produced {o:?}"),
                            };
                            logs.lock().unwrap().push(ReadLog {
                                query: q,
                                epoch: r.epoch,
                                rendered: render(rel),
                                snapshot: r.snapshot,
                            });
                        }
                        Ok(o) => panic!("read produced {o:?}"),
                        // Injected cancellations, expired deadlines and
                        // load shedding are expected; anything else is
                        // a harness bug.
                        Err(ServiceError::Xsql(XsqlError::Cancelled { .. }))
                        | Err(ServiceError::Overloaded { .. })
                        | Err(ServiceError::ShuttingDown)
                        | Err(ServiceError::Poisoned(_)) => {}
                        Err(e) => panic!("unexpected read error: {e}"),
                    }
                }
            })
        })
        .collect();

    let stream_logs: Vec<StreamLog> = writer_threads
        .into_iter()
        .map(|t| t.join().expect("writer client panicked"))
        .collect();
    for t in reader_threads {
        t.join().expect("reader client panicked");
    }

    // Invariant 3a: no leaked sessions or reader slots.
    let stats = svc.stats();
    assert_eq!(stats.sessions, 0, "seed {seed}: leaked sessions");
    assert_eq!(stats.active_readers, 0, "seed {seed}: leaked reader slots");
    assert_eq!(stats.waiting_readers, 0, "seed {seed}: leaked waiters");

    // Invariant 4: telemetry consistency. Every admitted request is
    // settled exactly once, so the counters balance per kind under all
    // interleavings; and every acknowledged write unit corresponds to
    // exactly one WAL commit append (a CHECKPOINT appends nothing, a
    // cancelled/failed unit rolls back before its append).
    let registry = Arc::clone(svc.registry());
    for kind in ["read", "write"] {
        let labels = [("kind", kind)];
        let admitted = registry.counter("svc_admitted_total", &labels).get();
        let settled = registry.counter("svc_shed_total", &labels).get()
            + registry.counter("svc_completed_total", &labels).get()
            + registry.counter("svc_failed_total", &labels).get();
        assert_eq!(
            settled, admitted,
            "seed {seed}: {kind} requests admitted but never settled"
        );
    }
    // An acked transactional unit and an acked single UPDATE each
    // commit as exactly one WAL unit, so acks count appends directly.
    let acked: u64 = stream_logs
        .iter()
        .flat_map(|l| &l.units)
        .filter(|(_, r)| *r == UnitResult::Ok)
        .count() as u64;
    let wal_appends = registry.counter_total("storage_wal_appends_total");
    if arm.is_none() {
        // Exact even through a disk-full episode: a shed (`ReadOnly`)
        // attempt rolls back before its append is counted, and probe
        // or checkpoint traffic never touches the append counter.
        assert_eq!(
            wal_appends, acked,
            "seed {seed}: acked units and WAL commit appends disagree"
        );
    } else {
        // With a fault armed, a unit may have appended durably and
        // still been answered `Poisoned` (fate `Maybe`): the append
        // counter may run ahead of the acks, never behind.
        assert!(
            wal_appends >= acked,
            "seed {seed}: {acked} acked units but only {wal_appends} WAL appends"
        );
    }

    // Invariant 5: schema-epoch fencing. Definitional statements and
    // statement-failure rollbacks bump the schema epoch mid-run; a plan
    // compiled under an older epoch must be recompiled, never executed.
    // The engine counts the should-be-impossible case defensively.
    assert_eq!(
        registry.counter_total("xsql_plan_cache_stale_executions_total"),
        0,
        "seed {seed}: a stale cached plan reached execution after an epoch bump"
    );

    // Invariant 3b: shutdown completes under a watchdog (no deadlock).
    let svc = Arc::try_unwrap(svc).ok().expect("all clients joined");
    let (done_tx, done_rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = done_tx.send(svc.shutdown());
    });
    let joined = done_rx
        .recv_timeout(Duration::from_secs(30))
        .unwrap_or_else(|_| panic!("seed {seed}: shutdown deadlocked"));
    drop(joined.expect("writer thread must not panic"));

    // Invariant 4 (ENOSPC): the disk-full episode shed writers with the
    // retryable `ReadOnly` error only — no unit fate went unknown, the
    // incident is on the counters, and the store did not stay degraded
    // once space freed (the first retried batch probes its way back).
    freer_done.store(true, Ordering::Relaxed);
    let freed = freer.join().expect("space-freer thread panicked");
    fs.set_disk_full(false);
    if enospc.is_some() {
        assert!(
            stream_logs
                .iter()
                .flat_map(|l| &l.units)
                .all(|(_, r)| *r != UnitResult::Maybe),
            "seed {seed}: ENOSPC must shed retryably, never poison"
        );
    }
    if saw_readonly.load(Ordering::Relaxed) {
        assert!(
            freed,
            "seed {seed}: writers saw ReadOnly but the disk never filled"
        );
        assert!(
            registry.counter_total("storage_disk_full_total") >= 1,
            "seed {seed}: disk-full episode left no telemetry trace"
        );
        assert_ne!(
            registry.gauge_value("store_health"),
            1,
            "seed {seed}: store stuck in degraded read-only after space freed"
        );
    }

    // Invariant 1: plan invariance. Same (epoch, query) → same answer,
    // and a single-threaded re-evaluation on the pinned snapshot agrees.
    let logs = Arc::try_unwrap(logs)
        .ok()
        .expect("readers joined")
        .into_inner()
        .unwrap();
    let mut by_key: BTreeMap<(u64, usize), &ReadLog> = BTreeMap::new();
    for l in &logs {
        if let Some(first) = by_key.get(&(l.epoch, l.query)) {
            assert_eq!(
                first.rendered, l.rendered,
                "seed {seed}: two reads of query {} at epoch {} disagree",
                l.query, l.epoch
            );
        } else {
            by_key.insert((l.epoch, l.query), l);
        }
    }
    for l in &logs {
        let mut reference = Session::with_options((*l.snapshot).clone(), EvalOptions::default());
        let rel = reference.query(READS[l.query]).expect("reference re-eval");
        assert_eq!(
            render(&rel),
            l.rendered,
            "seed {seed}: service read of query {} at epoch {} does not match \
             single-threaded reference evaluation",
            l.query,
            l.epoch
        );
    }

    // Crash and recover.
    fs.crash(crash_mode);
    let mut recovered = match open(&fs) {
        Ok(s) => s,
        Err(e) => panic!("seed {seed}: recovery failed after {crash_mode:?}: {e}"),
    };

    // Invariant 2: acked writes survived, unacked-definite ones did
    // not, transactional units applied all-or-nothing.
    for (stream, log) in stream_logs.iter().enumerate() {
        let got = counter_state(&mut recovered, &format!("c{stream}"));
        let mut committed = (0i64, 0i64);
        let mut maybe: Option<(i64, i64)> = None;
        for (u, r) in &log.units {
            match r {
                UnitResult::Ok => committed = apply(committed, u),
                UnitResult::DefiniteErr => {}
                UnitResult::Maybe => maybe = Some(apply(committed, u)),
            }
        }
        let mut allowed = vec![committed];
        if let Some(m) = maybe {
            allowed.push(m);
        }
        assert!(
            allowed.contains(&got),
            "seed {seed} stream {stream} ({crash_mode:?}): recovered {got:?}, \
             allowed {allowed:?}; units: {:?}",
            log.units
        );
    }
}

fn retry_connect(svc: &Service) -> service::SessionHandle {
    loop {
        match svc.connect() {
            Ok(h) => return h,
            Err(ServiceError::Overloaded { .. }) => std::thread::sleep(Duration::from_micros(200)),
            Err(e) => panic!("connect failed: {e}"),
        }
    }
}

#[test]
fn chaos_seeded_interleavings() {
    let seeds: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    for seed in 0..seeds {
        chaos_round(seed);
    }
}
