//! Functional tests of the concurrent service: deadlines on runaway
//! queries, cooperative cancellation, snapshot isolation across
//! concurrent readers and writers, and reader-gate admission control.

use datagen::{figure1_scaled, Figure1Params};
use service::{ExecResult, QueryContext, Service, ServiceConfig, ServiceError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xsql::{EvalOptions, Session, XsqlError};

fn big_session() -> Session {
    // ~500 objects; a triple cross product over Employee is tens of
    // millions of combinations — far beyond any deadline used here.
    let db = figure1_scaled(&Figure1Params::with_total_objects(500));
    let mut opts = EvalOptions::default();
    // Leave only the deadline/cancel as the effective limit.
    opts.work_limit = u64::MAX;
    opts.budget.max_tuples = usize::MAX;
    opts.budget.max_binding_set = usize::MAX;
    Session::with_options(db, opts)
}

const RUNAWAY: &str = "SELECT X, Y, Z FROM Employee X, Employee Y, Employee Z \
                       WHERE X.Salary > Y.Salary AND Y.Salary > Z.Salary";

#[test]
fn runaway_query_is_cancelled_by_deadline_and_service_stays_healthy() {
    let svc = Service::start(big_session(), ServiceConfig::default());
    let mut h = svc.connect().unwrap();

    let start = Instant::now();
    let err = h
        .execute(
            RUNAWAY,
            &QueryContext::with_timeout(Duration::from_millis(50)),
        )
        .unwrap_err();
    assert!(
        matches!(err, ServiceError::Xsql(XsqlError::Cancelled { .. })),
        "expected Cancelled, got: {err}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "deadline did not bite"
    );

    // The worker is not wedged and the service is not poisoned: both
    // reads and writes still succeed on the same handle.
    assert!(svc.poisoned().is_none());
    let r = h
        .execute(
            "SELECT X FROM Company X",
            &QueryContext::with_timeout(Duration::from_secs(30)),
        )
        .unwrap();
    assert!(matches!(r, ExecResult::Read(_)));
    let r = h
        .execute(
            "CREATE CLASS AfterCancel",
            &QueryContext::with_timeout(Duration::from_secs(30)),
        )
        .unwrap();
    assert!(matches!(r, ExecResult::Write(_)));
    drop(h);
    svc.shutdown().unwrap();
}

#[test]
fn client_cancel_token_stops_a_running_read() {
    let svc = Arc::new(Service::start(big_session(), ServiceConfig::default()));
    let mut h = svc.connect().unwrap();
    let ctx = QueryContext::default();
    let cancel = ctx.cancel.clone();
    let fired = Arc::new(AtomicBool::new(false));
    let fired2 = Arc::clone(&fired);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        fired2.store(true, Ordering::SeqCst);
        cancel.cancel();
    });
    let err = h.execute(RUNAWAY, &ctx).unwrap_err();
    killer.join().unwrap();
    assert!(fired.load(Ordering::SeqCst));
    assert!(
        matches!(err, ServiceError::Xsql(XsqlError::Cancelled { .. })),
        "expected Cancelled, got: {err}"
    );
}

#[test]
fn deadline_also_covers_writes() {
    let svc = Service::start(big_session(), ServiceConfig::default());
    let mut h = svc.connect().unwrap();
    // An object-creating runaway is a *write* and goes through the
    // writer thread; the deadline must still cancel it cleanly.
    let err = h
        .execute(
            "SELECT Pair = X FROM Employee X, Employee Y, Employee Z \
             OID FUNCTION OF X, Y, Z",
            &QueryContext::with_timeout(Duration::from_millis(50)),
        )
        .unwrap_err();
    assert!(
        matches!(err, ServiceError::Xsql(XsqlError::Cancelled { .. })),
        "expected Cancelled, got: {err}"
    );
    assert!(svc.poisoned().is_none());
    // Cancellation rolled the unit back: no Pair class exists.
    let r = h.query("SELECT X FROM Pair X", &QueryContext::default());
    // Unknown class yields an empty relation (not an error) in this
    // engine; either way there must be no Pair objects.
    if let Ok(rel) = r {
        assert_eq!(rel.len(), 0);
    }
    drop(h);
    svc.shutdown().unwrap();
}

#[test]
fn readers_see_a_consistent_epoch_while_writers_commit() {
    let svc = Arc::new(Service::start(big_session(), ServiceConfig::default()));
    let stop = Arc::new(AtomicBool::new(false));

    // Writer: bump a fresh object's attribute in a loop.
    {
        let mut h = svc.connect().unwrap();
        h.execute("CREATE CLASS Tick", &QueryContext::default())
            .unwrap();
        h.execute(
            "ALTER CLASS Tick ADD SIGNATURE N => Numeral",
            &QueryContext::default(),
        )
        .unwrap();
        h.execute(
            "CREATE OBJECT t0 CLASS Tick SET N = 0",
            &QueryContext::default(),
        )
        .unwrap();
    }
    let writer = {
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut h = svc.connect().unwrap();
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                h.execute(
                    &format!("UPDATE CLASS Tick SET t0.N = {i}"),
                    &QueryContext::default(),
                )
                .unwrap();
            }
            i
        })
    };

    // Readers: the value must be a single well-defined numeral at every
    // epoch (never absent, never two values mid-update).
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut h = svc.connect().unwrap();
                let mut seen = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let rel = h
                        .query(
                            "SELECT W FROM Numeral W WHERE t0.N[W]",
                            &QueryContext::with_timeout(Duration::from_secs(30)),
                        )
                        .unwrap();
                    assert_eq!(rel.len(), 1, "t0.N must always be scalar");
                    seen += 1;
                }
                seen
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    let writes = writer.join().unwrap();
    let reads: u32 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(writes > 0 && reads > 0);

    let svc = Arc::try_unwrap(svc).ok().expect("all handles dropped");
    let stats = svc.stats();
    assert_eq!(stats.sessions, 0, "no leaked sessions");
    assert_eq!(stats.active_readers, 0, "no leaked reader slots");
    svc.shutdown().unwrap();
}

#[test]
fn read_gate_sheds_when_waiters_exceed_the_bound() {
    let cfg = ServiceConfig {
        max_readers: 1,
        max_read_waiters: 0,
        ..ServiceConfig::default()
    };
    let svc = Arc::new(Service::start(big_session(), cfg));
    // Occupy the single reader slot with a long statement.
    let blocker = {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || {
            let mut h = svc.connect().unwrap();
            let err = h
                .execute(
                    RUNAWAY,
                    &QueryContext::with_timeout(Duration::from_millis(400)),
                )
                .unwrap_err();
            assert!(matches!(
                err,
                ServiceError::Xsql(XsqlError::Cancelled { .. })
            ));
        })
    };
    // Wait until the blocker actually holds the reader slot before
    // probing: on a loaded (or single-core) host the spawned thread may
    // not have run yet, and a probe that grabs the free slot first
    // would get the blocker itself shed instead of cancelled.
    let t0 = Instant::now();
    while svc.stats().active_readers == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "blocker never took the reader slot"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut shed = false;
    for _ in 0..100 {
        let mut h = svc.connect().unwrap();
        match h.execute(
            "SELECT X FROM Company X",
            &QueryContext::with_timeout(Duration::from_secs(5)),
        ) {
            Err(ServiceError::Overloaded { retry_after }) => {
                assert!(retry_after > Duration::ZERO);
                shed = true;
                break;
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    blocker.join().unwrap();
    assert!(shed, "the gate never shed a reader");
}

/// Observability: the `STATS` statement works through a handle (it is
/// answered from the service's registry, pinned to the current epoch),
/// and `Service::stats_text` exposes the same registry with the
/// admission, latency and gauge families populated.
#[test]
fn stats_statement_and_exposition() {
    let svc = Service::start(big_session(), ServiceConfig::default());
    let mut h = svc.connect().unwrap();
    let ctx = QueryContext::with_timeout(Duration::from_secs(30));
    h.execute("SELECT X FROM Company X", &ctx).unwrap();
    h.execute("CREATE CLASS StatsProbe", &ctx).unwrap();

    let r = h.execute("STATS", &ctx).unwrap();
    let ExecResult::Read(read) = r else {
        panic!("STATS must be answered as a read");
    };
    let xsql::Outcome::Stats { report } = read.outcome else {
        panic!("expected Outcome::Stats");
    };
    for needle in [
        "svc_admitted_total{kind=\"read\"} ",
        "svc_admitted_total{kind=\"write\"} ",
        "svc_completed_total{kind=\"write\"} ",
        "svc_exec_latency_us_count{kind=\"read\"} ",
        "svc_total_latency_us_p50{kind=\"write\"} ",
        "svc_write_queue_latency_us_count ",
        "svc_sessions ",
        "svc_epoch ",
    ] {
        assert!(report.contains(needle), "missing `{needle}` in:\n{report}");
    }
    // Every line is a parseable `name[{labels}] value` sample.
    for line in report.lines() {
        let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("unparseable exposition line: {line}");
        });
        assert!(!name.is_empty(), "{line}");
        assert!(value.parse::<i64>().is_ok(), "non-numeric value in: {line}");
    }

    // The service-side exposition reads the same registry.
    let text = svc.stats_text();
    assert!(
        text.contains("svc_admitted_total{kind=\"read\"} "),
        "{text}"
    );
    assert!(text.contains("svc_active_readers "), "{text}");

    drop(h);
    svc.shutdown().unwrap();
}
