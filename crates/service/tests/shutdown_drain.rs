//! Regression test: shutting the service down while group commits are
//! in flight must never lose an acknowledged unit.
//!
//! The writer thread batches units and acknowledges each one only
//! after the batch fsync. Shutdown (or a `Service` drop) closes the
//! queue and joins the writer; the drain epilogue must flush whatever
//! tail the last batch left behind **before** the thread exits. The
//! test arms fault injection and simulates a power loss immediately
//! after the join — [`storage::fault::CrashMode::LostFsync`] discards
//! every byte not yet fsynced — so any acked-but-unsynced state the
//! drain left behind shows up as a missing unit at recovery.

use oodb::Database;
use service::{ExecResult, QueryContext, Service, ServiceConfig, ServiceError};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use storage::fault::{CrashMode, FaultFs};
use xsql::{EvalOptions, Session, XsqlError};

const DIR: &str = "/db";

fn open(fs: &FaultFs) -> Result<Session, XsqlError> {
    Session::open_dir(
        Box::new(fs.clone()),
        Path::new(DIR),
        Database::new(),
        "empty",
        EvalOptions::default(),
    )
}

fn setup(fs: &FaultFs) -> Session {
    let mut s = open(fs).unwrap();
    for stmt in [
        "CREATE CLASS Counter",
        "ALTER CLASS Counter ADD SIGNATURE Val => Numeral",
        "CREATE OBJECT c0 CLASS Counter SET Val = 0",
        "CREATE OBJECT c1 CLASS Counter SET Val = 0",
        "CREATE OBJECT c2 CLASS Counter SET Val = 0",
    ] {
        s.run(stmt).unwrap();
    }
    s
}

/// Reads stream `name`'s counter value out of a recovered session.
fn recovered_val(s: &mut Session, name: &str) -> i64 {
    let out = s
        .run(&format!("SELECT W FROM Numeral W WHERE {name}.Val[W]"))
        .unwrap();
    let xsql::Outcome::Relation(rel) = out else {
        panic!("{out:?}")
    };
    let oid = rel.iter().next().unwrap()[0];
    s.db().oids().as_number(oid).unwrap() as i64
}

/// Runs one shutdown race: `streams` writer clients hammer the queue
/// while the main thread tears the service down mid-flight, then a
/// simulated power loss discards unsynced bytes and recovery checks
/// every acked unit survived.
fn run_race(seed_round: u64, drop_instead_of_shutdown: bool) {
    let fs = FaultFs::new();
    let svc = Service::start(
        setup(&fs),
        ServiceConfig {
            max_queue: 4,
            max_group_commit: 8,
            jitter_seed: seed_round,
            ..ServiceConfig::default()
        },
    );
    let streams = ["c0", "c1", "c2"];
    let stop = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for name in streams {
        let mut h = svc.connect().unwrap();
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            let ctx = QueryContext::default();
            let mut last_acked = 0i64;
            let mut last_submitted = 0i64;
            for j in 1..=200i64 {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                last_submitted = j;
                match h.execute(&format!("UPDATE CLASS Counter SET {name}.Val = {j}"), &ctx) {
                    Ok(ExecResult::Write(_)) => last_acked = j,
                    Ok(other) => panic!("unexpected {other:?}"),
                    // Queue full: breathe and retry the next value.
                    Err(ServiceError::Overloaded { retry_after }) => {
                        std::thread::sleep(retry_after.min(Duration::from_millis(2)));
                    }
                    // Shutdown closed the queue under us: the unit's
                    // fate is unknown, but nothing *acked* may vanish.
                    Err(ServiceError::ShuttingDown) => break,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            (last_acked, last_submitted)
        }));
    }
    // Let the clients collide with the group-commit loop, then tear the
    // service down with units still queued and executing.
    std::thread::sleep(Duration::from_millis(15));
    if drop_instead_of_shutdown {
        drop(svc);
    } else {
        svc.shutdown().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let acked: Vec<(i64, i64)> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert!(
        acked.iter().any(|(a, _)| *a > 0),
        "race produced no acked writes; widen the window"
    );
    // Power loss: everything the drain failed to fsync is gone.
    fs.crash(CrashMode::LostFsync);
    let mut s = open(&fs).unwrap();
    for (name, (last_acked, last_submitted)) in streams.iter().zip(acked) {
        let got = recovered_val(&mut s, name);
        assert!(
            got >= last_acked,
            "{name}: acked {last_acked} but recovered {got} — acked unit lost in drain"
        );
        assert!(
            got <= last_submitted,
            "{name}: recovered {got} beyond last submitted {last_submitted}"
        );
    }
}

#[test]
fn shutdown_mid_group_commit_loses_no_acked_unit() {
    for round in 0..4 {
        run_race(round, false);
    }
}

#[test]
fn drop_mid_group_commit_loses_no_acked_unit() {
    for round in 0..4 {
        run_race(round + 100, true);
    }
}
