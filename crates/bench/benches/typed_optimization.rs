//! E3 — Theorem 6.1: "this potentially very powerful optimization".
//!
//! The naive §3.4 engine with and without range restriction, as range
//! selectivity varies: the query variable's range (Company) is a fixed,
//! small class while the total domain grows. Expected shape: the
//! unrestricted engine scales with |domain|^2, the restricted one with
//! |Vehicle|·|Company| — the gap widens linearly with domain growth.

use bench::{compile, scaled_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xsql::typing::{theorem61_ranges, Exemptions};
use xsql::{eval_select, eval_select_ranged, EvalOptions};

const QUERY: &str = "SELECT M FROM Vehicle X WHERE X.Manufacturer[M] and M.President[P]";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_theorem61");
    group.sample_size(10);
    let naive = EvalOptions::naive();

    for companies in [1usize, 2, 3] {
        let mut db = scaled_db(companies);
        let q = compile(&mut db, QUERY);
        let n = db.individual_count();
        let ranges = theorem61_ranges(&db, &q, &Exemptions::none())
            .unwrap()
            .expect("strictly well-typed");
        group.bench_with_input(BenchmarkId::new("naive_restricted", n), &n, |b, _| {
            b.iter(|| black_box(eval_select_ranged(&db, &q, &naive, &ranges).unwrap()))
        });
        // The unrestricted engine cubes the domain (X, M, P all range
        // over every individual); only the smallest size is feasible.
        if companies == 1 {
            group.bench_with_input(BenchmarkId::new("naive_unrestricted", n), &n, |b, _| {
                b.iter(|| black_box(eval_select(&db, &q, &naive).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
