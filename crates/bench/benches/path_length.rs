//! E2 — path expressions "flatten any nested structure in one sweep"
//! (§3.1 point 4).
//!
//! Evaluation cost of a single path expression as a function of path
//! length (1–5 steps) and of set-valued fan-out (family sizes), on a
//! fixed Figure 1 instance. Expected shape: near-linear growth in path
//! length for scalar chains; multiplicative in fan-out for set-valued
//! steps.

use bench::{compile, scaled_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{figure1_scaled, Figure1Params};
use std::hint::black_box;
use xsql::{eval_select, EvalOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_path_length");

    // Scalar chain of increasing length.
    let chains = [
        "SELECT Y FROM Vehicle X WHERE X.Manufacturer[Y]",
        "SELECT Y FROM Vehicle X WHERE X.Manufacturer.President[Y]",
        "SELECT Y FROM Vehicle X WHERE X.Manufacturer.President.Residence[Y]",
        "SELECT Y FROM Vehicle X WHERE X.Manufacturer.President.Residence.City[Y]",
        "SELECT Y FROM Vehicle X WHERE X.Manufacturer.President.Residence.City[Y] and Y != 'nowhere'",
    ];
    let mut db = scaled_db(6);
    let opts = EvalOptions::default();
    for (i, src) in chains.iter().enumerate() {
        let q = compile(&mut db, src);
        group.bench_with_input(BenchmarkId::new("scalar_chain_steps", i + 1), &i, |b, _| {
            b.iter(|| black_box(eval_select(&db, &q, &opts).unwrap()))
        });
    }

    // Set-valued unnesting with growing fan-out.
    for fam in [1usize, 3, 6, 9] {
        let mut db = figure1_scaled(&Figure1Params {
            companies: 4,
            max_fam_members: fam,
            ..Figure1Params::default()
        });
        let q = compile(
            &mut db,
            "SELECT W FROM Company X WHERE X.Divisions.Employees.FamMembers.Residence.City[W]",
        );
        group.bench_with_input(
            BenchmarkId::new("set_fanout_max_family", fam),
            &fam,
            |b, _| b.iter(|| black_box(eval_select(&db, &q, &opts).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
