//! E8 — inverted method indexes for head-unbound path expressions.
//!
//! The paper's schema-browsing queries (`SELECT X WHERE X.M…`) leave the
//! head variable unconstrained; without support the engine scans the
//! whole active domain. The inverted index the engine maintains (in the
//! spirit of the paper's [BERT89] citation) seeds the walk with only the
//! objects on which the method can be defined. Expected shape: indexed
//! time tracks the *matching* population; unindexed time tracks the
//! whole domain.

use bench::{compile, scaled_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xsql::{eval_select, EvalOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_method_index");
    // HPpower is defined only on piston engines — a small slice of the
    // domain.
    const QUERY: &str = "SELECT X WHERE X.HPpower > 200";
    for companies in [2usize, 4, 8, 16] {
        let mut db = scaled_db(companies);
        let q = compile(&mut db, QUERY);
        let n = db.individual_count();
        let on = EvalOptions::default();
        let off = EvalOptions {
            use_method_index: false,
            ..EvalOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| black_box(eval_select(&db, &q, &on).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("domain_scan", n), &n, |b, _| {
            b.iter(|| black_box(eval_select(&db, &q, &off).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
