//! E15 — the cost-based planner vs. the pipelined nested-loop engine.
//!
//! The E11 join workload over the same scaled Figure 1 database, run
//! once with the planner enabled (the default) and once with
//! `use_planner: false`, both strictly sequential, so the delta is the
//! set-at-a-time plan itself — index probes, hash/theta joins over
//! cached columns, bulk emission — and nothing else. For every query
//! the two result relations are asserted bit-identical (the
//! bit-identical-or-bail contract of `docs/PLANNER.md`), then the
//! median wall-clock of several runs is reported with the speedup of
//! planned over pipelined.
//!
//! Results go to `BENCH_planner.json` at the repo root; EXPERIMENTS.md
//! E15 narrates them. `BENCH_parallel.json` (E11) keeps the
//! worker-sweep view of the same queries.

use bench::{compile, scaled_db};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;
use xsql::{eval_select, EvalOptions};

/// Repetitions per (query, engine) cell; the median is reported.
const REPS: usize = 5;

const COMPANIES: usize = 30;

const QUERIES: &[(&str, &str)] = &[
    (
        "employee_self_join",
        "SELECT X, Y FROM Employee X, Employee Y \
         WHERE X.Salary > Y.Salary AND X.Age < Y.Age",
    ),
    (
        "company_division_join",
        "SELECT X, W FROM Company X, Employee W \
         WHERE X.Divisions.Employees[W] and W.Salary > 30000",
    ),
    (
        "vehicle_owner_chain",
        "SELECT X, V FROM Employee X, Automobile V \
         WHERE X.OwnedVehicles[V] and V.Manufacturer.President.Age >= 30",
    ),
];

fn median_ms(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let mut db = scaled_db(COMPANIES);
    let engines: &[(&str, bool)] = &[("pipelined", false), ("planner", true)];

    let mut json = String::from("{\n  \"experiment\": \"E15_planner\",\n");
    let _ = writeln!(json, "  \"companies\": {COMPANIES},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    json.push_str("  \"queries\": [\n");

    for (qi, (name, src)) in QUERIES.iter().enumerate() {
        let q = compile(&mut db, src);
        let mut baseline_rel = None;
        let mut baseline_ms = 0.0;
        let mut rows = 0usize;
        let mut cells = Vec::new();
        for &(engine, use_planner) in engines {
            let opts = EvalOptions {
                parallelism: 1,
                use_planner,
                ..EvalOptions::default()
            };
            let mut times = Vec::with_capacity(REPS);
            let mut rel = None;
            for _ in 0..REPS {
                let t = Instant::now();
                let r = eval_select(&db, &q, &opts).expect("eval");
                times.push(t.elapsed().as_secs_f64() * 1e3);
                rel = Some(r);
            }
            let rel = rel.unwrap();
            match &baseline_rel {
                None => {
                    rows = rel.len();
                    baseline_rel = Some(rel);
                }
                Some(base) => assert_eq!(
                    &rel, base,
                    "planner result differs from pipelined on {name}"
                ),
            }
            let ms = median_ms(times);
            if !use_planner {
                baseline_ms = ms;
            }
            let speedup = baseline_ms / ms;
            println!("{name} engine={engine}: median {ms:.2} ms (speedup {speedup:.2}x)");
            cells.push((engine, ms, speedup));
        }
        let _ = write!(
            json,
            "    {{\"name\": \"{name}\", \"rows\": {rows}, \"runs\": ["
        );
        for (i, (engine, ms, speedup)) in cells.iter().enumerate() {
            let _ = write!(
                json,
                "{{\"engine\": \"{engine}\", \"median_ms\": {ms:.3}, \"speedup\": {speedup:.3}}}"
            );
            if i + 1 < cells.len() {
                json.push_str(", ");
            }
        }
        json.push_str("]}");
        json.push_str(if qi + 1 < QUERIES.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_planner.json");
    std::fs::write(&out, &json).expect("write BENCH_planner.json");
    println!("{json}");
}
