//! E12 — overhead of the observability subsystem.
//!
//! Two measurements over the E11 workload (multi-variable join queries
//! on a scaled Figure 1 database):
//!
//! 1. **Profile collection** — `eval_select` with a `QueryProfile`
//!    sink attached to `EvalOptions` versus without, at 1 and 4
//!    workers. Every recording site is gated on the `Option`, so the
//!    attached run bounds what `EXPLAIN ANALYZE` costs over the bare
//!    statement.
//! 2. **Session telemetry** — `Session::run` with an *enabled*
//!    registry (spans recorded) versus the default disabled one.
//!    Metric counters are always live; the enabled run adds span
//!    capture into the ring buffer.
//!
//! Results go to `BENCH_telemetry.json` at the repo root; the target
//! is < 5 % median overhead on every cell. Relations are asserted
//! identical between instrumented and bare runs before timing counts.

use bench::{compile, scaled_db};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use xsql::eval::profile::QueryProfile;
use xsql::{eval_select, EvalOptions, Session};

/// Repetitions per cell; the median is reported. Higher than the E11
/// default because the quantity of interest is a small *difference*
/// between two medians.
const REPS: usize = 9;

const COMPANIES: usize = 30;

const QUERIES: &[(&str, &str)] = &[
    (
        "employee_self_join",
        "SELECT X, Y FROM Employee X, Employee Y \
         WHERE X.Salary > Y.Salary AND X.Age < Y.Age",
    ),
    (
        "company_division_join",
        "SELECT X, W FROM Company X, Employee W \
         WHERE X.Divisions.Employees[W] and W.Salary > 30000",
    ),
    (
        "vehicle_owner_chain",
        "SELECT X, V FROM Employee X, Automobile V \
         WHERE X.OwnedVehicles[V] and V.Manufacturer.President.Age >= 30",
    ),
];

fn median_ms(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let mut db = scaled_db(COMPANIES);
    let mut json = String::from("{\n  \"experiment\": \"E12_telemetry_overhead\",\n");
    let _ = writeln!(json, "  \"companies\": {COMPANIES},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    json.push_str("  \"profile_overhead\": [\n");

    // 1. Profile collection overhead on bare eval_select.
    let mut first = true;
    for (name, src) in QUERIES {
        let q = compile(&mut db, src);
        for workers in [1usize, 4] {
            let bare_opts = EvalOptions {
                parallelism: workers,
                ..EvalOptions::default()
            };
            // Interleave bare and profiled reps so clock-speed drift
            // over the run biases neither side.
            let mut bare_times = Vec::with_capacity(REPS);
            let mut prof_times = Vec::with_capacity(REPS);
            let mut bare_rel = None;
            let mut prof_rel = None;
            for _ in 0..REPS {
                let t = Instant::now();
                bare_rel = Some(eval_select(&db, &q, &bare_opts).expect("eval"));
                bare_times.push(t.elapsed().as_secs_f64() * 1e3);

                let opts = EvalOptions {
                    profile: Some(Arc::new(QueryProfile::default())),
                    ..bare_opts.clone()
                };
                let t = Instant::now();
                prof_rel = Some(eval_select(&db, &q, &opts).expect("eval"));
                prof_times.push(t.elapsed().as_secs_f64() * 1e3);
            }
            assert_eq!(bare_rel, prof_rel, "profiling changed the result of {name}");
            let bare = median_ms(bare_times);
            let prof = median_ms(prof_times);
            let overhead_pct = (prof / bare - 1.0) * 100.0;
            println!(
                "{name} workers={workers}: bare {bare:.2} ms, profiled {prof:.2} ms \
                 ({overhead_pct:+.1}%)"
            );
            if !first {
                json.push_str(",\n");
            }
            first = false;
            let _ = write!(
                json,
                "    {{\"name\": \"{name}\", \"workers\": {workers}, \
                 \"bare_ms\": {bare:.3}, \"profiled_ms\": {prof:.3}, \
                 \"overhead_pct\": {overhead_pct:.2}}}"
            );
        }
    }
    json.push_str("\n  ],\n  \"session_overhead\": [\n");

    // 2. Enabled-registry (span-recording) overhead on Session::run.
    let mut first = true;
    for (name, src) in QUERIES {
        let mut plain = Session::with_options(scaled_db(COMPANIES), EvalOptions::default());
        let mut traced = Session::with_options(scaled_db(COMPANIES), EvalOptions::default());
        traced.set_registry(Arc::new(telemetry::Registry::with_config(
            telemetry::TelemetryConfig {
                enabled: true,
                ..telemetry::TelemetryConfig::default()
            },
        )));
        let mut plain_times = Vec::with_capacity(REPS);
        let mut traced_times = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let t = Instant::now();
            plain.run(src).expect("plain run");
            plain_times.push(t.elapsed().as_secs_f64() * 1e3);
            let t = Instant::now();
            traced.run(src).expect("traced run");
            traced_times.push(t.elapsed().as_secs_f64() * 1e3);
        }
        let bare = median_ms(plain_times);
        let spans = median_ms(traced_times);
        let overhead_pct = (spans / bare - 1.0) * 100.0;
        println!("{name} session: plain {bare:.2} ms, spans {spans:.2} ms ({overhead_pct:+.1}%)");
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let _ = write!(
            json,
            "    {{\"name\": \"{name}\", \"plain_ms\": {bare:.3}, \
             \"spans_ms\": {spans:.3}, \"overhead_pct\": {overhead_pct:.2}}}"
        );
    }
    json.push_str("\n  ]\n}\n");

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_telemetry.json");
    std::fs::write(&out, &json).expect("write BENCH_telemetry.json");
    println!("{json}");
}
