//! E11 — scaling of partitioned parallel query evaluation.
//!
//! Multi-variable join queries over a scaled Figure 1 database,
//! evaluated at 1/2/4/8 workers with the same `EvalOptions` otherwise.
//! For every query and worker count the result relation is checked
//! bit-identical to the sequential run (the determinism contract of
//! `docs/PARALLELISM.md`), then the median wall-clock of several runs
//! is reported together with the speedup over one worker.
//!
//! Results go to `BENCH_parallel.json` at the repo root. The file
//! records `cores` (`std::thread::available_parallelism`): speedup is
//! bounded by physical parallelism, so on a single-core host every
//! configuration legitimately reports ≈1.0 and the numbers are only
//! meaningful relative to that field.

use bench::{compile, scaled_db};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;
use xsql::{eval_select, EvalOptions};

/// Repetitions per (query, workers) cell; the median is reported.
const REPS: usize = 5;

const COMPANIES: usize = 30;

const QUERIES: &[(&str, &str)] = &[
    (
        "employee_self_join",
        "SELECT X, Y FROM Employee X, Employee Y \
         WHERE X.Salary > Y.Salary AND X.Age < Y.Age",
    ),
    (
        "company_division_join",
        "SELECT X, W FROM Company X, Employee W \
         WHERE X.Divisions.Employees[W] and W.Salary > 30000",
    ),
    (
        "vehicle_owner_chain",
        "SELECT X, V FROM Employee X, Automobile V \
         WHERE X.OwnedVehicles[V] and V.Manufacturer.President.Age >= 30",
    ),
];

fn median_ms(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut db = scaled_db(COMPANIES);
    let workers_sweep = [1usize, 2, 4, 8];

    let mut json = String::from("{\n  \"experiment\": \"E11_parallel_eval\",\n");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"companies\": {COMPANIES},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    json.push_str("  \"queries\": [\n");

    for (qi, (name, src)) in QUERIES.iter().enumerate() {
        let q = compile(&mut db, src);
        let mut baseline_rel = None;
        let mut baseline_ms = 0.0;
        let mut rows = 0usize;
        let mut cells = Vec::new();
        for &workers in &workers_sweep {
            let opts = EvalOptions {
                parallelism: workers,
                ..EvalOptions::default()
            };
            let mut times = Vec::with_capacity(REPS);
            let mut rel = None;
            for _ in 0..REPS {
                let t = Instant::now();
                let r = eval_select(&db, &q, &opts).expect("eval");
                times.push(t.elapsed().as_secs_f64() * 1e3);
                rel = Some(r);
            }
            let rel = rel.unwrap();
            match &baseline_rel {
                None => {
                    rows = rel.len();
                    baseline_rel = Some(rel);
                }
                Some(seq) => assert_eq!(
                    &rel, seq,
                    "parallel({workers}) result differs from sequential on {name}"
                ),
            }
            let ms = median_ms(times);
            if workers == 1 {
                baseline_ms = ms;
            }
            let speedup = baseline_ms / ms;
            println!("{name} workers={workers}: median {ms:.2} ms (speedup {speedup:.2}x)");
            cells.push((workers, ms, speedup));
        }
        let _ = write!(
            json,
            "    {{\"name\": \"{name}\", \"rows\": {rows}, \"runs\": ["
        );
        for (i, (workers, ms, speedup)) in cells.iter().enumerate() {
            let _ = write!(
                json,
                "{{\"workers\": {workers}, \"median_ms\": {ms:.3}, \"speedup\": {speedup:.3}}}"
            );
            if i + 1 < cells.len() {
                json.push_str(", ");
            }
        }
        json.push_str("]}");
        json.push_str(if qi + 1 < QUERIES.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json");
    std::fs::write(&out, &json).expect("write BENCH_parallel.json");
    println!("{json}");
}
