//! E1 — evaluation strategies on multi-variable join queries.
//!
//! The paper specifies query semantics by full-domain substitution
//! (§3.4) and observes that real evaluation is nested loops (§6.2).
//! This experiment quantifies the gap: the naive specification engine
//! vs. the pipelined nested-loop engine vs. naive evaluation restricted
//! by Theorem 6.1 ranges, over growing Figure 1 instances.
//!
//! Expected shape: naive grows ~|domain|^k and is only feasible on the
//! smallest instance; Theorem 6.1 ranges pull the naive engine down by
//! orders of magnitude; the pipelined engine wins throughout.

use bench::{compile, scaled_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xsql::typing::{theorem61_ranges, Exemptions};
use xsql::{eval_select, eval_select_ranged, EvalOptions};

const QUERY: &str =
    "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_eval_strategies");
    group.sample_size(10);

    for companies in [1usize, 2, 4, 8] {
        let mut db = scaled_db(companies);
        let q = compile(&mut db, QUERY);
        let n = db.individual_count();

        let piped = EvalOptions::default();
        group.bench_with_input(BenchmarkId::new("pipelined", n), &n, |b, _| {
            b.iter(|| black_box(eval_select(&db, &q, &piped).unwrap()))
        });

        let ranges = theorem61_ranges(&db, &q, &Exemptions::none())
            .unwrap()
            .expect("strictly well-typed");
        let naive = EvalOptions::naive();
        group.bench_with_input(BenchmarkId::new("naive_thm61_ranges", n), &n, |b, _| {
            b.iter(|| black_box(eval_select_ranged(&db, &q, &naive, &ranges).unwrap()))
        });

        // The pure §3.4 engine is only feasible on the smallest size.
        if companies == 1 {
            group.bench_with_input(BenchmarkId::new("naive_full_domain", n), &n, |b, _| {
                b.iter(|| black_box(eval_select(&db, &q, &naive).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
