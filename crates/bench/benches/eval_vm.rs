//! E16 — the bytecode VM and the schema-epoch plan cache.
//!
//! Splits one statement's cost into its phases over a scaled Figure 1
//! database: parse + resolve (what a cache hit skips), bytecode
//! compilation (what `PREPARE` pays once), and execution (what every
//! run pays). Then measures the statement end-to-end through a
//! session, cold (plan-cache miss: parse, resolve, compile, insert)
//! and warm (cache hit: normalized-text lookup, straight to the
//! dispatch loop), and the same through `PREPARE` / `EXECUTE` with a
//! bound parameter.
//!
//! The claim under test: a warm cached plan pays zero parse, resolve
//! or type cost — `warm_us` tracks `execute_us`, not
//! `parse_resolve_us + compile_us + execute_us`.
//!
//! Results go to `BENCH_vm.json` at the repo root (hand-rendered JSON;
//! the offline criterion shim has no reporting). Wall-clock timing on
//! medians — phase costs are microsecond-scale, not nanosecond kernels.

use datagen::{figure1_scaled, Figure1Params};
use oodb::Database;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;
use xsql::vm::Program;
use xsql::{parse, resolve_stmt, EvalOptions, Outcome, Session};

const REPS: usize = 60;

fn scaled_db() -> Database {
    figure1_scaled(&Figure1Params::with_total_objects(200))
}

fn vm_opts() -> EvalOptions {
    EvalOptions {
        use_vm: true,
        use_planner: true,
        ..EvalOptions::default()
    }
}

fn median(mut v: Vec<u128>) -> u128 {
    v.sort_unstable();
    v[v.len() / 2]
}

/// Times one closure `REPS` times, reporting the median in µs.
fn time_us<F: FnMut()>(mut f: F) -> u128 {
    let lat: Vec<u128> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_micros()
        })
        .collect();
    median(lat)
}

fn run(s: &mut Session, src: &str) -> usize {
    match s.run(src).expect("statement") {
        Outcome::Relation(r) => r.len(),
        o => panic!("expected rows, got {o:?}"),
    }
}

struct Phases {
    parse_resolve_us: u128,
    compile_us: u128,
    baseline_us: u128,
    cold_us: u128,
    warm_us: u128,
    rows: usize,
}

/// Phase split for one statement text (no parameters).
fn phases(src: &'static str) -> Phases {
    // Phase timings on a standalone database.
    let mut db = scaled_db();
    let opts = vm_opts();
    let parse_resolve_us = time_us(|| {
        let stmt = parse(src).expect("parse");
        std::hint::black_box(resolve_stmt(&mut db, &stmt).expect("resolve"));
    });
    let stmt = parse(src).expect("parse");
    let resolved = resolve_stmt(&mut db, &stmt).expect("resolve");
    let compile_us = time_us(|| {
        std::hint::black_box(Program::compile(&db, &opts, resolved.clone(), 0));
    });

    // Engine baseline: planner engine, VM off — every run re-parses,
    // re-resolves and re-plans, exactly today's `XSQL_VM=0` path.
    let mut base = Session::with_options(
        scaled_db(),
        EvalOptions {
            use_vm: false,
            use_planner: true,
            ..EvalOptions::default()
        },
    );
    run(&mut base, src); // warm the OID interner
    let baseline_us = time_us(|| {
        run(&mut base, src);
    });

    // Cold: a fresh session per iteration (prepared outside the timed
    // region) — the first run of the text is always a plan-cache miss:
    // parse, resolve, compile, insert, execute.
    let cold_db = scaled_db();
    let mut cold_sessions: Vec<Session> = (0..REPS)
        .map(|_| Session::with_options(cold_db.clone(), vm_opts()))
        .collect();
    let mut cold_iter = cold_sessions.iter_mut();
    let cold_us = time_us(|| {
        run(cold_iter.next().expect("one session per rep"), src);
    });

    // Warm: the same text every time — after the first run, every
    // iteration is a cache hit.
    let mut warm_sess = Session::with_options(scaled_db(), vm_opts());
    let rows = run(&mut warm_sess, src);
    let warm_us = time_us(|| {
        run(&mut warm_sess, src);
    });

    Phases {
        parse_resolve_us,
        compile_us,
        baseline_us,
        cold_us,
        warm_us,
        rows,
    }
}

fn main() {
    let queries: &[(&str, &str)] = &[
        (
            "employee_join2",
            "SELECT X, Y FROM Employee X, Employee Y \
             WHERE X.Salary > Y.Salary AND X.Age < Y.Age",
        ),
        (
            "salary_probe",
            "SELECT X FROM Employee X WHERE X.Salary > 30000",
        ),
    ];

    let mut json = String::from("{\n  \"experiment\": \"E16_vm_plan_cache\",\n");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"db\": \"figure1 scaled to 200 objects\",");
    json.push_str("  \"queries\": [\n");
    for (i, (name, src)) in queries.iter().enumerate() {
        let p = phases(src);
        println!(
            "{name}: parse+resolve {} µs, compile {} µs, baseline {} µs, \
             cold {} µs, warm {} µs ({} rows)",
            p.parse_resolve_us, p.compile_us, p.baseline_us, p.cold_us, p.warm_us, p.rows
        );
        let _ = write!(
            json,
            "    {{\"name\": \"{name}\", \"rows\": {}, \
             \"parse_resolve_us\": {}, \"compile_us\": {}, \
             \"baseline_us\": {}, \"cold_us\": {}, \"warm_us\": {}}}",
            p.rows, p.parse_resolve_us, p.compile_us, p.baseline_us, p.cold_us, p.warm_us
        );
        json.push_str(if i + 1 < queries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    // PREPARE / EXECUTE with a bound parameter: compile once, bind and
    // run per EXECUTE. Compared with the warm transparent-cache run of
    // the equivalent constant text.
    let mut s = Session::with_options(scaled_db(), vm_opts());
    s.run("PREPARE rich AS SELECT X FROM Employee X WHERE X.Salary > ?1")
        .expect("prepare");
    run(&mut s, "EXECUTE rich (30000)");
    let execute_warm_us = time_us(|| {
        run(&mut s, "EXECUTE rich (30000)");
    });
    run(&mut s, "SELECT X FROM Employee X WHERE X.Salary > 30000");
    let plain_warm_us = time_us(|| {
        run(&mut s, "SELECT X FROM Employee X WHERE X.Salary > 30000");
    });
    println!("prepared EXECUTE warm {execute_warm_us} µs; plain text warm {plain_warm_us} µs");
    let _ = writeln!(
        json,
        "  \"prepared\": {{\"execute_warm_us\": {execute_warm_us}, \
         \"plain_warm_us\": {plain_warm_us}}}\n}}"
    );

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_vm.json");
    std::fs::write(&out, &json).expect("write BENCH_vm.json");
    println!("{json}");
}
