//! E5 — object creation and views (§4).
//!
//! Materialization throughput of the CompSalaries view (9) as the
//! database grows, and the grouped-`{W}` query (8) against its
//! navigational equivalent. Expected shape: linear in the number of
//! (company, employee) pairs; the OID-FUNCTION grouping does one pass.

use bench::scaled_db;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xsql::{Outcome, Session};

const VIEW: &str = "CREATE VIEW CompSalaries AS SUBCLASS OF Object \
     SIGNATURE CompName => String, DivName => String, Salary => Numeral \
     SELECT CompName = X.Name, DivName = Y.Name, Salary = W.Salary \
     FROM Company X OID FUNCTION OF X,W \
     WHERE X.Divisions[Y].Employees[W]";

const GROUPED: &str = "SELECT CompName = Y.Name, People = {W} FROM Company Y \
     OID FUNCTION OF Y WHERE Y.Divisions.Employees[W] or Y.Divisions.Manager[W]";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_views_creation");
    group.sample_size(10);

    for companies in [2usize, 4, 8] {
        let db = scaled_db(companies);
        let pairs = companies * 3 * 10;
        group.bench_with_input(
            BenchmarkId::new("view_materialization_pairs", pairs),
            &pairs,
            |b, _| {
                b.iter(|| {
                    let mut s = Session::new(db.clone());
                    let out = s.run(VIEW).unwrap();
                    black_box(match out {
                        Outcome::ViewCreated { count, .. } => count,
                        _ => unreachable!(),
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("grouped_creation_pairs", pairs),
            &pairs,
            |b, _| {
                b.iter(|| {
                    let mut s = Session::new(db.clone());
                    let out = s.run(GROUPED).unwrap();
                    black_box(match out {
                        Outcome::Created { oids } => oids.len(),
                        _ => unreachable!(),
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
