//! E9 — per-statement commit latency under the durable-storage layer.
//!
//! Three configurations over the same statement workload:
//!
//! * `wal_off`      — store attached, `WAL OFF` (undo log only);
//! * `wal_nosync`   — WAL appended per commit, fsync disabled
//!   (`Session::set_sync_on_commit(false)`);
//! * `wal_fsync`    — the durable default: append + fsync per commit.
//!
//! The spread between the three is the price of logging vs the price of
//! the fsync barrier. Results are written to `BENCH_storage.json` at
//! the repo root (hand-rendered JSON; the offline criterion shim has no
//! reporting). Uses wall-clock timing directly — commit latency is
//! I/O-bound, so the statistical machinery criterion adds for
//! nanosecond-scale kernels buys nothing here.

use oodb::Database;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;
use storage::{RealFs, Store};
use xsql::Session;

/// Statements per configuration: enough to amortize warm-up and give a
/// stable p95 without the fsync variant taking minutes on slow disks.
const STATEMENTS: usize = 300;

fn fresh_store_session(dir: &Path) -> Session {
    let _ = std::fs::remove_dir_all(dir);
    assert!(!Store::exists(&RealFs, dir));
    let mut s = Session::open_dir(
        Box::new(RealFs),
        dir,
        Database::new(),
        "empty",
        Default::default(),
    )
    .expect("create store");
    s.run("CREATE CLASS Item").unwrap();
    s.run("ALTER CLASS Item ADD SIGNATURE Num => Numeral")
        .unwrap();
    s
}

/// Runs the workload and returns per-statement latencies in nanoseconds.
fn run_workload(s: &mut Session) -> Vec<u128> {
    let mut lat = Vec::with_capacity(STATEMENTS);
    for i in 0..STATEMENTS {
        let stmt = if i % 2 == 0 {
            format!("CREATE OBJECT it{i} CLASS Item SET Num = {i}")
        } else {
            format!("UPDATE CLASS Object SET it{}.Num = {i}", i - 1)
        };
        let t = Instant::now();
        s.run(&stmt).unwrap();
        lat.push(t.elapsed().as_nanos());
    }
    lat
}

struct Summary {
    name: &'static str,
    mean_ns: u128,
    p50_ns: u128,
    p95_ns: u128,
}

fn summarize(name: &'static str, mut lat: Vec<u128>) -> Summary {
    lat.sort_unstable();
    let mean = lat.iter().sum::<u128>() / lat.len() as u128;
    Summary {
        name,
        mean_ns: mean,
        p50_ns: lat[lat.len() / 2],
        p95_ns: lat[lat.len() * 95 / 100],
    }
}

fn main() {
    let base = std::env::temp_dir().join(format!("xsql_bench_store_{}", std::process::id()));

    let mut results = Vec::new();

    let dir = base.join("off");
    let mut s = fresh_store_session(&dir);
    s.run("WAL OFF").unwrap();
    results.push(summarize("wal_off", run_workload(&mut s)));

    let dir = base.join("nosync");
    let mut s = fresh_store_session(&dir);
    s.set_sync_on_commit(false);
    results.push(summarize("wal_nosync", run_workload(&mut s)));

    let dir = base.join("fsync");
    let mut s = fresh_store_session(&dir);
    results.push(summarize("wal_fsync", run_workload(&mut s)));

    // Checkpoint cost: a full image after a bulk load, then an
    // incremental delta after a handful of updates. The byte ratio is
    // the point — delta cost tracks the change, not the database.
    const BULK_OBJECTS: usize = 500;
    const DELTA_STATEMENTS: usize = 10;
    let dir = base.join("ckpt");
    let mut s = fresh_store_session(&dir);
    for i in 0..BULK_OBJECTS {
        s.run(&format!("CREATE OBJECT ck{i} CLASS Item SET Num = {i}"))
            .unwrap();
    }
    s.run("CHECKPOINT").unwrap();
    let full_bytes = std::fs::metadata(dir.join("snapshot.bin"))
        .expect("full checkpoint image")
        .len();
    for i in 0..DELTA_STATEMENTS {
        s.run(&format!(
            "UPDATE CLASS Object SET ck{i}.Num = {}",
            i + 1_000
        ))
        .unwrap();
    }
    s.run("CHECKPOINT").unwrap();
    let delta_bytes: u64 = std::fs::read_dir(&dir)
        .expect("store dir")
        .filter_map(|e| {
            let e = e.ok()?;
            let name = e.file_name().into_string().ok()?;
            if name.starts_with("delta.") && name.ends_with(".bin") {
                Some(e.metadata().ok()?.len())
            } else {
                None
            }
        })
        .sum();
    assert!(delta_bytes > 0, "second checkpoint must be incremental");

    let _ = std::fs::remove_dir_all(&base);

    let mut json = String::from("{\n  \"experiment\": \"E9_commit_latency\",\n");
    let _ = writeln!(json, "  \"statements_per_config\": {STATEMENTS},");
    json.push_str("  \"unit\": \"ns_per_statement\",\n  \"configs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"mean\": {}, \"p50\": {}, \"p95\": {}}}",
            r.name, r.mean_ns, r.p50_ns, r.p95_ns
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"checkpoint_cost\": {\n");
    let _ = writeln!(json, "    \"bulk_objects\": {BULK_OBJECTS},");
    let _ = writeln!(json, "    \"delta_statements\": {DELTA_STATEMENTS},");
    let _ = writeln!(json, "    \"full_bytes\": {full_bytes},");
    let _ = writeln!(json, "    \"delta_bytes\": {delta_bytes},");
    let _ = writeln!(
        json,
        "    \"full_over_delta\": {}",
        full_bytes / delta_bytes.max(1)
    );
    json.push_str("  }\n}\n");

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_storage.json");
    std::fs::write(&out, &json).expect("write BENCH_storage.json");
    println!("{json}");
    for r in &results {
        println!(
            "{:<11} mean {:>9} ns   p50 {:>9} ns   p95 {:>9} ns",
            r.name, r.mean_ns, r.p50_ns, r.p95_ns
        );
    }
    println!(
        "checkpoint   full {full_bytes} B   delta {delta_bytes} B   ({}x)",
        full_bytes / delta_bytes.max(1)
    );
}
