//! E4 — schema exploration via attribute variables (§3.1 point 1).
//!
//! An attribute-variable query (`X."Y.City[c]`) against the equivalent
//! hand-expanded fixed-attribute query, and the cost of enumerating
//! candidate methods as the schema grows (extra decoy attributes).
//! Expected shape: the attribute-variable query pays a per-object
//! method-enumeration overhead that grows with the number of defined
//! attributes, while the fixed query is flat — the price of not knowing
//! the schema.

use bench::{compile, scaled_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xsql::{eval_select, EvalOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_schema_browsing");
    let opts = EvalOptions::default();

    let mut db = scaled_db(4);
    let qv = compile(&mut db, "SELECT Y FROM Person X WHERE X.\"Y.City['city3']");
    let qf = compile(
        &mut db,
        "SELECT X FROM Person X WHERE X.Residence.City['city3']",
    );
    group.bench_function("attribute_variable", |b| {
        b.iter(|| black_box(eval_select(&db, &qv, &opts).unwrap()))
    });
    group.bench_function("fixed_attribute", |b| {
        b.iter(|| black_box(eval_select(&db, &qf, &opts).unwrap()))
    });

    // Grow the number of attributes defined on each person.
    for extra in [0usize, 8, 32] {
        let mut db = scaled_db(2);
        {
            let person = db.oids().find_sym("Person").unwrap();
            let people = db.instances_of(person);
            for i in 0..extra {
                let m = db.oids_mut().sym(&format!("Decoy{i}"));
                let v = db.oids_mut().int(i as i64);
                for &p in &people {
                    db.set_scalar(p, m, &[], v).unwrap();
                }
            }
        }
        let q = compile(&mut db, "SELECT Y FROM Person X WHERE X.\"Y.City['city3']");
        group.bench_with_input(
            BenchmarkId::new("attribute_variable_decoys", extra),
            &extra,
            |b, _| b.iter(|| black_box(eval_select(&db, &q, &opts).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
