//! E10 — throughput and latency of the concurrent query service.
//!
//! Two workloads over a scaled Figure 1 database:
//!
//! * `readers_only` — N concurrent sessions (1/2/4/8) issuing the same
//!   selective join query for a fixed window; snapshot-isolated reads
//!   share one published epoch, so throughput should scale with the
//!   reader pool until `max_readers` gates it.
//! * `mixed` — 4 readers plus 1 writer committing single-statement
//!   updates through the group-commit path of a real durable store
//!   (WAL + fsync); reports read throughput alongside write commit
//!   rate and latency, i.e. what snapshot isolation costs readers when
//!   epochs are moving.
//!
//! E13 adds the client-over-TCP grid: the same two workloads issued
//! through `crates/net` (frame encode/decode + CRC + socket round
//! trip + row streaming on every statement), so the delta against the
//! in-process rows is the measured cost of the wire protocol.
//!
//! E16 adds the prepared grids: each reader PREPAREs the join once and
//! then loops `EXECUTE` (in-process via the session handle, over TCP
//! via the dedicated Prepare/ExecutePrepared frames), so the delta
//! against the plain-text rows is what re-parsing buys once the plan
//! cache is warm. The run asserts the readers=2 regression guard
//! (throughput at 2 readers must stay within 25% of 1 reader — the
//! PR 9 dip this PR fixes) and records the speedup of the warm
//! prepared read over the PR 9 plain-text baseline of 845/s.
//!
//! Results go to `BENCH_service.json` at the repo root (hand-rendered
//! JSON; the offline criterion shim has no reporting). Wall-clock
//! timing — the quantities of interest are thread-level throughputs,
//! not nanosecond kernels.

use datagen::{figure1_scaled, Figure1Params};
use net::{Backend, Client, NetError, Server, ServerConfig};
use oodb::Database;
use service::{QueryContext, Service, ServiceConfig};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::RealFs;
use xsql::Session;

/// Measurement window per configuration.
const WINDOW: Duration = Duration::from_millis(400);

const READ_QUERY: &str = "SELECT X, Y FROM Employee X, Employee Y \
                          WHERE X.Salary > Y.Salary AND X.Age < Y.Age";

fn scaled_db() -> Database {
    figure1_scaled(&Figure1Params::with_total_objects(200))
}

struct ReadStats {
    reads: u64,
    mean_us: u128,
    p95_us: u128,
}

/// Spawns `n` reader sessions hammering `READ_QUERY` until `stop`;
/// with `prepared`, each reader PREPAREs the query once and loops
/// `EXECUTE` instead of the full text. Returns pooled count and
/// latency percentiles (µs).
fn run_readers(svc: &Arc<Service>, n: usize, prepared: bool, stop: &Arc<AtomicBool>) -> ReadStats {
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let svc = Arc::clone(svc);
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let mut h = svc.connect().expect("connect reader");
                let ctx = QueryContext::default();
                let src = if prepared {
                    h.execute(&format!("PREPARE bench_read AS {READ_QUERY}"), &ctx)
                        .expect("prepare");
                    "EXECUTE bench_read"
                } else {
                    READ_QUERY
                };
                let mut lat = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    h.query(src, &ctx).expect("read");
                    lat.push(t.elapsed().as_micros());
                }
                lat
            })
        })
        .collect();
    let mut lat: Vec<u128> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("reader thread"))
        .collect();
    lat.sort_unstable();
    let reads = lat.len() as u64;
    ReadStats {
        reads,
        mean_us: lat.iter().sum::<u128>() / lat.len().max(1) as u128,
        p95_us: lat[lat.len() * 95 / 100],
    }
}

fn readers_only(n: usize, prepared: bool) -> ReadStats {
    let svc = Arc::new(Service::start(
        Session::new(scaled_db()),
        ServiceConfig::default(),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let timer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            std::thread::sleep(WINDOW);
            stop.store(true, Ordering::Relaxed);
        })
    };
    let stats = run_readers(&svc, n, prepared, &stop);
    timer.join().unwrap();
    stats
}

struct MixedStats {
    read: ReadStats,
    commits: u64,
    commit_mean_us: u128,
    commit_p95_us: u128,
}

/// 4 readers + 1 writer over a *durable* store: every commit unit is
/// WAL-appended and fsync'd by the service's group-commit loop.
fn mixed() -> MixedStats {
    let dir = std::env::temp_dir().join(format!("xsql_bench_service_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut session = Session::open_dir(
        Box::new(RealFs),
        &dir,
        scaled_db(),
        "figure1",
        Default::default(),
    )
    .expect("create store");
    session.run("CREATE CLASS Tick").unwrap();
    session
        .run("ALTER CLASS Tick ADD SIGNATURE N => Numeral")
        .unwrap();
    session
        .run("CREATE OBJECT t0 CLASS Tick SET N = 0")
        .unwrap();

    let svc = Arc::new(Service::start(session, ServiceConfig::default()));
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut h = svc.connect().expect("connect writer");
            let mut lat = Vec::new();
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                let t = Instant::now();
                h.execute(
                    &format!("UPDATE CLASS Tick SET t0.N = {i}"),
                    &QueryContext::default(),
                )
                .expect("commit");
                lat.push(t.elapsed().as_micros());
            }
            lat
        })
    };
    let timer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            std::thread::sleep(WINDOW);
            stop.store(true, Ordering::Relaxed);
        })
    };
    let read = run_readers(&svc, 4, false, &stop);
    let mut wlat = writer.join().expect("writer thread");
    timer.join().unwrap();
    wlat.sort_unstable();
    let commits = wlat.len() as u64;
    let stats = MixedStats {
        read,
        commits,
        commit_mean_us: wlat.iter().sum::<u128>() / wlat.len().max(1) as u128,
        commit_p95_us: wlat[wlat.len() * 95 / 100],
    };
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    stats
}

/// One TCP statement with retry on typed retryable sheds; returns the
/// end-to-end latency of the *successful* attempt.
fn tcp_statement(c: &mut Client, stmt: &str) -> u128 {
    loop {
        let t = Instant::now();
        match c.execute(stmt) {
            Ok(_) => return t.elapsed().as_micros(),
            Err(NetError::Server {
                code, retry_after, ..
            }) if code.retryable() => {
                std::thread::sleep(retry_after.max(Duration::from_micros(50)))
            }
            Err(e) => panic!("TCP statement `{stmt}` failed: {e}"),
        }
    }
}

/// One warm `ExecutePrepared` round trip with retry on typed
/// retryable sheds.
fn tcp_execute_prepared(c: &mut Client, name: &str) -> u128 {
    loop {
        let t = Instant::now();
        match c.execute_prepared(name, &[]) {
            Ok(_) => return t.elapsed().as_micros(),
            Err(NetError::Server {
                code, retry_after, ..
            }) if code.retryable() => {
                std::thread::sleep(retry_after.max(Duration::from_micros(50)))
            }
            Err(e) => panic!("TCP EXECUTE {name} failed: {e}"),
        }
    }
}

/// Spawns `n` TCP clients hammering `READ_QUERY` until `stop`; with
/// `prepared`, each client sends one Prepare frame and then loops
/// ExecutePrepared frames.
fn run_tcp_readers(addr: &str, n: usize, prepared: bool, stop: &Arc<AtomicBool>) -> ReadStats {
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let addr = addr.to_string();
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, "").expect("connect TCP reader");
                if prepared {
                    c.prepare("bench_read", READ_QUERY).expect("prepare");
                }
                let mut lat = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    lat.push(if prepared {
                        tcp_execute_prepared(&mut c, "bench_read")
                    } else {
                        tcp_statement(&mut c, READ_QUERY)
                    });
                }
                c.goodbye();
                lat
            })
        })
        .collect();
    let mut lat: Vec<u128> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("TCP reader thread"))
        .collect();
    lat.sort_unstable();
    let reads = lat.len() as u64;
    ReadStats {
        reads,
        mean_us: lat.iter().sum::<u128>() / lat.len().max(1) as u128,
        p95_us: lat[lat.len() * 95 / 100],
    }
}

fn tcp_readers_only(n: usize, prepared: bool) -> ReadStats {
    let svc = Arc::new(Service::start(
        Session::new(scaled_db()),
        ServiceConfig::default(),
    ));
    let server = Server::start(
        Backend::Primary(Arc::clone(&svc)),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("listen");
    let addr = server.local_addr().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let timer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            std::thread::sleep(WINDOW);
            stop.store(true, Ordering::Relaxed);
        })
    };
    let stats = run_tcp_readers(&addr, n, prepared, &stop);
    timer.join().unwrap();
    server.shutdown();
    drop(svc);
    stats
}

/// 4 TCP readers + 1 TCP writer over a *durable* store: every commit
/// crosses the wire, the group-commit path and an fsync.
fn tcp_mixed() -> MixedStats {
    let dir = std::env::temp_dir().join(format!("xsql_bench_net_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut session = Session::open_dir(
        Box::new(RealFs),
        &dir,
        scaled_db(),
        "figure1",
        Default::default(),
    )
    .expect("create store");
    session.run("CREATE CLASS Tick").unwrap();
    session
        .run("ALTER CLASS Tick ADD SIGNATURE N => Numeral")
        .unwrap();
    session
        .run("CREATE OBJECT t0 CLASS Tick SET N = 0")
        .unwrap();

    let svc = Arc::new(Service::start(session, ServiceConfig::default()));
    let server = Server::start(
        Backend::Primary(Arc::clone(&svc)),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("listen");
    let addr = server.local_addr().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr, "").expect("connect TCP writer");
            let mut lat = Vec::new();
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                lat.push(tcp_statement(
                    &mut c,
                    &format!("UPDATE CLASS Tick SET t0.N = {i}"),
                ));
            }
            c.goodbye();
            lat
        })
    };
    let timer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            std::thread::sleep(WINDOW);
            stop.store(true, Ordering::Relaxed);
        })
    };
    let read = run_tcp_readers(&addr, 4, false, &stop);
    let mut wlat = writer.join().expect("TCP writer thread");
    timer.join().unwrap();
    wlat.sort_unstable();
    let commits = wlat.len() as u64;
    let stats = MixedStats {
        read,
        commits,
        commit_mean_us: wlat.iter().sum::<u128>() / wlat.len().max(1) as u128,
        commit_p95_us: wlat[wlat.len() * 95 / 100],
    };
    server.shutdown();
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    stats
}

fn main() {
    let secs = WINDOW.as_secs_f64();
    let mut json = String::from("{\n  \"experiment\": \"E10_service_throughput\",\n");
    let _ = writeln!(json, "  \"window_ms\": {},", WINDOW.as_millis());
    let _ = writeln!(
        json,
        "  \"read_query\": \"2-var Employee join over 200-object figure1\","
    );
    let ns = [1usize, 2, 4, 8];
    let mut plain_qps: Vec<f64> = Vec::new();
    json.push_str("  \"readers_only\": [\n");
    for (i, &n) in ns.iter().enumerate() {
        let s = readers_only(n, false);
        let qps = s.reads as f64 / secs;
        plain_qps.push(qps);
        println!(
            "readers_only n={n}: {} reads ({qps:.0}/s), mean {} µs, p95 {} µs",
            s.reads, s.mean_us, s.p95_us
        );
        let _ = write!(
            json,
            "    {{\"readers\": {n}, \"reads\": {}, \"reads_per_sec\": {qps:.1}, \
             \"mean_us\": {}, \"p95_us\": {}}}",
            s.reads, s.mean_us, s.p95_us
        );
        json.push_str(if i + 1 < ns.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    // The readers=2 regression guard: PR 9 measured 845/665/870 r/s at
    // 1/2/4 readers — the dip came from an unconditional condvar wake
    // plus an epoch-cell lock round trip on every warm read. Both are
    // gone; hold the line.
    assert!(
        plain_qps[1] >= 0.75 * plain_qps[0],
        "readers=2 throughput regressed: {:.0}/s vs {:.0}/s at 1 reader",
        plain_qps[1],
        plain_qps[0]
    );

    // E16 — the same readers with one PREPARE up front and warm
    // EXECUTE in the loop (the compiled plan is reused; only bind +
    // dispatch remain per read).
    let mut prepared_qps: Vec<f64> = Vec::new();
    json.push_str("  \"readers_only_prepared\": [\n");
    for (i, &n) in ns.iter().enumerate() {
        let s = readers_only(n, true);
        let qps = s.reads as f64 / secs;
        prepared_qps.push(qps);
        println!(
            "readers_only_prepared n={n}: {} reads ({qps:.0}/s), mean {} µs, p95 {} µs",
            s.reads, s.mean_us, s.p95_us
        );
        let _ = write!(
            json,
            "    {{\"readers\": {n}, \"reads\": {}, \"reads_per_sec\": {qps:.1}, \
             \"mean_us\": {}, \"p95_us\": {}}}",
            s.reads, s.mean_us, s.p95_us
        );
        json.push_str(if i + 1 < ns.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let pr9_baseline = 845.0;
    let speedup = prepared_qps[0] / pr9_baseline;
    println!("prepared n=1 vs PR 9 plain-text baseline ({pr9_baseline}/s): {speedup:.2}x");
    let _ = writeln!(
        json,
        "  \"pr9_readers_only_1_per_sec\": {pr9_baseline},\n  \
         \"prepared_speedup_vs_pr9\": {speedup:.2},"
    );

    let m = mixed();
    let rqps = m.read.reads as f64 / secs;
    let cps = m.commits as f64 / secs;
    println!(
        "mixed 4r+1w: {} reads ({rqps:.0}/s) mean {} µs p95 {} µs; \
         {} commits ({cps:.0}/s) mean {} µs p95 {} µs",
        m.read.reads, m.read.mean_us, m.read.p95_us, m.commits, m.commit_mean_us, m.commit_p95_us
    );
    let _ = write!(
        json,
        "  \"mixed_4r_1w_durable\": {{\"reads\": {}, \"reads_per_sec\": {rqps:.1}, \
         \"read_mean_us\": {}, \"read_p95_us\": {}, \"commits\": {}, \
         \"commits_per_sec\": {cps:.1}, \"commit_mean_us\": {}, \"commit_p95_us\": {}}},\n",
        m.read.reads, m.read.mean_us, m.read.p95_us, m.commits, m.commit_mean_us, m.commit_p95_us
    );

    // E13 — the same grid over TCP through crates/net.
    json.push_str("  \"tcp_readers_only\": [\n");
    for (i, &n) in ns.iter().enumerate() {
        let s = tcp_readers_only(n, false);
        let qps = s.reads as f64 / secs;
        println!(
            "tcp_readers_only n={n}: {} reads ({qps:.0}/s), mean {} µs, p95 {} µs",
            s.reads, s.mean_us, s.p95_us
        );
        let _ = write!(
            json,
            "    {{\"clients\": {n}, \"reads\": {}, \"reads_per_sec\": {qps:.1}, \
             \"mean_us\": {}, \"p95_us\": {}}}",
            s.reads, s.mean_us, s.p95_us
        );
        json.push_str(if i + 1 < ns.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    // E16 over the wire: Prepare once, ExecutePrepared in the loop.
    json.push_str("  \"tcp_readers_only_prepared\": [\n");
    for (i, &n) in ns.iter().enumerate() {
        let s = tcp_readers_only(n, true);
        let qps = s.reads as f64 / secs;
        println!(
            "tcp_readers_only_prepared n={n}: {} reads ({qps:.0}/s), mean {} µs, p95 {} µs",
            s.reads, s.mean_us, s.p95_us
        );
        let _ = write!(
            json,
            "    {{\"clients\": {n}, \"reads\": {}, \"reads_per_sec\": {qps:.1}, \
             \"mean_us\": {}, \"p95_us\": {}}}",
            s.reads, s.mean_us, s.p95_us
        );
        json.push_str(if i + 1 < ns.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    let m = tcp_mixed();
    let rqps = m.read.reads as f64 / secs;
    let cps = m.commits as f64 / secs;
    println!(
        "tcp_mixed 4r+1w: {} reads ({rqps:.0}/s) mean {} µs p95 {} µs; \
         {} commits ({cps:.0}/s) mean {} µs p95 {} µs",
        m.read.reads, m.read.mean_us, m.read.p95_us, m.commits, m.commit_mean_us, m.commit_p95_us
    );
    let _ = write!(
        json,
        "  \"tcp_mixed_4r_1w_durable\": {{\"reads\": {}, \"reads_per_sec\": {rqps:.1}, \
         \"read_mean_us\": {}, \"read_p95_us\": {}, \"commits\": {}, \
         \"commits_per_sec\": {cps:.1}, \"commit_mean_us\": {}, \"commit_p95_us\": {}}}\n",
        m.read.reads, m.read.mean_us, m.read.p95_us, m.commits, m.commit_mean_us, m.commit_p95_us
    );
    json.push_str("}\n");

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json");
    std::fs::write(&out, &json).expect("write BENCH_service.json");
    println!("{json}");
}
