//! E6 — static typing analysis cost (§6.2).
//!
//! Liberal vs strict well-typing latency as the query grows (number of
//! path expressions — strict search iterates execution plans, i.e.
//! permutations). Expected shape: liberal is near-linear in occurrences;
//! strict grows factorially with the number of paths but stays in the
//! microsecond range for realistic queries (≤5 paths).

use bench::{compile, scaled_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xsql::typing::{extract, liberal, strict, Exemptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_typing_cost");
    let mut db = scaled_db(1);
    let queries = [
        "SELECT X FROM Vehicle X WHERE X.Manufacturer[M]",
        "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] and M.President[P]",
        "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] and M.President[P] and P.Residence[A]",
        "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] and M.President[P] and P.Residence[A] \
         and A.City[CY]",
        "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] and M.President[P] and P.Residence[A] \
         and A.City[CY] and P.OwnedVehicles[V2]",
    ];
    for (i, src) in queries.iter().enumerate() {
        let q = compile(&mut db, src);
        let shape = extract(&db, &q).unwrap();
        group.bench_with_input(BenchmarkId::new("liberal_paths", i + 1), &i, |b, _| {
            b.iter(|| black_box(liberal(&db, &shape).is_some()))
        });
        group.bench_with_input(BenchmarkId::new("strict_paths", i + 1), &i, |b, _| {
            b.iter(|| black_box(strict(&db, &shape, &Exemptions::none()).is_some()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
