//! E7 — quantified comparators (§3.2).
//!
//! `some`- vs `all`-quantified comparisons and set comparators as the
//! compared sets grow (family size sweep). Expected shape: all variants
//! scale with |L|·|R| per candidate; `some` short-circuits on success,
//! `all` on failure, so their relative cost depends on selectivity.

use bench::compile;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{figure1_scaled, Figure1Params};
use std::hint::black_box;
use xsql::{eval_select, EvalOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_comparators");
    let opts = EvalOptions::default();
    let queries = [
        (
            "some_gt",
            "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 30",
        ),
        (
            "all_gt",
            "SELECT X FROM Employee X WHERE X.FamMembers.Age all> 30",
        ),
        (
            "all_eq_all",
            "SELECT X FROM Employee X \
          WHERE X.Residence.City =all X.FamMembers.Residence.City",
        ),
        (
            "containsEq",
            "SELECT X FROM Employee X \
          WHERE X.OwnedVehicles.Color containsEq {'red'}",
        ),
        (
            "count_agg",
            "SELECT X FROM Employee X WHERE count(X.FamMembers) >= 2",
        ),
    ];
    for fam in [2usize, 5, 9] {
        let mut db = figure1_scaled(&Figure1Params {
            companies: 3,
            max_fam_members: fam,
            ..Figure1Params::default()
        });
        for (name, src) in queries {
            let q = compile(&mut db, src);
            group.bench_with_input(BenchmarkId::new(name, fam), &fam, |b, _| {
                b.iter(|| black_box(eval_select(&db, &q, &opts).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
