//! Replays every numbered example of the paper against the Figure 1
//! database, printing each statement and its result — the per-artifact
//! "rows" recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p bench --bin paper_examples
//! ```

use datagen::{figure1_db, nobel_db};
use relalg::render_table;
use xsql::{Outcome, Session};

fn show(s: &mut Session, label: &str, stmt: &str) {
    println!("== {label} ==");
    for line in stmt.lines() {
        println!("    {}", line.trim());
    }
    match s.run(stmt) {
        Ok(Outcome::Relation(rel)) => println!("{}", render_table(&rel, s.db().oids())),
        Ok(Outcome::Created { oids }) => {
            println!("created {} object(s):", oids.len());
            for o in &oids {
                println!("    {}", s.db().render(*o));
            }
            println!();
        }
        Ok(Outcome::ViewCreated { class, count }) => {
            println!(
                "view {} created, {count} object(s) materialized\n",
                s.db().render(class)
            );
        }
        Ok(Outcome::MethodDefined { class, method }) => {
            println!(
                "method {} defined on class {}\n",
                s.db().render(method),
                s.db().render(class)
            );
        }
        Ok(Outcome::Updated { entries }) => println!("updated {entries} entr(ies)\n"),
        Ok(Outcome::ClassCreated { class }) => {
            println!("class {} created\n", s.db().render(class));
        }
        Ok(Outcome::ObjectCreated { oid }) => {
            println!("object {} created\n", s.db().render(oid));
        }
        Ok(Outcome::Prepared { name }) => println!("prepared `{name}`\n"),
        Ok(Outcome::SignatureAdded { class, method }) => {
            println!(
                "signature {} added to {}\n",
                s.db().render(method),
                s.db().render(class)
            );
        }
        Ok(Outcome::Explained { report }) | Ok(Outcome::Stats { report }) => {
            println!("{report}")
        }
        Ok(
            Outcome::TransactionStarted
            | Outcome::TransactionCommitted
            | Outcome::TransactionRolledBack
            | Outcome::WalEnabled
            | Outcome::WalDisabled
            | Outcome::Checkpointed,
        ) => println!("control statement acknowledged\n"),
        Err(e) => println!("error (expected for ill-defined/ill-typed cases): {e}\n"),
    }
}

fn main() {
    println!("################################################################");
    println!("# Kifer/Kim/Sagiv, SIGMOD 1992 — every numbered example, replayed");
    println!("################################################################\n");

    println!("---- The Nobel-Prize query of the introduction (Nobel database) ----\n");
    let mut s = Session::new(nobel_db());
    show(&mut s, "§1 Nobel", "SELECT X WHERE X.WonNobelPrize");

    println!("---- Figure 1 database ----\n");
    let mut s = Session::new(figure1_db());

    show(
        &mut s,
        "§1 engine types (schema query)",
        "SELECT #X WHERE #X subclassOf Engines",
    );
    show(
        &mut s,
        "(1) as a filter: people in New York",
        "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
    );
    show(
        &mut s,
        "§3.1 uniSQL.President.FamMembers.Name",
        "SELECT W FROM Person X WHERE uniSQL.President.FamMembers.Name[W]",
    );
    show(
        &mut s,
        "§3.1 engines of employee-owned automobiles",
        "SELECT Z FROM Employee X, Automobile Y WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]",
    );
    show(
        &mut s,
        "(3) attribute variable",
        "SELECT Y FROM Person X WHERE X.\"Y.City['newyork']",
    );
    show(
        &mut s,
        "(4) subclassOf query",
        "SELECT #X WHERE TurboEngine subclassOf #X",
    );
    show(
        &mut s,
        "§3.2 some> comparison",
        "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
    );
    show(
        &mut s,
        "§3.2 =all comparison",
        "SELECT X FROM Employee X WHERE X.Residence.City =all X.FamMembers.Residence.City",
    );
    show(
        &mut s,
        "§3.2 all<all comparison",
        "SELECT X, Y FROM Employee X, Employee Y WHERE Y.FamMembers.Age all<all X.FamMembers.Age",
    );
    show(
        &mut s,
        "§3.2 blue-and-red manufacturer query",
        "SELECT X FROM Automobile Y WHERE Y.Manufacturer[X] \
         and X.President.OwnedVehicles.Color containsEq {'blue', 'red'} \
         and X.President.Age < 60",
    );
    show(
        &mut s,
        "§3.2 aggregate query (count / =all / salary)",
        "SELECT X FROM Employee X WHERE count(X.FamMembers) > 1 \
         and X.Residence.City =all X.FamMembers.Residence.City and X.Salary < 95000",
    );
    show(
        &mut s,
        "(5) relation-producing query",
        "SELECT X.Name, W.Salary FROM Company X WHERE X.Divisions.Employees[W]",
    );
    show(
        &mut s,
        "(6) explicit join (name = company name)",
        "SELECT X, Y FROM Company X WHERE X.Name =some X.Divisions.Employees[Y].Name",
    );
    show(
        &mut s,
        "§4.1 OID FUNCTION OF X,W",
        "SELECT EmpSalary = W.Salary FROM Company X OID FUNCTION OF X,W \
         WHERE X.Divisions.Employees[W]",
    );
    show(
        &mut s,
        "§4.1 the ill-defined query (run-time error expected)",
        "SELECT CompName = X.Name, EmpSalary = W.Salary FROM Company X \
         OID FUNCTION OF X WHERE X.Divisions.Employees[W]",
    );
    show(
        &mut s,
        "(7) set attribute from a path",
        "SELECT CompName = Y.Name, Employees = Y.Divisions.Employees \
         FROM Company Y OID FUNCTION OF Y",
    );
    show(
        &mut s,
        "(8) grouped beneficiaries",
        "SELECT CompName = Y.Name, Beneficiaries = {W} FROM Company Y OID FUNCTION OF Y \
         WHERE Y.Retirees[W] or Y.Divisions.Employees.Dependents[W]",
    );
    show(
        &mut s,
        "(9) CREATE VIEW CompSalaries",
        "CREATE VIEW CompSalaries AS SUBCLASS OF Object \
         SIGNATURE CompName => String, DivName => String, Salary => Numeral \
         SELECT CompName = X.Name, DivName = Y.Name, Salary = W.Salary \
         FROM Company X OID FUNCTION OF X,W \
         WHERE X.Divisions[Y].Employees[W]",
    );
    show(
        &mut s,
        "(10) views and non-views in one query",
        "SELECT X.Manufacturer.Name FROM Automobile X, Employee W \
         WHERE CompSalaries(X.Manufacturer, W).Salary > 35000",
    );
    show(
        &mut s,
        "(12) ALTER CLASS: MngrSalary",
        "ALTER CLASS Company ADD SIGNATURE MngrSalary : String => Numeral \
         SELECT (MngrSalary @ Y.Name) = W FROM Company X OID X \
         WHERE X.Divisions[Y].Manager.Salary[W]",
    );
    show(
        &mut s,
        "(13) nested subquery over a defined method",
        "SELECT X FROM Vehicle X WHERE 25000 <all (SELECT W FROM Division Y \
         WHERE X.Manufacturer.(MngrSalary @ Y.Name)[W])",
    );
    show(
        &mut s,
        "§5 method argument as selector",
        "SELECT W FROM Company X WHERE X.(MngrSalary @ 'Engineering')[W]",
    );
    show(
        &mut s,
        "§5 RaiseMngrSalary (update method definition)",
        "ALTER CLASS Company ADD SIGNATURE RaiseMngrSalary : Numeral => Object \
         SELECT (RaiseMngrSalary @ W) = nil FROM Company X, Numeral W OID X \
         WHERE W < 20 and (UPDATE CLASS Company \
         SET X.Divisions[Y].Manager.Salary = (1 + W/100) * X.(MngrSalary @ Y.Name))",
    );
    // Invoke it and show the effect.
    println!("== invoking RaiseMngrSalary(10) on uniSQL ==");
    let uni = s.db().oids().find_sym("uniSQL").unwrap();
    let pct = s.db_mut().oids_mut().int(10);
    s.invoke(uni, "RaiseMngrSalary", &[pct]).unwrap();
    let r = s
        .query("SELECT X, W FROM Employee X WHERE X.Salary[W]")
        .unwrap();
    println!("{}", render_table(&r, s.db().oids()));

    println!("---- (17)-(20): typing examples are mechanized in tests/typing.rs ----");
    println!("---- Theorems 3.1 / 6.1: tests/flogic_equiv.rs, tests/theorem61.rs ----");
}
