//! # bench — shared helpers for the experiment harness (E1–E7).
//!
//! Each Criterion bench in `benches/` regenerates one experiment of
//! EXPERIMENTS.md; `src/bin/paper_examples.rs` replays every numbered
//! query of the paper against the Figure 1 database.

use datagen::{figure1_scaled, Figure1Params};
use oodb::Database;
use xsql::ast::{SelectQuery, Stmt};
use xsql::{parse, resolve_stmt};

/// Parses and resolves a SELECT query against a database (compile once,
/// evaluate many times in the timing loop).
pub fn compile(db: &mut Database, src: &str) -> SelectQuery {
    let stmt = parse(src).unwrap_or_else(|e| panic!("parse {src}: {e}"));
    match resolve_stmt(db, &stmt).unwrap_or_else(|e| panic!("resolve {src}: {e}")) {
        Stmt::Select(q) => q,
        s => panic!("expected SELECT, got {s:?}"),
    }
}

/// A scaled Figure 1 database with roughly `companies * 45` individuals
/// plus families.
pub fn scaled_db(companies: usize) -> Database {
    figure1_scaled(&Figure1Params {
        companies,
        ..Figure1Params::default()
    })
}
