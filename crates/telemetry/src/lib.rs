//! Zero-dependency observability primitives for the xsql stack.
//!
//! The crate provides a thread-safe [`Registry`] of named metrics —
//! monotonic [`Counter`]s, signed [`Gauge`]s and fixed-bucket latency
//! [`Histogram`]s with p50/p95/p99 estimation — plus lightweight span
//! tracing into a bounded ring buffer. Everything is built on
//! `std::sync` atomics; there are no external dependencies, no
//! background threads and no global state: each [`Registry`] instance
//! is independent, so tests and concurrently running services never
//! contaminate each other's numbers.
//!
//! Metric handles are `Arc`s handed out once at registration time and
//! cached by the instrumented component; recording is a single atomic
//! operation with no lock acquisition. The registry lock is taken only
//! when registering a new metric or rendering an exposition.
//!
//! Renderings come in two flavours, selected by [`TelemetryConfig`]
//! (usually via the `XSQL_TELEMETRY_FORMAT` environment variable): a
//! Prometheus-style text exposition of `name{label="v"} value` lines,
//! and a single JSON object. See `docs/OBSERVABILITY.md` for the
//! metric name catalogue.

#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default bucket upper bounds, in microseconds, for latency
/// histograms: a coarse exponential ladder from 1 µs to 10 s.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
];

/// Capacity of the span ring buffer: older spans are dropped once the
/// buffer is full, so tracing never grows without bound.
pub const SPAN_RING_CAPACITY: usize = 256;

/// Output format for metric expositions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmitFormat {
    /// Prometheus-style `name{label="v"} value` lines.
    #[default]
    Text,
    /// A single JSON object with `counters`/`gauges`/`histograms`/`spans`.
    Json,
}

/// Runtime telemetry configuration, usually read from the environment.
#[derive(Debug, Clone, Copy, Default)]
pub struct TelemetryConfig {
    /// Master switch for span tracing and per-statement spans
    /// (`XSQL_TELEMETRY=1`). Metric counters are always live — they
    /// are cheap and several invariants are asserted against them —
    /// but spans are only recorded when this is set.
    pub enabled: bool,
    /// Exposition format (`XSQL_TELEMETRY_FORMAT=text|json`).
    pub format: EmitFormat,
    /// When set, renderings that include wall-clock timings (notably
    /// `EXPLAIN ANALYZE` profiles) suppress them so golden tests are
    /// byte-stable (`XSQL_TELEMETRY_DETERMINISTIC=1`).
    pub deterministic: bool,
}

impl TelemetryConfig {
    /// Reads the configuration from `XSQL_TELEMETRY`,
    /// `XSQL_TELEMETRY_FORMAT` and `XSQL_TELEMETRY_DETERMINISTIC`.
    pub fn from_env() -> Self {
        let truthy = |k: &str| {
            std::env::var(k)
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false)
        };
        let format = match std::env::var("XSQL_TELEMETRY_FORMAT").as_deref() {
            Ok("json") | Ok("JSON") => EmitFormat::Json,
            _ => EmitFormat::Text,
        };
        TelemetryConfig {
            enabled: truthy("XSQL_TELEMETRY"),
            format,
            deterministic: truthy("XSQL_TELEMETRY_DETERMINISTIC"),
        }
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge for point-in-time values (queue depths, epochs).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram. Bucket bounds are upper-inclusive and the
/// final implicit bucket catches everything above the last bound.
/// Quantiles are estimated as the upper bound of the bucket containing
/// the requested rank — exact enough for latency ladders and entirely
/// lock-free to record.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records the elapsed time since `start`, in microseconds.
    pub fn observe_since(&self, start: Instant) {
        self.observe(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimated quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the observation at that rank (the last finite
    /// bound for overflow observations). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return self.bounds.get(i).copied().unwrap_or_else(|| {
                    // Overflow bucket: report the last finite bound.
                    self.bounds.last().copied().unwrap_or(0)
                });
            }
        }
        self.bounds.last().copied().unwrap_or(0)
    }

    /// Cumulative per-bucket counts paired with their upper bounds;
    /// the final entry uses `u64::MAX` as its bound.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(u64::MAX);
            out.push((bound, cum));
        }
        out
    }
}

/// One completed span: a named region of code and how long it took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static name of the region (e.g. `"session.execute"`).
    pub name: &'static str,
    /// Wall-clock duration in microseconds.
    pub micros: u64,
}

/// RAII guard returned by [`Registry::span`]; records the span into
/// the registry's ring buffer when dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    registry: &'a Registry,
    name: &'static str,
    start: Instant,
    live: bool,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.live {
            let micros = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.registry.push_span(SpanRecord {
                name: self.name,
                micros,
            });
        }
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Fully qualified metric identity: name plus rendered label pairs.
type Key = (String, Vec<(String, String)>);

/// A thread-safe registry of named metrics plus a span ring buffer.
///
/// Handles are registered once (taking the registry lock) and cached
/// by the caller; after that, recording never locks. Rendering walks
/// the map under the lock but only reads atomics.
#[derive(Debug)]
pub struct Registry {
    metrics: Mutex<BTreeMap<Key, Metric>>,
    spans: Mutex<VecDeque<SpanRecord>>,
    config: TelemetryConfig,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_config(TelemetryConfig::default())
    }
}

impl Registry {
    /// Creates a registry with an explicit configuration.
    pub fn with_config(config: TelemetryConfig) -> Self {
        Registry {
            metrics: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(VecDeque::with_capacity(SPAN_RING_CAPACITY)),
            config,
        }
    }

    /// Creates a registry configured from the environment.
    pub fn from_env() -> Self {
        Registry::with_config(TelemetryConfig::from_env())
    }

    /// The configuration this registry was built with.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> Key {
        (
            name.to_string(),
            labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        )
    }

    /// Returns (registering on first use) the counter `name{labels}`.
    ///
    /// # Panics
    /// Panics if the name is already registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(Self::key(name, labels))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Returns (registering on first use) the gauge `name{labels}`.
    ///
    /// # Panics
    /// Panics if the name is already registered as a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(Self::key(name, labels))
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Returns (registering on first use) the histogram `name{labels}`
    /// with the given bucket bounds (ignored if already registered).
    ///
    /// # Panics
    /// Panics if the name is already registered as a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(Self::key(name, labels))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Shorthand for a latency histogram with [`LATENCY_BUCKETS_US`].
    pub fn latency(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram(name, labels, LATENCY_BUCKETS_US)
    }

    /// Sum of a counter across every label combination (0 if absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        let m = self.metrics.lock().unwrap();
        m.iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, metric)| match metric {
                Metric::Counter(c) => c.get(),
                _ => 0,
            })
            .sum()
    }

    /// Value of a gauge with no labels (0 if absent).
    pub fn gauge_value(&self, name: &str) -> i64 {
        let m = self.metrics.lock().unwrap();
        match m.get(&Self::key(name, &[])) {
            Some(Metric::Gauge(g)) => g.get(),
            _ => 0,
        }
    }

    /// Starts a span; the returned guard records it on drop. When the
    /// registry is not [`TelemetryConfig::enabled`], the guard is
    /// inert and nothing is recorded.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            registry: self,
            name,
            start: Instant::now(),
            live: self.config.enabled,
        }
    }

    fn push_span(&self, rec: SpanRecord) {
        let mut ring = self.spans.lock().unwrap();
        if ring.len() == SPAN_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// The most recent spans, oldest first (bounded by the ring size).
    pub fn recent_spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().iter().cloned().collect()
    }

    /// Renders the exposition in the configured format.
    pub fn render(&self) -> String {
        match self.config.format {
            EmitFormat::Text => self.render_text(),
            EmitFormat::Json => self.render_json(),
        }
    }

    /// Prometheus-style text exposition: one `name{label="v"} value`
    /// line per sample, sorted by name then labels. Histograms expand
    /// to `_count`, `_sum`, `_p50`/`_p95`/`_p99` and cumulative
    /// `_bucket{le="..."}` samples.
    pub fn render_text(&self) -> String {
        let m = self.metrics.lock().unwrap();
        let mut out = String::new();
        for ((name, labels), metric) in m.iter() {
            let base = render_labels(labels);
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{name}{base} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{name}{base} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    for (bound, cum) in h.cumulative_buckets() {
                        let le = if bound == u64::MAX {
                            "+Inf".to_string()
                        } else {
                            bound.to_string()
                        };
                        let with_le = render_labels_extra(labels, "le", &le);
                        out.push_str(&format!("{name}_bucket{with_le} {cum}\n"));
                    }
                    out.push_str(&format!("{name}_count{base} {}\n", h.count()));
                    out.push_str(&format!("{name}_sum{base} {}\n", h.sum()));
                    for (q, tag) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
                        out.push_str(&format!("{name}_{tag}{base} {}\n", h.quantile(q)));
                    }
                }
            }
        }
        out
    }

    /// JSON exposition: a single object with `counters`, `gauges`,
    /// `histograms` (count/sum/p50/p95/p99) and `spans`.
    pub fn render_json(&self) -> String {
        let m = self.metrics.lock().unwrap();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for ((name, labels), metric) in m.iter() {
            let id = json_escape(&format!("{name}{}", render_labels(labels)));
            match metric {
                Metric::Counter(c) => counters.push(format!("\"{id}\": {}", c.get())),
                Metric::Gauge(g) => gauges.push(format!("\"{id}\": {}", g.get())),
                Metric::Histogram(h) => hists.push(format!(
                    "\"{id}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                    h.count(),
                    h.sum(),
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99)
                )),
            }
        }
        let spans: Vec<String> = self
            .recent_spans()
            .iter()
            .map(|s| format!("{{\"name\": \"{}\", \"micros\": {}}}", s.name, s.micros))
            .collect();
        format!(
            "{{\"counters\": {{{}}}, \"gauges\": {{{}}}, \"histograms\": {{{}}}, \"spans\": [{}]}}\n",
            counters.join(", "),
            gauges.join(", "),
            hists.join(", "),
            spans.join(", ")
        )
    }
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", inner.join(","))
}

fn render_labels_extra(labels: &[(String, String)], k: &str, v: &str) -> String {
    let mut inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    inner.push(format!("{k}=\"{v}\""));
    format!("{{{}}}", inner.join(","))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::default();
        let c = r.counter("requests_total", &[("kind", "read")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same (name, labels) returns the same underlying counter.
        r.counter("requests_total", &[("kind", "read")]).inc();
        assert_eq!(c.get(), 6);
        // Different labels are a distinct sample.
        r.counter("requests_total", &[("kind", "write")]).add(10);
        assert_eq!(r.counter_total("requests_total"), 16);

        let g = r.gauge("depth", &[]);
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        assert_eq!(r.gauge_value("depth"), 4);
        assert_eq!(r.gauge_value("missing"), 0);
    }

    #[test]
    fn histogram_quantiles_hit_bucket_bounds() {
        let r = Registry::default();
        let h = r.histogram("lat", &[], &[10, 100, 1000]);
        for v in [1, 5, 9] {
            h.observe(v); // all land in the <=10 bucket
        }
        h.observe(50); // <=100
        h.observe(5000); // overflow
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1 + 5 + 9 + 50 + 5000);
        assert_eq!(h.quantile(0.5), 10);
        assert_eq!(h.quantile(0.8), 100);
        // Overflow observations report the last finite bound.
        assert_eq!(h.quantile(1.0), 1000);
        // Empty histogram.
        let e = r.histogram("empty", &[], &[10]);
        assert_eq!(e.quantile(0.99), 0);
    }

    #[test]
    fn text_exposition_is_line_parseable() {
        let r = Registry::default();
        r.counter("a_total", &[("x", "1")]).add(3);
        r.gauge("g", &[]).set(-2);
        r.histogram("h_micros", &[], &[10, 100]).observe(7);
        let text = r.render_text();
        for line in text.lines() {
            // Every line must be `name{labels} value` or `name value`.
            let (name, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(!name.is_empty());
            assert!(
                value.parse::<i64>().is_ok() || value.parse::<f64>().is_ok(),
                "unparseable value in {line:?}"
            );
        }
        assert!(text.contains("a_total{x=\"1\"} 3"));
        assert!(text.contains("g -2"));
        assert!(text.contains("h_micros_count 1"));
        assert!(text.contains("h_micros_p50 10"));
        assert!(text.contains("h_micros_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn json_exposition_has_all_sections() {
        let r = Registry::with_config(TelemetryConfig {
            enabled: true,
            format: EmitFormat::Json,
            deterministic: false,
        });
        r.counter("c", &[]).inc();
        r.histogram("h", &[], &[10]).observe(3);
        drop(r.span("region"));
        let json = r.render();
        assert!(json.contains("\"counters\": {\"c\": 1}"), "{json}");
        assert!(json.contains("\"p99\": 10"), "{json}");
        assert!(json.contains("\"name\": \"region\""), "{json}");
    }

    #[test]
    fn span_ring_is_bounded_and_gated() {
        let on = Registry::with_config(TelemetryConfig {
            enabled: true,
            ..TelemetryConfig::default()
        });
        for _ in 0..(SPAN_RING_CAPACITY + 10) {
            drop(on.span("s"));
        }
        assert_eq!(on.recent_spans().len(), SPAN_RING_CAPACITY);

        let off = Registry::default();
        drop(off.span("s"));
        assert!(off.recent_spans().is_empty());
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        let r = Registry::default();
        r.counter("m", &[]);
        r.gauge("m", &[]);
    }
}
