//! # datagen — deterministic workload generators
//!
//! Seeded, scalable instances of the paper's databases:
//!
//! * [`figure1`] — the Figure 1 Vehicle/Person/Company schema, both as
//!   the small hand-picked instance the paper's examples assume and at
//!   parameterized scale for the benchmarks;
//! * [`nobel`] — the Nobel-Prize database of §1 (winners spread across
//!   classes);
//! * [`university`] — the department/workstudy database of §2/§6.1
//!   (k-ary methods, multiple inheritance).

#![warn(missing_docs)]

pub mod figure1;
pub mod nobel;
pub mod university;

pub use figure1::{figure1_db, figure1_scaled, Figure1Params};
pub use nobel::nobel_db;
pub use university::university_db;
