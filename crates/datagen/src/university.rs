//! The university database of §2/§6.1: the unary `workstudy` method
//! (`workstudy : semester ==> {student, employee}`), the polymorphic
//! `earns` method (`employee, project => pay` and `student, course =>
//! grade`) and the `Workstudy` class under multiple inheritance.

use oodb::{Database, DbBuilder, Val};

/// Builds the university database.
pub fn university_db() -> Database {
    let mut b = DbBuilder::new();
    b.class("Person");
    b.subclass("Student", &["Person"]);
    b.subclass("Employee", &["Person"]);
    b.subclass("Workstudy", &["Student", "Employee"]);
    b.class("Department");
    b.class("Semester");
    b.class("Project");
    b.class("Course");
    b.class("Pay");
    b.class("Grade");

    b.attr("Person", "Name", "String");
    // workstudy : semester ==> student and ==> employee (§2 "Types"):
    // two signatures for the same argument types.
    b.method_sig("Department", "workstudy", &["Semester"], "Student", true);
    b.method_sig("Department", "workstudy", &["Semester"], "Employee", true);
    // Polymorphic earns (§6.1).
    b.method_sig("Employee", "earns", &["Project"], "Pay", false);
    b.method_sig("Student", "earns", &["Course"], "Grade", false);

    let fall = b.obj("fall92", "Semester");
    let spring = b.obj("spring92", "Semester");
    let cs = b.obj("csDept", "Department");
    let math = b.obj("mathDept", "Department");

    let w1 = b.obj("ws_jane", "Workstudy");
    b.set_str(w1, "Name", "Jane");
    let w2 = b.obj("ws_omar", "Workstudy");
    b.set_str(w2, "Name", "Omar");
    let s1 = b.obj("stu_li", "Student");
    b.set_str(s1, "Name", "Li");

    b.set_method_value(cs, "workstudy", &[fall], Val::set([w1, w2]));
    b.set_method_value(cs, "workstudy", &[spring], Val::set([w1]));
    b.set_method_value(math, "workstudy", &[fall], Val::set([w2]));

    let proj = b.obj("projDB", "Project");
    let course = b.obj("course101", "Course");
    let pay = b.obj("pay1200", "Pay");
    let grade = b.obj("gradeA", "Grade");
    b.set_method_value(w1, "earns", &[proj], Val::Scalar(pay));
    b.set_method_value(w1, "earns", &[course], Val::Scalar(grade));
    b.set_method_value(s1, "earns", &[course], Val::Scalar(grade));

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workstudy_membership_and_polymorphic_earns() {
        let db = university_db();
        let jane = db.oids().find_sym("ws_jane").unwrap();
        let student = db.oids().find_sym("Student").unwrap();
        let employee = db.oids().find_sym("Employee").unwrap();
        assert!(db.is_instance_of(jane, student));
        assert!(db.is_instance_of(jane, employee));

        let earns = db.oids().find_sym("earns").unwrap();
        let proj = db.oids().find_sym("projDB").unwrap();
        let course = db.oids().find_sym("course101").unwrap();
        // earns is applicable to Jane on both argument types …
        assert!(db.is_applicable(jane, earns, &[proj]));
        assert!(db.is_applicable(jane, earns, &[course]));
        // … but a plain student cannot earn pay from a project.
        let li = db.oids().find_sym("stu_li").unwrap();
        assert!(!db.is_applicable(li, earns, &[proj]));
    }

    #[test]
    fn kary_method_values() {
        let db = university_db();
        let ws = db.oids().find_sym("workstudy").unwrap();
        let cs = db.oids().find_sym("csDept").unwrap();
        let fall = db.oids().find_sym("fall92").unwrap();
        let v = db.value(cs, ws, &[fall]).unwrap().unwrap();
        assert_eq!(v.len(), 2);
    }
}
