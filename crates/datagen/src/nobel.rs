//! The Nobel-Prize database of §1: winners are "not necessarily members
//! of one class … persons or organizations of various types" (UNICEF won
//! the Peace Prize). `WonNobelPrize` is declared on several unrelated
//! classes, which is what makes `SELECT X WHERE X.WonNobelPrize`
//! liberally but not strictly well-typed.

use oodb::{Database, DbBuilder};

/// Builds the Nobel database.
pub fn nobel_db() -> Database {
    let mut b = DbBuilder::new();
    b.class("Person");
    b.subclass("Scientist", &["Person"]);
    b.subclass("Writer", &["Person"]);
    b.class("Organization");
    b.subclass("ReliefAgency", &["Organization"]);
    b.class("City");

    b.attr("Person", "Name", "String");
    b.attr("Organization", "Name", "String");
    b.set_attr("Scientist", "WonNobelPrize", "String");
    b.set_attr("Writer", "WonNobelPrize", "String");
    b.set_attr("ReliefAgency", "WonNobelPrize", "String");

    let marie = b.obj("marieCurie", "Scientist");
    b.set_str(marie, "Name", "Marie Curie");
    let physics = b.str("physics");
    let chemistry = b.str("chemistry");
    b.set_many(marie, "WonNobelPrize", &[physics, chemistry]);

    let tagore = b.obj("tagore", "Writer");
    b.set_str(tagore, "Name", "Rabindranath Tagore");
    let literature = b.str("literature");
    b.set_many(tagore, "WonNobelPrize", &[literature]);

    let unicef = b.obj("unicef", "ReliefAgency");
    b.set_str(unicef, "Name", "UNICEF");
    let peace = b.str("peace");
    b.set_many(unicef, "WonNobelPrize", &[peace]);

    // Non-winners of each class.
    let p = b.obj("plainPerson", "Person");
    b.set_str(p, "Name", "Pat");
    let s = b.obj("otherScientist", "Scientist");
    b.set_str(s, "Name", "Sam");
    let o = b.obj("plainOrg", "Organization");
    b.set_str(o, "Name", "Acme Club");
    b.obj("paris", "City");

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winners_span_classes() {
        let db = nobel_db();
        let m = db.oids().find_sym("WonNobelPrize").unwrap();
        let marie = db.oids().find_sym("marieCurie").unwrap();
        let unicef = db.oids().find_sym("unicef").unwrap();
        assert!(db.value(marie, m, &[]).unwrap().is_some());
        assert!(db.value(unicef, m, &[]).unwrap().is_some());
        let person = db.oids().find_sym("Person").unwrap();
        assert!(!db.is_instance_of(unicef, person));
    }
}
