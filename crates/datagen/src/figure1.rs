//! The Figure 1 schema and its instances.
//!
//! The schema is transcribed attribute-for-attribute from Figure 1 of
//! the paper: the IS-A hierarchy (thick arrows) and the aggregation
//! links (thin arrows), with `*`-suffixed attributes set-valued.

use oodb::{Database, DbBuilder, Oid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Declares the Figure 1 schema into a builder.
pub fn declare_schema(b: &mut DbBuilder) {
    // IS-A hierarchy (thick arrows).
    b.class("Vehicle");
    b.subclass("Motorbike", &["Vehicle"]);
    b.subclass("Bicycle", &["Vehicle"]);
    b.subclass("Automobile", &["Vehicle"]);
    b.class("Person");
    b.subclass("Employee", &["Person"]);
    b.class("Address");
    b.class("Company");
    b.class("Division");
    b.class("VehicleDrivetrain");
    b.class("AutoBody");
    b.class("Engines");
    b.subclass("PistonEngine", &["Engines"]);
    b.subclass("TwoStrokeEngine", &["PistonEngine"]);
    b.subclass("FourStrokeEngine", &["PistonEngine"]);
    b.subclass("TurboEngine", &["FourStrokeEngine"]);
    b.subclass("DieselEngine", &["FourStrokeEngine"]);
    b.class("Transmission");

    // Aggregation (thin arrows); `*` means set-valued.
    b.attr("Vehicle", "Model", "String");
    b.attr("Vehicle", "Manufacturer", "Company");
    b.attr("Vehicle", "Color", "String");
    b.attr("Vehicle", "Drivetrain", "VehicleDrivetrain");
    b.attr("Motorbike", "Size", "Numeral");
    b.attr("Automobile", "Drivetrain", "VehicleDrivetrain");
    b.attr("Automobile", "Body", "AutoBody");

    b.attr("Person", "Name", "String");
    b.attr("Person", "Age", "Numeral");
    b.attr("Person", "Residence", "Address");
    b.set_attr("Person", "OwnedVehicles", "Vehicle");
    b.set_attr("Employee", "Qualifications", "String");
    b.attr("Employee", "Salary", "Numeral");
    b.set_attr("Employee", "FamMembers", "Person");

    b.attr("Address", "Street", "String");
    b.attr("Address", "City", "String");
    b.attr("Address", "State", "String");
    b.attr("Address", "Phone", "Numeral");

    b.attr("Company", "Name", "String");
    b.attr("Company", "Headquarters", "Address");
    b.set_attr("Company", "Divisions", "Division");
    b.attr("Company", "President", "Person");

    b.attr("Division", "Name", "String");
    b.attr("Division", "Location", "Address");
    b.attr("Division", "Function", "String");
    b.attr("Division", "Manager", "Employee");
    b.set_attr("Division", "Employees", "Employee");

    b.attr("VehicleDrivetrain", "Engine", "Engines");
    b.attr("VehicleDrivetrain", "Transmission", "Transmission");
    b.attr("Transmission", "Kind", "String");

    b.attr("AutoBody", "Chassis", "String");
    b.attr("AutoBody", "Interior", "String");
    b.attr("AutoBody", "Doors", "Numeral");

    b.attr("PistonEngine", "HPpower", "Numeral");
    b.attr("PistonEngine", "CCsize", "Numeral");
    b.attr("PistonEngine", "CylinderN", "Numeral");

    // §2/§4 attributes the paper uses but Figure 1 omits (footnote 9).
    b.set_attr("Company", "Retirees", "Person");
    b.set_attr("Employee", "Dependents", "Person");
}

/// The small hand-picked instance behind the paper's running examples:
/// mary123 in New York, uniSQL with john13 as president, an automobile
/// with a turbo engine, etc.
pub fn figure1_db() -> Database {
    let mut b = DbBuilder::new();
    declare_schema(&mut b);

    let addr_ny = b.obj("addr_ny", "Address");
    b.set_str(addr_ny, "Street", "5th Avenue");
    b.set_str(addr_ny, "City", "newyork");
    b.set_str(addr_ny, "State", "NY");
    let addr_austin = b.obj("addr_austin", "Address");
    b.set_str(addr_austin, "City", "austin");
    b.set_str(addr_austin, "State", "TX");
    let addr_sf = b.obj("addr_sf", "Address");
    b.set_str(addr_sf, "City", "sanfrancisco");
    b.set_str(addr_sf, "State", "CA");

    let mary = b.obj("mary123", "Person");
    b.set_str(mary, "Name", "Mary");
    b.set_int(mary, "Age", 34);
    b.set(mary, "Residence", addr_ny);

    let john = b.obj("john13", "Employee");
    b.set_str(john, "Name", "John");
    b.set_int(john, "Age", 45);
    b.set(john, "Residence", addr_austin);
    b.set_int(john, "Salary", 90000);

    let anna = b.obj("anna7", "Person");
    b.set_str(anna, "Name", "Anna");
    b.set_int(anna, "Age", 22);
    b.set(anna, "Residence", addr_austin);
    let tim = b.obj("tim9", "Person");
    b.set_str(tim, "Name", "Tim");
    b.set_int(tim, "Age", 17);
    b.set(tim, "Residence", addr_austin);
    b.set_many(john, "FamMembers", &[anna, tim]);
    b.set_many(john, "Dependents", &[tim]);

    let kim = b.obj("kim1", "Employee");
    b.set_str(kim, "Name", "Kim");
    b.set_int(kim, "Age", 39);
    b.set(kim, "Residence", addr_sf);
    b.set_int(kim, "Salary", 30000);
    b.set_many(kim, "FamMembers", &[mary]);

    let uni = b.obj("uniSQL", "Company");
    b.set_str(uni, "Name", "UniSQL");
    b.set(uni, "Headquarters", addr_austin);
    b.set(uni, "President", john);

    // Footnote 10: an employee works in just one division of a company.
    let sales = b.obj("divSales", "Division");
    b.set_str(sales, "Name", "Sales");
    b.set_str(sales, "Function", "sales");
    b.set(sales, "Manager", john);
    b.set_many(sales, "Employees", &[john]);
    let eng = b.obj("divEng", "Division");
    b.set_str(eng, "Name", "Engineering");
    b.set_str(eng, "Function", "engineering");
    b.set(eng, "Manager", kim);
    b.set_many(eng, "Employees", &[kim]);
    b.set_many(uni, "Divisions", &[sales, eng]);

    let turbo = b.obj("engineT1", "TurboEngine");
    b.set_int(turbo, "HPpower", 280);
    b.set_int(turbo, "CCsize", 2998);
    b.set_int(turbo, "CylinderN", 6);
    let diesel = b.obj("engineD1", "DieselEngine");
    b.set_int(diesel, "HPpower", 150);

    let trans = b.obj("trans1", "Transmission");
    b.set_str(trans, "Kind", "manual");
    let dt1 = b.obj("dt1", "VehicleDrivetrain");
    b.set(dt1, "Engine", turbo);
    b.set(dt1, "Transmission", trans);
    let dt2 = b.obj("dt2", "VehicleDrivetrain");
    b.set(dt2, "Engine", diesel);

    let body = b.obj("body1", "AutoBody");
    b.set_int(body, "Doors", 4);

    let car1 = b.obj("car1", "Automobile");
    b.set_str(car1, "Model", "Speedster");
    b.set(car1, "Manufacturer", uni);
    b.set_str(car1, "Color", "red");
    b.set(car1, "Drivetrain", dt1);
    b.set(car1, "Body", body);
    let car2 = b.obj("car2", "Automobile");
    b.set_str(car2, "Model", "Hauler");
    b.set(car2, "Manufacturer", uni);
    b.set_str(car2, "Color", "blue");
    b.set(car2, "Drivetrain", dt2);
    let bike = b.obj("bike1", "Bicycle");
    b.set_str(bike, "Model", "Roadster");
    b.set_str(bike, "Color", "green");

    b.set_many(john, "OwnedVehicles", &[car1, car2]);
    b.set_many(mary, "OwnedVehicles", &[bike]);
    b.set_many(kim, "OwnedVehicles", &[car2]);

    b.build()
}

/// Scale parameters for the synthetic Figure 1 population.
#[derive(Debug, Clone, Copy)]
pub struct Figure1Params {
    /// Number of companies.
    pub companies: usize,
    /// Divisions per company.
    pub divisions_per_company: usize,
    /// Employees per division.
    pub employees_per_division: usize,
    /// Vehicles per company (manufactured).
    pub vehicles_per_company: usize,
    /// Number of distinct cities (address pool).
    pub cities: usize,
    /// Family members per employee (0..=n).
    pub max_fam_members: usize,
    /// RNG seed — equal seeds give identical databases.
    pub seed: u64,
}

impl Default for Figure1Params {
    fn default() -> Self {
        Figure1Params {
            companies: 10,
            divisions_per_company: 3,
            employees_per_division: 10,
            vehicles_per_company: 5,
            cities: 20,
            max_fam_members: 3,
            seed: 0xC0FFEE,
        }
    }
}

impl Figure1Params {
    /// A parameter set targeting roughly `n` individual objects, for
    /// size sweeps.
    pub fn with_total_objects(n: usize) -> Figure1Params {
        // employees dominate: companies * divisions * employees.
        let companies = (n / 45).max(1);
        Figure1Params {
            companies,
            ..Figure1Params::default()
        }
    }
}

/// Generates a deterministic scaled instance of the Figure 1 schema.
pub fn figure1_scaled(p: &Figure1Params) -> Database {
    let mut b = DbBuilder::new();
    declare_schema(&mut b);
    let mut rng = StdRng::seed_from_u64(p.seed);

    let colors = ["red", "blue", "green", "black", "white", "silver"];
    let cities: Vec<Oid> = (0..p.cities.max(1))
        .map(|i| {
            let a = b.obj(&format!("addr{i}"), "Address");
            b.set_str(a, "City", &format!("city{i}"));
            b.set_str(a, "State", &format!("state{}", i % 7));
            a
        })
        .collect();

    let mut all_people: Vec<Oid> = Vec::new();
    for ci in 0..p.companies {
        let comp = b.obj(&format!("company{ci}"), "Company");
        b.set_str(comp, "Name", &format!("Company {ci}"));
        let hq = cities[rng.gen_range(0..cities.len())];
        b.set(comp, "Headquarters", hq);

        let mut divisions = Vec::new();
        let mut company_people = Vec::new();
        for di in 0..p.divisions_per_company {
            let div = b.obj(&format!("division{ci}_{di}"), "Division");
            b.set_str(div, "Name", &format!("Division {di}"));
            b.set_str(div, "Function", ["sales", "engineering", "hr"][di % 3]);
            let loc = cities[rng.gen_range(0..cities.len())];
            b.set(div, "Location", loc);
            let mut employees = Vec::new();
            for ei in 0..p.employees_per_division {
                let emp = b.obj(&format!("emp{ci}_{di}_{ei}"), "Employee");
                b.set_str(emp, "Name", &format!("Emp {ci}-{di}-{ei}"));
                b.set_int(emp, "Age", rng.gen_range(20..66));
                b.set_int(emp, "Salary", rng.gen_range(20..200) * 1000);
                let res = cities[rng.gen_range(0..cities.len())];
                b.set(emp, "Residence", res);
                // Family members: plain persons.
                let fam_n = rng.gen_range(0..=p.max_fam_members);
                let fam: Vec<Oid> = (0..fam_n)
                    .map(|fi| {
                        let fm = b.obj(&format!("fam{ci}_{di}_{ei}_{fi}"), "Person");
                        b.set_int(fm, "Age", rng.gen_range(1..90));
                        let fres = if rng.gen_bool(0.5) {
                            res
                        } else {
                            cities[rng.gen_range(0..cities.len())]
                        };
                        b.set(fm, "Residence", fres);
                        fm
                    })
                    .collect();
                if !fam.is_empty() {
                    b.set_many(emp, "FamMembers", &fam);
                }
                employees.push(emp);
                company_people.push(emp);
            }
            b.set_many(div, "Employees", &employees);
            b.set(div, "Manager", employees[rng.gen_range(0..employees.len())]);
            divisions.push(div);
        }
        b.set_many(comp, "Divisions", &divisions);
        b.set(
            comp,
            "President",
            company_people[rng.gen_range(0..company_people.len())],
        );

        for vi in 0..p.vehicles_per_company {
            let kind = ["Automobile", "Motorbike", "Bicycle"][vi % 3];
            let v = b.obj(&format!("vehicle{ci}_{vi}"), kind);
            b.set_str(v, "Model", &format!("Model {vi}"));
            b.set(v, "Manufacturer", comp);
            b.set_str(v, "Color", colors[rng.gen_range(0..colors.len())]);
            if kind == "Automobile" {
                let engine_kind =
                    ["TurboEngine", "DieselEngine", "TwoStrokeEngine"][rng.gen_range(0..3)];
                let e = b.obj(&format!("engine{ci}_{vi}"), engine_kind);
                b.set_int(e, "HPpower", rng.gen_range(60..400));
                b.set_int(e, "CylinderN", [3, 4, 6, 8][rng.gen_range(0..4)]);
                let dt = b.obj(&format!("dt{ci}_{vi}"), "VehicleDrivetrain");
                b.set(dt, "Engine", e);
                b.set(v, "Drivetrain", dt);
            }
            // An owner from this company's people.
            let owner = company_people[rng.gen_range(0..company_people.len())];
            b.add_to(owner, "OwnedVehicles", v);
        }
        all_people.extend(company_people);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_instance_has_paper_objects() {
        let db = figure1_db();
        for name in ["mary123", "john13", "uniSQL", "car1"] {
            let o = db.oids().find_sym(name).expect(name);
            assert!(db.is_instance_of(o, db.builtins().object), "{name}");
        }
        let turbo = db.oids().find_sym("TurboEngine").unwrap();
        let piston = db.oids().find_sym("PistonEngine").unwrap();
        assert!(db.is_strict_subclass(turbo, piston));
    }

    #[test]
    fn scaled_is_deterministic() {
        let p = Figure1Params {
            companies: 2,
            ..Figure1Params::default()
        };
        let a = figure1_scaled(&p);
        let b2 = figure1_scaled(&p);
        assert_eq!(a.individual_count(), b2.individual_count());
        assert_eq!(a.state_entries().count(), b2.state_entries().count());
    }

    #[test]
    fn scaled_size_grows() {
        let small = figure1_scaled(&Figure1Params {
            companies: 1,
            ..Figure1Params::default()
        });
        let big = figure1_scaled(&Figure1Params {
            companies: 8,
            ..Figure1Params::default()
        });
        assert!(big.individual_count() > 4 * small.individual_count());
    }
}

#[cfg(test)]
mod sizing_tests {
    use super::*;

    #[test]
    fn with_total_objects_tracks_target() {
        for target in [100usize, 500, 2000] {
            let p = Figure1Params::with_total_objects(target);
            let db = figure1_scaled(&p);
            let n = db.individual_count();
            // Within a factor of ~2.5 of the requested population.
            assert!(
                n * 2 >= target && n <= target * 3 + 200,
                "target {target}, got {n}"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = figure1_scaled(&Figure1Params {
            companies: 2,
            seed: 1,
            ..Figure1Params::default()
        });
        let b = figure1_scaled(&Figure1Params {
            companies: 2,
            seed: 2,
            ..Figure1Params::default()
        });
        // Same structure, different random content.
        assert_eq!(
            a.instances_of(a.oids().find_sym("Company").unwrap()).len(),
            b.instances_of(b.oids().find_sym("Company").unwrap()).len()
        );
        let salaries = |db: &oodb::Database| -> Vec<String> {
            let sal = db.oids().find_sym("Salary").unwrap();
            db.state_entries()
                .filter(|(_, m, _, _)| *m == sal)
                .map(|(_, _, _, v)| match v {
                    oodb::Val::Scalar(o) => db.render(*o),
                    oodb::Val::Set(_) => unreachable!(),
                })
                .collect()
        };
        assert_ne!(salaries(&a), salaries(&b));
    }
}
