//! Wire-protocol fuzzing, in the spirit of `tests/wal_torn_boundary.rs`
//! for the WAL: sweep **every** truncation point and **every** byte
//! corruption of a valid client byte stream against a live server and
//! prove that
//!
//! 1. the server never panics (it still serves a pristine conversation
//!    after the whole sweep),
//! 2. everything the server sends back is well-formed frames, and
//! 3. streams the server can *tell* are malformed are answered with a
//!    typed `Protocol` error frame before the connection closes —
//!    garbage gets an answer, not a vanishing act. (A stream cut at a
//!    frame boundary is indistinguishable from a client hanging up,
//!    and is closed without complaint.)

use net::{Backend, ErrorCode, Frame, FrameBuf, Server, ServerConfig, PROTO_VERSION};
use oodb::Database;
use service::{Service, ServiceConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xsql::{EvalOptions, Session};

fn start_server() -> (Server, Arc<Service>) {
    let session = Session::with_options(Database::new(), EvalOptions::default());
    let svc = Arc::new(Service::start(session, ServiceConfig::default()));
    let server = Server::start(
        Backend::Primary(Arc::clone(&svc)),
        ServerConfig {
            // Tight so torn-frame reaping triggers inside the test, but
            // far above per-position round-trip time.
            handshake_timeout: Duration::from_millis(500),
            frame_timeout: Duration::from_millis(200),
            idle_timeout: Duration::from_secs(5),
            poll_interval: Duration::from_millis(2),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind");
    (server, svc)
}

/// The canonical two-frame client stream the sweeps mutate.
fn good_stream() -> Vec<u8> {
    let mut bytes = net::frame::encode(&Frame::Hello {
        version: PROTO_VERSION,
        token: String::new(),
    });
    bytes.extend_from_slice(&net::frame::encode(&Frame::Execute {
        id: 1,
        deadline_ms: 0,
        src: "SELECT X FROM Person X".into(),
    }));
    bytes
}

/// Sends `bytes`, closes the write half, and drains the response until
/// EOF (bounded). Panics if the server's reply is not a clean sequence
/// of complete, well-formed frames.
fn roundtrip(addr: &std::net::SocketAddr, bytes: &[u8]) -> Vec<Frame> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    // The peer may answer-and-close before we finish writing; a broken
    // pipe here is the server legitimately cutting off garbage.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("read timeout");
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                assert!(
                    Instant::now() < deadline,
                    "server neither answered nor closed within 5s"
                );
            }
            Err(_) => break, // reset: the server hung up hard
        }
    }
    let mut buf = FrameBuf::new();
    buf.push(&raw);
    let mut frames = Vec::new();
    loop {
        match buf.next_frame() {
            Ok(Some(f)) => frames.push(f),
            Ok(None) => break,
            Err(e) => panic!("server sent a malformed frame: {e}"),
        }
    }
    assert!(
        !buf.has_partial(),
        "server closed mid-frame ({} stray bytes)",
        raw.len()
    );
    frames
}

fn assert_alive(addr: &std::net::SocketAddr) {
    let mut c = net::Client::connect(&addr.to_string(), "").expect("server still accepts");
    let h = c.ping().expect("server still answers");
    assert_eq!(h.lag, 0);
    c.goodbye();
}

#[test]
fn every_truncation_point_is_survived() {
    let (server, svc) = start_server();
    let addr = server.local_addr();
    let stream = good_stream();

    for k in 0..=stream.len() {
        let frames = roundtrip(&addr, &stream[..k]);
        // Whatever came back must be sane for the prefix sent: the
        // handshake only completes once the whole HELLO arrived.
        let hello_len = net::frame::encode(&Frame::Hello {
            version: PROTO_VERSION,
            token: String::new(),
        })
        .len();
        if k < hello_len {
            // At most a typed error (e.g. handshake garbage); never a
            // HELLO_ACK.
            assert!(
                !frames.iter().any(|f| matches!(f, Frame::HelloAck { .. })),
                "ack without a full HELLO at k={k}: {frames:?}"
            );
        } else {
            assert!(
                matches!(frames.first(), Some(Frame::HelloAck { .. })),
                "full HELLO at k={k} must be acked: {frames:?}"
            );
        }
    }
    assert_alive(&addr);
    server.shutdown();
    drop(svc);
}

#[test]
fn every_single_byte_corruption_is_survived_and_answered() {
    let (server, svc) = start_server();
    let addr = server.local_addr();
    let stream = good_stream();

    let mut typed_protocol_answers = 0usize;
    for i in 0..stream.len() {
        let mut mutated = stream.clone();
        mutated[i] ^= 0xA5;
        let frames = roundtrip(&addr, &mutated);
        for f in &frames {
            if let Frame::Error { code, .. } = f {
                assert!(
                    matches!(
                        code,
                        ErrorCode::Protocol | ErrorCode::Auth | ErrorCode::Stmt
                    ),
                    "unexpected error class at byte {i}: {f:?}"
                );
                if *code == ErrorCode::Protocol {
                    typed_protocol_answers += 1;
                }
            }
        }
    }
    // Most corruptions are detectable (checksummed body, strict
    // decoder) and must have been *answered*, not just dropped.
    assert!(
        typed_protocol_answers >= stream.len() / 4,
        "only {typed_protocol_answers} of {} corruptions got a typed protocol error",
        stream.len()
    );
    assert_alive(&addr);
    server.shutdown();
    drop(svc);
}

#[test]
fn random_garbage_and_oversized_lengths_are_refused() {
    let (server, svc) = start_server();
    let addr = server.local_addr();

    // A classic: huge length prefix. Must be refused outright, not
    // buffered until memory runs out.
    let mut huge = Vec::new();
    huge.extend_from_slice(&u32::MAX.to_le_bytes());
    huge.extend_from_slice(&[0u8; 64]);
    let frames = roundtrip(&addr, &huge);
    assert!(
        frames.iter().any(|f| matches!(
            f,
            Frame::Error {
                code: ErrorCode::Protocol,
                ..
            }
        )),
        "oversized length must get a typed refusal: {frames:?}"
    );

    // Deterministic pseudo-random garbage blobs.
    let mut state = 0x6a77_55aa_u64;
    for round in 0..16 {
        let mut blob = Vec::with_capacity(round * 17 + 3);
        for _ in 0..(round * 17 + 3) {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            blob.push((state >> 33) as u8);
        }
        let _ = roundtrip(&addr, &blob); // must not panic / hang
    }
    assert_alive(&addr);
    server.shutdown();
    drop(svc);
}

#[test]
fn a_torn_frame_is_reaped_with_a_typed_error() {
    let (server, svc) = start_server();
    let addr = server.local_addr();

    // Complete handshake, then leave half an Execute on the wire with
    // the connection open: the server must reap it via frame_timeout
    // (a stuck peer cannot hold a connection hostage), answering with
    // a typed error first.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(&net::frame::encode(&Frame::Hello {
            version: PROTO_VERSION,
            token: String::new(),
        }))
        .expect("hello");
    let exec = net::frame::encode(&Frame::Execute {
        id: 1,
        deadline_ms: 0,
        src: "SELECT X FROM Person X".into(),
    });
    stream
        .write_all(&exec[..exec.len() / 2])
        .expect("half a frame");

    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut buf = FrameBuf::new();
    let mut chunk = [0u8; 4096];
    let mut frames = Vec::new();
    loop {
        match buf.next_frame() {
            Ok(Some(f)) => {
                frames.push(f);
                continue;
            }
            Ok(None) => {}
            Err(e) => panic!("malformed server frame: {e}"),
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.push(&chunk[..n]),
            Err(_) => break,
        }
    }
    assert!(
        matches!(frames.first(), Some(Frame::HelloAck { .. })),
        "handshake should have completed: {frames:?}"
    );
    assert!(
        frames.iter().any(|f| matches!(
            f,
            Frame::Error {
                code: ErrorCode::Protocol,
                ..
            }
        )),
        "torn frame must be reaped with a typed error: {frames:?}"
    );
    assert_alive(&addr);
    server.shutdown();
    drop(svc);
}
