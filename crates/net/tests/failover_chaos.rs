//! Seeded failover chaos: kill (or partition) the primary at an
//! arbitrary point in a write stream, promote a replacement over the
//! shared store directory, and restart the deposed node — asserting
//! the three failover invariants end to end:
//!
//! 1. every acked write survives onto the new timeline,
//! 2. a fenced node never extends the log (segments are byte-identical
//!    after every refused write), and
//! 3. rendered query results converge across the new primary, a
//!    tailing replica, and the restarted old node.
//!
//! A third of the seeds keep the old primary *alive* through the
//! promotion — the network-partition case where fencing, not death, is
//! what prevents split brain. The rest die hard via a simulated crash
//! of varying nastiness (lost final fsync, torn tail).
//!
//! `FAILOVER_CHAOS_SEEDS` widens the sweep (CI runs 200).

use net::{DirSource, ReplicaConfig, ReplicaCore, ShipSource};
use oodb::Database;
use std::collections::BTreeMap;
use std::path::Path;
use storage::fault::{CrashMode, FaultFs};
use storage::manifest::parse_manifest;
use storage::snapshot::decode_snapshot;
use storage::wal;
use xsql::{EvalOptions, Outcome, Session, XsqlError};

const DIR: &str = "/primary";
const PROLOGUE: &[&str] = &[
    "CREATE CLASS Counter",
    "ALTER CLASS Counter ADD SIGNATURE Val => Numeral",
    "CREATE OBJECT c0 CLASS Counter SET Val = 0",
    "CREATE OBJECT c1 CLASS Counter SET Val = 0",
];
const QUERIES: &[&str] = &[
    "SELECT X FROM Counter X",
    "SELECT W FROM Numeral W WHERE c0.Val[W]",
    "SELECT W FROM Numeral W WHERE c1.Val[W]",
];

fn seeds() -> u64 {
    std::env::var("FAILOVER_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// Deterministic PCG-ish stream: the whole schedule is a pure function
/// of the seed.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn open_node(fs: &FaultFs) -> Result<Session, XsqlError> {
    Session::open_dir(
        Box::new(fs.clone()),
        Path::new(DIR),
        Database::new(),
        "empty",
        EvalOptions::default(),
    )
}

fn dir_source(fs: &FaultFs) -> DirSource {
    DirSource::new(Box::new(fs.clone()), DIR)
}

fn replica_over(src: DirSource) -> ReplicaCore {
    ReplicaCore::new(
        Box::new(src),
        Database::new(),
        ReplicaConfig {
            base_tag: "empty".into(),
            opts: EvalOptions::default(),
        },
    )
}

/// The durable frontier: max committed unit sequence across the
/// checkpoint image (snapshot + delta chain) and every live WAL
/// segment.
fn primary_last_seq(fs: &FaultFs) -> u64 {
    let mut src = dir_source(fs);
    let manifest = parse_manifest(&src.fetch("manifest").unwrap().expect("manifest"))
        .expect("well-formed manifest");
    let mut last = src
        .fetch("snapshot.bin")
        .unwrap()
        .map_or(0, |b| decode_snapshot(&b).expect("snapshot").last_seq);
    for name in &manifest.deltas {
        if let Some(bytes) = src.fetch(name).unwrap() {
            last = last.max(
                storage::delta::decode_delta(&bytes)
                    .expect("delta")
                    .last_seq,
            );
        }
    }
    for name in &manifest.segments {
        if let Some(bytes) = src.fetch(name).unwrap() {
            for (seq, _) in wal::scan(&bytes).records {
                last = last.max(seq);
            }
        }
    }
    last
}

/// Every live log segment by name — the byte-level "did the fenced
/// node write anything" witness.
fn log_image(fs: &FaultFs) -> BTreeMap<String, Vec<u8>> {
    let mut src = dir_source(fs);
    let manifest = parse_manifest(&src.fetch("manifest").unwrap().expect("manifest"))
        .expect("well-formed manifest");
    let mut image = BTreeMap::new();
    for name in &manifest.segments {
        if let Some(bytes) = src.fetch(name).unwrap() {
            image.insert(name.clone(), bytes);
        }
    }
    image
}

/// Rendered query results — the cross-node equality token (OID table
/// positions legitimately differ between nodes; names and values must
/// not).
fn fingerprint(session: &mut Session) -> Vec<String> {
    QUERIES
        .iter()
        .map(|q| match session.run(q).expect("read query") {
            Outcome::Relation(rel) => {
                let mut rows: Vec<String> = rel
                    .iter()
                    .map(|t| {
                        t.iter()
                            .map(|o| session.db().oids().render(*o))
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .collect();
                rows.sort();
                rows.join(";")
            }
            other => panic!("expected a relation, got {other:?}"),
        })
        .collect()
}

/// A read session over the replica's latest published epoch.
fn replica_reader(core: &ReplicaCore) -> Session {
    let shared = core.shared();
    let ep = shared.epoch();
    Session::with_options((*ep.db).clone(), shared.base_opts().clone())
}

/// The single counter value `obj` currently holds, rendered.
fn counter(session: &mut Session, obj: &str) -> String {
    match session
        .run(&format!("SELECT W FROM Numeral W WHERE {obj}.Val[W]"))
        .expect("counter read")
    {
        Outcome::Relation(rel) => {
            let rows: Vec<String> = rel
                .iter()
                .map(|t| {
                    session
                        .db()
                        .oids()
                        .render(*t.iter().next().expect("one column"))
                })
                .collect();
            assert_eq!(rows.len(), 1, "counter {obj} should hold exactly one value");
            rows.into_iter().next().unwrap()
        }
        other => panic!("expected a relation, got {other:?}"),
    }
}

fn run_seed(seed: u64) {
    let mut rng = Lcg::new(seed);
    let fs = FaultFs::new();
    let mut old = open_node(&fs).expect("primary store");
    for stmt in PROLOGUE {
        old.run(stmt).expect("prologue");
    }

    // A replica tails the shared directory throughout, at a seed-chosen
    // cadence, so promotion lands at an arbitrary replication offset.
    let mut replica = replica_over(dir_source(&fs));
    let writes = 3 + (rng.next() % 6) as i64;
    let mut acked = 0i64;
    for j in 1..=writes {
        old.run(&format!("UPDATE CLASS Counter SET c0.Val = {j}"))
            .expect("write");
        acked = j;
        if rng.next() % 4 == 0 {
            old.run("CHECKPOINT").expect("checkpoint");
        }
        if rng.next() % 2 == 0 {
            let _ = replica.step();
        }
    }

    // The failure: partition (node survives and must fence) or death
    // (a crash that drops anything not yet durable).
    let partitioned = match seed % 3 {
        0 => Some(old),
        1 => {
            drop(old);
            fs.crash(CrashMode::LostFsync);
            None
        }
        _ => {
            drop(old);
            fs.crash(CrashMode::TornTail);
            None
        }
    };

    // Promote: recovery over the shared directory *is* catch-up to the
    // end of the shipped log; then the fencing term bumps.
    let mut promoted = open_node(&fs).expect("promotion recovery");
    let adopted = promoted.store_generation();
    let generation = promoted.promote_store().expect("generation bump");
    assert_eq!(
        generation,
        adopted + 1,
        "seed {seed}: promotion bumps by one"
    );

    // Invariant 1: every acked write survives onto the new timeline.
    assert_eq!(
        counter(&mut promoted, "c0"),
        acked.to_string(),
        "seed {seed}: an acked write was lost across failover"
    );

    // Invariant 2: the deposed-but-alive node fences instead of forking
    // history — refused writes leave the log byte-identical.
    if let Some(mut old) = partitioned {
        let before = log_image(&fs);
        for _ in 0..1 + rng.next() % 2 {
            let err = old
                .run("UPDATE CLASS Counter SET c0.Val = 999")
                .expect_err("a deposed primary must refuse writes");
            assert!(
                matches!(err, XsqlError::Fenced { .. }),
                "seed {seed}: expected a fencing refusal, got {err}"
            );
        }
        assert!(old.store_fenced(), "seed {seed}: fencing is sticky");
        assert!(
            old.run("CHECKPOINT").is_err(),
            "seed {seed}: a fenced node must not checkpoint either"
        );
        assert_eq!(
            log_image(&fs),
            before,
            "seed {seed}: a fenced node extended the log"
        );
    }

    // The new primary makes progress on its own timeline.
    let post = 1 + (rng.next() % 4) as i64;
    for k in 1..=post {
        promoted
            .run(&format!("UPDATE CLASS Counter SET c1.Val = {k}"))
            .expect("new-timeline write");
        if rng.next() % 4 == 0 {
            promoted
                .run("CHECKPOINT")
                .expect("post-promotion checkpoint");
        }
    }

    // Invariant 3a: the tailing replica crosses the promotion (fork
    // detection forces a clean resync if the new timeline rewrote
    // sequences it had applied) and converges.
    let target = primary_last_seq(&fs);
    let mut rounds = 0;
    while replica.shared().applied_seq() < target {
        let _ = replica.step();
        rounds += 1;
        assert!(
            rounds < 1000,
            "seed {seed}: replica never converged (applied {} of {target}, last error {:?})",
            replica.shared().applied_seq(),
            replica.shared().last_error(),
        );
    }
    assert_eq!(replica.shared().lag(), 0, "seed {seed}");
    let fp = fingerprint(&mut promoted);
    assert_eq!(
        fp,
        fingerprint(&mut replica_reader(&replica)),
        "seed {seed}: replica state must equal the new primary's"
    );

    // Invariant 3b: the old node restarts, adopts the new generation
    // from the manifest (it does *not* bump — only promotion does), and
    // reads the same history.
    drop(promoted);
    let mut restarted = open_node(&fs).expect("old node restart");
    assert_eq!(
        restarted.store_generation(),
        generation,
        "seed {seed}: a restart adopts the current term"
    );
    assert_eq!(
        fingerprint(&mut restarted),
        fp,
        "seed {seed}: the restarted node must read the promoted timeline"
    );
}

#[test]
fn killed_primaries_promote_without_losing_acked_writes() {
    for seed in 0..seeds() {
        run_seed(seed);
    }
}

#[test]
fn a_deposed_primary_cannot_promote_itself_back() {
    let fs = FaultFs::new();
    let mut old = open_node(&fs).expect("primary");
    for stmt in PROLOGUE {
        old.run(stmt).expect("prologue");
    }
    let mut new = open_node(&fs).expect("second node");
    new.promote_store().expect("promotion");

    // The deposed node can't write...
    let err = old
        .run("UPDATE CLASS Counter SET c0.Val = 1")
        .expect_err("fenced");
    assert!(matches!(err, XsqlError::Fenced { .. }), "{err}");
    // ...and can't seize the term back either: promotion re-reads the
    // manifest generation first, so a stale node stays deposed instead
    // of starting a term war.
    assert!(
        old.promote_store().is_err(),
        "a fenced node must not re-promote itself"
    );
    assert!(old.store_fenced());
}
