//! Functional coverage of the TCP serving tier against a live primary:
//! handshake and auth, streamed result sets, writes and transactions,
//! mid-query CANCEL, server-side deadlines, idle-session reaping,
//! connection-limit shedding with deterministic jittered hints, and
//! graceful drain.

use net::{Backend, Client, ErrorCode, Frame, NetError, Server, ServerConfig};
use oodb::Database;
use service::{Service, ServiceConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use xsql::{EvalOptions, Session};

/// A primary service over a fresh in-memory database (no store: these
/// tests exercise the network tier, not durability).
fn primary(cfg: ServiceConfig) -> Arc<Service> {
    let session = Session::with_options(Database::new(), EvalOptions::default());
    Arc::new(Service::start(session, cfg))
}

fn serve(svc: &Arc<Service>, cfg: ServerConfig) -> Server {
    Server::start(Backend::Primary(Arc::clone(svc)), cfg, "127.0.0.1:0").expect("bind")
}

fn tight() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    }
}

#[test]
fn handshake_writes_and_streamed_rows() {
    let svc = primary(ServiceConfig::default());
    let server = serve(&svc, tight());
    let addr = server.local_addr().to_string();

    let mut c = Client::connect(&addr, "").expect("connect");
    assert_eq!(c.role(), net::Role::Primary);

    let r = c.execute("CREATE CLASS Person").expect("ddl");
    assert!(r.info.contains("class Person created"), "{:?}", r.info);
    assert!(r.epoch > 0, "writes advance the epoch");

    c.execute("ALTER CLASS Person ADD SIGNATURE Age => Numeral")
        .expect("signature");
    c.execute("CREATE OBJECT mary CLASS Person SET Age = 31")
        .expect("insert mary");
    c.execute("CREATE OBJECT john CLASS Person SET Age = 44")
        .expect("insert john");

    let rows = c.execute("SELECT X FROM Person X").expect("select");
    assert_eq!(rows.columns, vec!["X".to_string()]);
    let mut cells: Vec<String> = rows.rows.iter().map(|r| r[0].clone()).collect();
    cells.sort();
    assert_eq!(cells, vec!["john".to_string(), "mary".to_string()]);
    assert!(rows.epoch >= r.epoch);
    c.goodbye();
    server.shutdown();
    drop(svc);
}

#[test]
fn transactions_commit_atomically_over_the_wire() {
    let svc = primary(ServiceConfig::default());
    let server = serve(&svc, tight());
    let addr = server.local_addr().to_string();

    let mut c = Client::connect(&addr, "").expect("connect");
    c.execute("CREATE CLASS Acct").expect("ddl");
    c.execute("ALTER CLASS Acct ADD SIGNATURE Bal => Numeral")
        .expect("sig");
    c.execute("CREATE OBJECT a CLASS Acct SET Bal = 10")
        .expect("a");

    c.execute("BEGIN WORK").expect("begin");
    let buffered = c
        .execute("UPDATE CLASS Acct SET a.Bal = 7")
        .expect("buffer");
    assert!(buffered.info.contains("buffered"), "{:?}", buffered.info);
    let committed = c.execute("COMMIT WORK").expect("commit");
    assert!(committed.epoch > 0);

    let rows = c
        .execute("SELECT W FROM Numeral W WHERE a.Bal[W]")
        .expect("read back");
    assert_eq!(rows.rows, vec![vec!["7".to_string()]]);
    c.goodbye();
    server.shutdown();
    drop(svc);
}

#[test]
fn auth_token_is_enforced() {
    let svc = primary(ServiceConfig::default());
    let server = serve(
        &svc,
        ServerConfig {
            auth_token: Some("s3cret".into()),
            ..tight()
        },
    );
    let addr = server.local_addr().to_string();

    match Client::connect(&addr, "wrong") {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::Auth),
        other => panic!("expected auth refusal, got {other:?}"),
    }
    let mut ok = Client::connect(&addr, "s3cret").expect("right token");
    ok.ping().expect("authenticated ping");
    ok.goodbye();
    server.shutdown();
    drop(svc);
}

#[test]
fn wrong_protocol_version_gets_a_typed_error() {
    let svc = primary(ServiceConfig::default());
    let server = serve(&svc, tight());
    let addr = server.local_addr();

    let mut raw = TcpStream::connect(addr).expect("tcp");
    raw.write_all(&net::frame::encode(&Frame::Hello {
        version: 99,
        token: String::new(),
    }))
    .expect("send bad hello");
    let mut buf = net::FrameBuf::new();
    let mut chunk = [0u8; 4096];
    let frame = loop {
        if let Some(f) = buf.next_frame().expect("well-formed response") {
            break f;
        }
        let n = raw.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed without answering");
        buf.push(&chunk[..n]);
    };
    match frame {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected protocol error, got {other:?}"),
    }
    server.shutdown();
    drop(svc);
}

#[test]
fn conn_limit_sheds_with_deterministic_jittered_hints() {
    let hints_for = |seed: u64| -> Vec<Duration> {
        let svc = primary(ServiceConfig::default());
        let server = serve(
            &svc,
            ServerConfig {
                max_conns: 1,
                jitter_seed: seed,
                ..tight()
            },
        );
        let addr = server.local_addr().to_string();
        let held = Client::connect(&addr, "").expect("first conn admitted");
        let mut hints = Vec::new();
        for _ in 0..3 {
            match Client::connect(&addr, "") {
                Err(NetError::Server {
                    code, retry_after, ..
                }) => {
                    assert_eq!(code, ErrorCode::Overloaded);
                    hints.push(retry_after);
                }
                other => panic!("expected overload shed, got {other:?}"),
            }
        }
        held.goodbye();
        server.shutdown();
        drop(svc);
        hints
    };

    let a = hints_for(42);
    let b = hints_for(42);
    let c = hints_for(43);
    assert_eq!(a, b, "same seed, same hint sequence");
    assert_ne!(a, c, "different seed, different jitter");
    let base = ServerConfig::default().retry_after;
    for h in &a {
        assert!(
            *h >= base && *h <= base.mul_f64(1.5),
            "hint {h:?} outside band"
        );
    }
    assert!(
        a.windows(2).any(|w| w[0] != w[1]),
        "hints should actually jitter: {a:?}"
    );
}

#[test]
fn drain_refuses_new_connections_and_closes_existing_ones() {
    let svc = primary(ServiceConfig::default());
    let server = serve(&svc, tight());
    let addr = server.local_addr().to_string();

    let mut live = Client::connect(&addr, "").expect("pre-drain conn");
    live.execute("CREATE CLASS D").expect("pre-drain write");

    server.begin_drain();

    match Client::connect(&addr, "") {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        other => panic!("expected drain refusal, got {other:?}"),
    }
    match live.execute("SELECT X FROM D X") {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        other => panic!("expected drain error on live conn, got {other:?}"),
    }
    server.shutdown();
    drop(svc);
}

#[test]
fn idle_sessions_are_reaped_with_a_typed_frame() {
    let svc = primary(ServiceConfig::default());
    let server = serve(
        &svc,
        ServerConfig {
            idle_timeout: Duration::from_millis(60),
            ..tight()
        },
    );
    let addr = server.local_addr().to_string();

    let mut c = Client::connect(&addr, "").expect("connect");
    c.execute("CREATE CLASS I").expect("warm-up write");
    std::thread::sleep(Duration::from_millis(250));
    match c.execute("SELECT X FROM I X") {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::IdleTimeout),
        Err(NetError::Io(_)) => {} // reap frame raced the close
        other => panic!("expected idle reap, got {other:?}"),
    }
    server.shutdown();
    drop(svc);
}

/// Builds a database where a 4-way cross product is large enough that
/// a cancel fired ~20ms in lands mid-evaluation.
fn slow_fixture(svc: &Arc<Service>, addr: &str) {
    let mut c = Client::connect(addr, "").expect("connect");
    c.execute("CREATE CLASS Item").expect("ddl");
    c.execute("ALTER CLASS Item ADD SIGNATURE V => Numeral")
        .expect("sig");
    for i in 0..40 {
        c.execute(&format!("CREATE OBJECT it{i} CLASS Item SET V = {i}"))
            .expect("insert");
    }
    c.goodbye();
    let _ = svc;
}

const SLOW_QUERY: &str = "SELECT X, Y, Z, W FROM Item X, Item Y, Item Z, Item W";

#[test]
fn cancel_frame_stops_a_running_statement() {
    let svc = primary(ServiceConfig::default());
    let server = serve(&svc, tight());
    let addr = server.local_addr().to_string();
    slow_fixture(&svc, &addr);

    let mut c = Client::connect(&addr, "").expect("connect");
    let id = c.start_execute(SLOW_QUERY, 30_000).expect("start");
    std::thread::sleep(Duration::from_millis(20));
    c.cancel(id).expect("send cancel");
    match c.finish_execute(id) {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::Cancelled),
        Ok(r) => panic!(
            "statement outran the cancel ({} rows) — grow the fixture",
            r.rows.len()
        ),
        other => panic!("expected cancellation, got {other:?}"),
    }
    // The connection survives a cancelled statement.
    let rows = c.execute("SELECT X FROM Item X").expect("follow-up read");
    assert_eq!(rows.rows.len(), 40);
    c.goodbye();
    server.shutdown();
    drop(svc);
}

#[test]
fn server_side_deadline_cancels_a_runaway_statement() {
    let svc = primary(ServiceConfig::default());
    let server = serve(&svc, tight());
    let addr = server.local_addr().to_string();
    slow_fixture(&svc, &addr);

    let mut c = Client::connect(&addr, "").expect("connect");
    match c.execute_with(SLOW_QUERY, 10) {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::Cancelled),
        Ok(r) => panic!(
            "statement outran a 10ms deadline ({} rows) — grow the fixture",
            r.rows.len()
        ),
        other => panic!("expected deadline cancellation, got {other:?}"),
    }
    c.goodbye();
    server.shutdown();
    drop(svc);
}

#[test]
fn ping_reports_epoch_and_zero_lag_on_the_primary() {
    let svc = primary(ServiceConfig::default());
    let server = serve(&svc, tight());
    let addr = server.local_addr().to_string();

    let mut c = Client::connect(&addr, "").expect("connect");
    let h0 = c.ping().expect("ping");
    assert_eq!(h0.lag, 0);
    assert_eq!(h0.role, net::Role::Primary);
    assert!(h0.generation >= 1, "primary reports its fencing term");
    c.execute("CREATE CLASS P").expect("write");
    let h1 = c.ping().expect("ping after write");
    assert!(h1.epoch > h0.epoch, "epoch advances past {}", h0.epoch);
    c.goodbye();
    server.shutdown();
    drop(svc);
}

#[test]
fn statement_errors_are_typed_and_do_not_kill_the_connection() {
    let svc = primary(ServiceConfig::default());
    let server = serve(&svc, tight());
    let addr = server.local_addr().to_string();

    let mut c = Client::connect(&addr, "").expect("connect");
    match c.execute("SELECT syntax garbage FROM") {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::Stmt),
        other => panic!("expected statement error, got {other:?}"),
    }
    c.execute("CREATE CLASS Ok")
        .expect("connection still works");
    c.goodbye();
    server.shutdown();
    drop(svc);
}
