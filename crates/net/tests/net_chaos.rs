//! Seeded chaos over the full serving stack: a real TCP server over a
//! real (fault-injecting) store, a WAL-shipped replica on a chaotic
//! ship medium, and a client workload with injected network faults —
//! torn frames, disconnects with a statement in flight, mid-query
//! cancels, an ENOSPC episode — finished off with a simulated
//! power-loss crash of the primary and recovery.
//!
//! Every injection is a pure function of the seed. Invariants held
//! across all seeds:
//!
//! 1. **Acked ⇒ durable**: every write the client saw a `Done` for is
//!    present after crash + recovery; units the server *refused* with
//!    a typed error (shed, read-only, torn frame) are never applied.
//!    A unit whose connection died after the statement was sent is
//!    `Maybe` — recovery lands within the acked..=submitted window.
//! 2. **Replica convergence**: the replica reaches the primary's
//!    durable frontier, its published lag gauge reads 0, and the same
//!    queries render identically on both — over TCP on both ends.
//! 3. **Replica is read-only on the wire**: writes to it get the typed
//!    pre-execution `NotPrimary` redirect.
//!
//! Seed count defaults to 40; override with `NET_CHAOS_SEEDS=<n>`.

use net::{
    Backend, ChaosSource, Client, DirSource, ErrorCode, Frame, NetError, ReplicaConfig,
    ReplicaCore, Server, ServerConfig, ShipSource,
};
use oodb::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use service::{Service, ServiceConfig};
use std::io::Write as _;
use std::net::TcpStream;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
use storage::fault::{CrashMode, FaultFs};
use storage::manifest::parse_manifest;
use storage::snapshot::decode_snapshot;
use storage::{wal, StoreConfig};
use xsql::{EvalOptions, Session, XsqlError};

const DIR: &str = "/db";
const PROLOGUE: &[&str] = &[
    "CREATE CLASS Counter",
    "ALTER CLASS Counter ADD SIGNATURE Val => Numeral",
    "CREATE OBJECT c0 CLASS Counter SET Val = 0",
    "CREATE OBJECT c1 CLASS Counter SET Val = 0",
];
const QUERIES: &[&str] = &[
    "SELECT X FROM Counter X",
    "SELECT W FROM Numeral W WHERE c0.Val[W]",
    "SELECT W FROM Numeral W WHERE c1.Val[W]",
];

fn open(fs: &FaultFs) -> Result<Session, XsqlError> {
    Session::open_dir(
        Box::new(fs.clone()),
        Path::new(DIR),
        Database::new(),
        "empty",
        EvalOptions::default(),
    )
}

fn primary_last_seq(fs: &FaultFs) -> u64 {
    let mut src = DirSource::new(Box::new(fs.clone()), DIR);
    let Some(mbytes) = src.fetch("manifest").unwrap() else {
        return 0;
    };
    let Ok(manifest) = parse_manifest(&mbytes) else {
        return 0;
    };
    let mut last = src
        .fetch("snapshot.bin")
        .unwrap()
        .and_then(|b| decode_snapshot(&b).ok())
        .map_or(0, |s| s.last_seq);
    for name in &manifest.segments {
        if let Some(bytes) = src.fetch(name).unwrap() {
            for (seq, _) in wal::scan(&bytes).records {
                last = last.max(seq);
            }
        }
    }
    last
}

/// Sorted rendered rows of the fixed query set, fetched over TCP.
fn fingerprint_over_wire(addr: &str) -> Vec<String> {
    let mut c = Client::connect(addr, "").expect("fingerprint connect");
    c.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let fp = QUERIES
        .iter()
        .map(|q| {
            let r = c.execute(q).expect("fingerprint query");
            let mut rows: Vec<String> = r.rows.iter().map(|t| t.join(",")).collect();
            rows.sort();
            rows.join(";")
        })
        .collect();
    c.goodbye();
    fp
}

/// The fate of one numbered write unit.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Fate {
    Acked,
    /// Typed refusal or torn frame: definitely not applied.
    Refused,
    /// Connection died with the statement in flight.
    Maybe,
}

fn chaos_round(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6e37_c4a0_5eed_0001);
    let fs = FaultFs::new();
    {
        let mut s = open(&fs).expect("fresh store");
        for stmt in PROLOGUE {
            s.run(stmt).expect("prologue");
        }
    }
    let mut session = open(&fs).expect("reopen");
    session.set_store_config(StoreConfig {
        probe_min_interval: Duration::ZERO,
        ..StoreConfig::default()
    });
    let svc = Arc::new(Service::start(
        session,
        ServiceConfig {
            retry_after: Duration::from_micros(500),
            jitter_seed: seed,
            ..ServiceConfig::default()
        },
    ));
    let server = Server::start(
        Backend::Primary(Arc::clone(&svc)),
        ServerConfig {
            retry_after: Duration::from_micros(500),
            jitter_seed: seed,
            frame_timeout: Duration::from_millis(80),
            poll_interval: Duration::from_millis(2),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind primary");
    let addr = server.local_addr().to_string();

    let mut replica = ReplicaCore::new(
        Box::new(ChaosSource::new(
            DirSource::new(Box::new(fs.clone()), DIR),
            seed,
            0.3,
            0.3,
        )),
        Database::new(),
        ReplicaConfig {
            base_tag: "empty".into(),
            opts: EvalOptions::default(),
        },
    );

    // The seeded workload: numbered units on two counter streams, each
    // with a seeded network fault mode.
    let units: Vec<(usize, i64, u8)> = {
        let n = rng.gen_range(6..=12i64);
        (1..=n)
            .map(|j| {
                let stream = rng.gen_range(0..2usize);
                // 0 = clean, 1 = torn frame, 2 = disconnect in flight,
                // 3 = mid-query cancel of a read first.
                let mode = match rng.gen_range(0..10u8) {
                    0..=5 => 0,
                    6..=7 => 1,
                    8 => 2,
                    _ => 3,
                };
                (stream, j, mode)
            })
            .collect()
    };
    let enospc_at = rng.gen_bool(0.4).then(|| rng.gen_range(0..units.len()));

    let mut fates: Vec<Vec<(i64, Fate)>> = vec![Vec::new(), Vec::new()];
    let names = ["c0", "c1"];
    let mut client: Option<Client> = None;

    for (k, (stream_i, j, mode)) in units.iter().enumerate() {
        if enospc_at == Some(k) {
            fs.set_disk_full(true);
        }
        let stmt = format!("UPDATE CLASS Counter SET {}.Val = {j}", names[*stream_i]);
        match mode {
            1 => {
                // Torn frame: half an Execute, then hang up. The server
                // reaps it; the statement never reaches the writer.
                let mut raw = TcpStream::connect(&addr).expect("torn conn");
                raw.write_all(&net::frame::encode(&Frame::Hello {
                    version: net::PROTO_VERSION,
                    token: String::new(),
                }))
                .expect("hello");
                let exec = net::frame::encode(&Frame::Execute {
                    id: 1,
                    deadline_ms: 0,
                    src: stmt.clone(),
                });
                let cut = rng.gen_range(1..exec.len());
                let _ = raw.write_all(&exec[..cut]);
                drop(raw);
                fates[*stream_i].push((*j, Fate::Refused));
            }
            2 => {
                // Full statement sent, connection dropped before the
                // answer: fate unknown.
                let mut c = Client::connect(&addr, "").expect("inflight conn");
                let _ = c.start_execute(&stmt, 0);
                drop(c);
                fates[*stream_i].push((*j, Fate::Maybe));
                // Give the writer a moment to pick it up (or not);
                // ordering with later units must still hold, so wait
                // until the unit is resolved one way or the other.
                let before = primary_last_seq(&fs);
                for _ in 0..200 {
                    if primary_last_seq(&fs) > before {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            _ => {
                if *mode == 3 {
                    // A cancelled read first: must not disturb writes.
                    let mut c = client.take().unwrap_or_else(|| {
                        let mut c = Client::connect(&addr, "").expect("client");
                        c.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
                        c
                    });
                    let id = c.start_execute(QUERIES[0], 0).expect("start read");
                    c.cancel(id).expect("cancel");
                    match c.finish_execute(id) {
                        Ok(_) => {}
                        Err(NetError::Server { code, .. }) => {
                            assert_eq!(code, ErrorCode::Cancelled, "cancel must be typed")
                        }
                        Err(other) => panic!("cancel broke the connection: {other}"),
                    }
                    client = Some(c);
                }
                // Clean write with retries through shed/read-only.
                let mut acked = false;
                for _attempt in 0..10_000 {
                    let mut c = client.take().unwrap_or_else(|| {
                        let mut c = Client::connect(&addr, "").expect("client");
                        c.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
                        c
                    });
                    match c.execute(&stmt) {
                        Ok(r) => {
                            assert!(r.epoch > 0);
                            client = Some(c);
                            acked = true;
                            break;
                        }
                        Err(NetError::Server {
                            code, retry_after, ..
                        }) if code.retryable() => {
                            client = Some(c);
                            if code == ErrorCode::ReadOnly {
                                // The seeded ENOSPC episode: free the
                                // space, then retry.
                                fs.set_disk_full(false);
                            }
                            std::thread::sleep(retry_after.min(Duration::from_millis(2)));
                        }
                        Err(e) => panic!("seed {seed}: clean write failed: {e}"),
                    }
                }
                assert!(acked, "seed {seed}: write shed forever");
                fates[*stream_i].push((*j, Fate::Acked));
            }
        }
        // Interleaved replica sync under ship chaos.
        let _ = replica.step();
    }
    fs.set_disk_full(false);
    if let Some(c) = client.take() {
        c.goodbye();
    }

    // Quiesce the writer (Maybe units resolve), then measure the
    // durable frontier and let the replica converge to it.
    let settle = primary_last_seq(&fs);
    let mut rounds = 0;
    while replica.shared().applied_seq() < settle {
        let _ = replica.step();
        rounds += 1;
        assert!(
            rounds < 5000,
            "seed {seed}: replica stuck at {} of {settle} ({:?})",
            replica.shared().applied_seq(),
            replica.shared().last_error(),
        );
    }
    assert_eq!(
        replica.shared().lag(),
        0,
        "seed {seed}: lag gauge must read 0"
    );

    // Serve the replica over TCP too and compare both ends.
    let replica_server = Server::start(
        Backend::Replica(replica.shared()),
        ServerConfig {
            jitter_seed: seed,
            poll_interval: Duration::from_millis(2),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind replica");
    let raddr = replica_server.local_addr().to_string();
    assert_eq!(
        fingerprint_over_wire(&addr),
        fingerprint_over_wire(&raddr),
        "seed {seed}: replica must answer exactly like the primary"
    );
    {
        let mut c = Client::connect(&raddr, "").expect("replica conn");
        c.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        match c.execute("UPDATE CLASS Counter SET c0.Val = 999") {
            Err(NetError::NotPrimary { .. }) => {}
            other => panic!("seed {seed}: replica accepted a write: {other:?}"),
        }
        let h = c.ping().expect("replica ping");
        assert_eq!(h.lag, 0, "seed {seed}");
        assert_eq!(h.role, net::Role::Replica, "seed {seed}");
        c.goodbye();
    }
    replica_server.shutdown();

    // Power loss on the primary, then recovery: every acked unit
    // survives; each stream's counter lands in the acked..=submitted
    // window.
    server.shutdown();
    drop(svc); // joins the writer (drains + syncs)
    let mode = match seed % 4 {
        0 => CrashMode::TornTail,
        1 => CrashMode::LostFsync,
        2 => CrashMode::BitFlip,
        _ => CrashMode::LostRename,
    };
    fs.crash(mode);
    let mut recovered = open(&fs).expect("recovery after crash");
    for (i, name) in names.iter().enumerate() {
        let last_acked = fates[i]
            .iter()
            .filter(|(_, f)| *f == Fate::Acked)
            .map(|(j, _)| *j)
            .last()
            .unwrap_or(0);
        let last_submitted = fates[i]
            .iter()
            .filter(|(_, f)| *f != Fate::Refused)
            .map(|(j, _)| *j)
            .last()
            .unwrap_or(0);
        let got = match recovered
            .run(&format!("SELECT W FROM Numeral W WHERE {name}.Val[W]"))
            .expect("recovered read")
        {
            xsql::Outcome::Relation(rel) => {
                let t = rel.iter().next().expect("counter has a value");
                recovered
                    .db()
                    .oids()
                    .render(t[0])
                    .parse::<i64>()
                    .expect("numeral")
            }
            other => panic!("unexpected outcome {other:?}"),
        };
        assert!(
            got >= last_acked && got <= last_submitted.max(last_acked),
            "seed {seed} stream {name}: recovered {got}, acked {last_acked}, \
             submitted {last_submitted} — an acked unit was lost or a refused one applied"
        );
    }
}

#[test]
fn network_chaos_seeds() {
    let seeds: u64 = std::env::var("NET_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    for seed in 0..seeds {
        chaos_round(seed);
    }
}
