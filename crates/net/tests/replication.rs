//! WAL-shipped replica correctness, stepped by hand for determinism:
//! bootstrap and tail replay, duplicated/stale/torn shipments via the
//! seeded [`ChaosSource`], checkpoint-induced gaps forcing a resync,
//! an ENOSPC episode on the primary, and the replication-lag gauge
//! reaching zero at convergence.
//!
//! Convergence is asserted the only way that is meaningful across
//! processes: the *rendered results of the same queries* are equal
//! (OID table positions legitimately differ between primary and
//! replica; names and values must not).

use net::{ChaosSource, DirSource, ReplicaConfig, ReplicaCore, ShipSource};
use oodb::Database;
use std::path::Path;
use std::time::Duration;
use storage::fault::FaultFs;
use storage::manifest::parse_manifest;
use storage::snapshot::decode_snapshot;
use storage::{wal, StoreConfig};
use xsql::{EvalOptions, Outcome, Session, XsqlError};

const DIR: &str = "/primary";
const PROLOGUE: &[&str] = &[
    "CREATE CLASS Counter",
    "ALTER CLASS Counter ADD SIGNATURE Val => Numeral",
    "CREATE OBJECT c0 CLASS Counter SET Val = 0",
    "CREATE OBJECT c1 CLASS Counter SET Val = 0",
];
const QUERIES: &[&str] = &[
    "SELECT X FROM Counter X",
    "SELECT W FROM Numeral W WHERE c0.Val[W]",
    "SELECT W FROM Numeral W WHERE c1.Val[W]",
];

fn open_primary(fs: &FaultFs) -> Result<Session, XsqlError> {
    Session::open_dir(
        Box::new(fs.clone()),
        Path::new(DIR),
        Database::new(),
        "empty",
        EvalOptions::default(),
    )
}

fn replica_over(src: impl ShipSource + 'static) -> ReplicaCore {
    ReplicaCore::new(
        Box::new(src),
        Database::new(),
        ReplicaConfig {
            base_tag: "empty".into(),
            opts: EvalOptions::default(),
        },
    )
}

fn dir_source(fs: &FaultFs) -> DirSource {
    DirSource::new(Box::new(fs.clone()), DIR)
}

/// The primary's durable frontier: max committed unit sequence across
/// the checkpoint image and every live WAL segment.
fn primary_last_seq(fs: &FaultFs) -> u64 {
    let mut src = dir_source(fs);
    let manifest = parse_manifest(&src.fetch("manifest").unwrap().expect("manifest"))
        .expect("well-formed manifest");
    let mut last = src
        .fetch("snapshot.bin")
        .unwrap()
        .map_or(0, |b| decode_snapshot(&b).expect("snapshot").last_seq);
    for name in &manifest.segments {
        if let Some(bytes) = src.fetch(name).unwrap() {
            for (seq, _) in wal::scan(&bytes).records {
                last = last.max(seq);
            }
        }
    }
    last
}

/// Renders the query results a session (primary or a replica reader)
/// produces — the cross-process equality token.
fn fingerprint(session: &mut Session) -> Vec<String> {
    QUERIES
        .iter()
        .map(|q| match session.run(q).expect("read query") {
            Outcome::Relation(rel) => {
                let mut rows: Vec<String> = rel
                    .iter()
                    .map(|t| {
                        t.iter()
                            .map(|o| session.db().oids().render(*o))
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .collect();
                rows.sort();
                rows.join(";")
            }
            other => panic!("expected a relation, got {other:?}"),
        })
        .collect()
}

/// A read session over the replica's latest published epoch.
fn replica_reader(core: &ReplicaCore) -> Session {
    let shared = core.shared();
    let ep = shared.epoch();
    Session::with_options((*ep.db).clone(), shared.base_opts().clone())
}

#[test]
fn replica_bootstraps_and_tails_the_primary() {
    let fs = FaultFs::new();
    let mut primary = open_primary(&fs).expect("primary store");
    for stmt in PROLOGUE {
        primary.run(stmt).expect("prologue");
    }

    let mut replica = replica_over(dir_source(&fs));
    let p = replica.step().expect("first sync");
    assert!(p.resynced, "first round bootstraps");
    assert_eq!(replica.shared().applied_seq(), primary_last_seq(&fs));
    assert_eq!(replica.shared().lag(), 0);

    // Tail replay: new primary commits arrive without a re-bootstrap.
    primary
        .run("UPDATE CLASS Counter SET c0.Val = 7")
        .expect("w");
    primary
        .run("UPDATE CLASS Counter SET c1.Val = 9")
        .expect("w");
    let p = replica.step().expect("tail sync");
    assert_eq!(p.applied, 2);
    assert!(!p.resynced);
    assert_eq!(replica.shared().applied_seq(), primary_last_seq(&fs));

    assert_eq!(
        fingerprint(&mut primary),
        fingerprint(&mut replica_reader(&replica))
    );

    // Idempotence: stepping with nothing new applies nothing and the
    // epoch stands still.
    let e = replica.shared().epoch().seq;
    let p = replica.step().expect("no-op sync");
    assert_eq!((p.applied, p.resynced), (0, false));
    assert_eq!(replica.shared().epoch().seq, e);
}

#[test]
fn checkpoint_gap_forces_a_clean_resync() {
    let fs = FaultFs::new();
    let mut primary = open_primary(&fs).expect("primary store");
    for stmt in PROLOGUE {
        primary.run(stmt).expect("prologue");
    }

    let mut replica = replica_over(dir_source(&fs));
    replica.step().expect("bootstrap");
    let applied_before = replica.shared().applied_seq();

    // The primary moves on and checkpoints: covered segments retire,
    // so the units the replica would need next are gone from the log.
    primary
        .run("UPDATE CLASS Counter SET c0.Val = 3")
        .expect("w");
    primary.run("CHECKPOINT").expect("checkpoint");
    primary
        .run("UPDATE CLASS Counter SET c1.Val = 4")
        .expect("w");

    let p = replica.step().expect("sync over the gap");
    assert_eq!(
        replica.shared().applied_seq(),
        primary_last_seq(&fs),
        "replica reaches the frontier (resync path: {p:?}, before: {applied_before})"
    );
    assert_eq!(replica.shared().lag(), 0);
    assert_eq!(
        fingerprint(&mut primary),
        fingerprint(&mut replica_reader(&replica))
    );
}

#[test]
fn wrong_base_fixture_is_refused_loudly() {
    let fs = FaultFs::new();
    let mut primary = open_primary(&fs).expect("primary store");
    primary.run(PROLOGUE[0]).expect("one write");

    let mut replica = ReplicaCore::new(
        Box::new(dir_source(&fs)),
        Database::new(),
        ReplicaConfig {
            base_tag: "other-fixture".into(),
            opts: EvalOptions::default(),
        },
    );
    let err = replica.step().expect_err("base mismatch must not replay");
    assert!(err.contains("base"), "{err}");
    assert!(replica.shared().last_error().is_some());
    assert_eq!(replica.shared().applied_seq(), 0);
}

#[test]
fn chaotic_shipping_converges_for_many_seeds() {
    for seed in 0..24u64 {
        let fs = FaultFs::new();
        let mut primary = open_primary(&fs).expect("primary store");
        for stmt in PROLOGUE {
            primary.run(stmt).expect("prologue");
        }
        // Delayed (stale re-serves = duplicated records) and torn
        // shipments, schedule a pure function of the seed.
        let mut replica = replica_over(ChaosSource::new(dir_source(&fs), seed, 0.35, 0.35));

        // Interleave primary progress (with a mid-run checkpoint) and
        // replica sync rounds.
        for j in 1..=6i64 {
            primary
                .run(&format!("UPDATE CLASS Counter SET c0.Val = {j}"))
                .expect("write");
            if j == 3 {
                primary.run("CHECKPOINT").expect("checkpoint");
            }
            let _ = replica.step(); // chaos rounds may legitimately fail
        }
        let target = primary_last_seq(&fs);
        let mut rounds = 0;
        while replica.shared().applied_seq() < target {
            let _ = replica.step();
            rounds += 1;
            assert!(
                rounds < 1000,
                "seed {seed}: no convergence after {rounds} rounds \
                 (applied {} of {target}, last error {:?})",
                replica.shared().applied_seq(),
                replica.shared().last_error(),
            );
        }
        assert_eq!(replica.shared().lag(), 0, "seed {seed}");
        assert_eq!(
            fingerprint(&mut primary),
            fingerprint(&mut replica_reader(&replica)),
            "seed {seed}: replica state must equal primary state"
        );
    }
}

#[test]
fn replica_serves_through_a_primary_enospc_episode() {
    let fs = FaultFs::new();
    let mut primary = open_primary(&fs).expect("primary store");
    primary.set_store_config(StoreConfig {
        probe_min_interval: Duration::ZERO,
        ..StoreConfig::default()
    });
    for stmt in PROLOGUE {
        primary.run(stmt).expect("prologue");
    }
    primary
        .run("UPDATE CLASS Counter SET c0.Val = 1")
        .expect("w");

    let mut replica = replica_over(dir_source(&fs));
    replica.step().expect("bootstrap");
    let fp_before = fingerprint(&mut replica_reader(&replica));

    // Disk fills: primary writes fail; the replica keeps serving its
    // published epoch and sync rounds stay harmless.
    fs.set_disk_full(true);
    assert!(
        primary.run("UPDATE CLASS Counter SET c0.Val = 2").is_err(),
        "primary write must fail under ENOSPC"
    );
    let p = replica.step().expect("sync during ENOSPC");
    assert_eq!(p.applied, 0);
    assert_eq!(fingerprint(&mut replica_reader(&replica)), fp_before);

    // Space frees: the retried write commits and ships.
    fs.set_disk_full(false);
    primary
        .run("UPDATE CLASS Counter SET c0.Val = 2")
        .expect("retried write commits after space frees");
    while replica.shared().applied_seq() < primary_last_seq(&fs) {
        replica.step().expect("catch-up sync");
    }
    assert_eq!(replica.shared().lag(), 0);
    assert_eq!(
        fingerprint(&mut primary),
        fingerprint(&mut replica_reader(&replica))
    );
}

#[test]
fn spawned_replica_tails_in_the_background() {
    let fs = FaultFs::new();
    let mut primary = open_primary(&fs).expect("primary store");
    for stmt in PROLOGUE {
        primary.run(stmt).expect("prologue");
    }
    let replica = replica_over(dir_source(&fs)).spawn(Duration::from_millis(2));
    assert!(
        replica.wait_for_seq(primary_last_seq(&fs), Duration::from_secs(10)),
        "background tailer reaches the frontier"
    );
    primary
        .run("UPDATE CLASS Counter SET c1.Val = 5")
        .expect("w");
    assert!(
        replica.wait_for_seq(primary_last_seq(&fs), Duration::from_secs(10)),
        "background tailer keeps up"
    );
    let core = replica.stop();
    assert_eq!(core.shared().lag(), 0);
    assert_eq!(
        fingerprint(&mut primary),
        fingerprint(&mut replica_reader(&core))
    );
}
