//! The wire-protocol client, and a failover wrapper that retries
//! idempotent reads across the primary and its replicas.
//!
//! [`Client`] is the thin layer: one TCP connection, HELLO handshake,
//! synchronous `execute`, plus a split `start_execute`/`finish_execute`
//! pair so a test (or an interactive front end) can fire a `CANCEL`
//! while a statement is still running.
//!
//! [`FailoverClient`] adds the retry discipline the serving tier's
//! error contract is designed for:
//!
//! * **Reads are idempotent** — on any failure (connection refused,
//!   mid-stream disconnect, typed retryable error) they are retried
//!   with bounded exponential backoff, rotating primary-first through
//!   the replica list. A server-supplied `retry_after` hint takes
//!   precedence over the computed backoff when larger.
//! * **Writes are not** — a write is retried only on errors that
//!   *prove* the statement was never applied: a failed connect, or a
//!   typed retryable shed (`Overloaded`/`ReadOnly`/`ShuttingDown`,
//!   all raised before execution). An I/O error after the statement
//!   was sent is ambiguous (the commit may have landed) and is
//!   surfaced to the caller undisguised.

use crate::frame::{self, ErrorCode, Frame, FrameBuf, Role, PROTO_VERSION};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure. After a statement has been sent this is
    /// *ambiguous*: the server may or may not have applied it.
    Io(std::io::Error),
    /// The peer violated the frame grammar.
    Proto(String),
    /// A typed error frame from the server.
    Server {
        /// The wire error code.
        code: ErrorCode,
        /// Server-suggested wait before retrying (zero when absent).
        retry_after: Duration,
        /// Human-readable diagnostic.
        message: String,
    },
}

impl NetError {
    /// True when the server explicitly said "try again later" — the
    /// statement was not applied.
    pub fn is_retryable(&self) -> bool {
        matches!(self, NetError::Server { code, .. } if code.retryable())
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Proto(m) => write!(f, "protocol: {m}"),
            NetError::Server {
                code,
                retry_after,
                message,
            } => write!(
                f,
                "server {code:?}: {message} (retry after {retry_after:?})"
            ),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

/// A complete statement response.
#[derive(Debug, Clone, Default)]
pub struct Response {
    /// Epoch the statement observed (or committed into).
    pub epoch: u64,
    /// Column names (empty for non-relation outcomes).
    pub columns: Vec<String>,
    /// Rendered cells, one `Vec` per row.
    pub rows: Vec<Vec<String>>,
    /// Rendered non-relational output (DDL acks, reports, …).
    pub info: String,
}

/// One authenticated wire-protocol connection.
pub struct Client {
    stream: TcpStream,
    buf: FrameBuf,
    next_id: u64,
    session: u64,
    role: Role,
    epoch: u64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("session", &self.session)
            .field("role", &self.role)
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connects, handshakes, and authenticates. `token` may be empty
    /// when the server does not require one.
    pub fn connect(addr: &str, token: &str) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut c = Client {
            stream,
            buf: FrameBuf::new(),
            next_id: 1,
            session: 0,
            role: Role::Primary,
            epoch: 0,
        };
        c.send(&Frame::Hello {
            version: PROTO_VERSION,
            token: token.to_string(),
        })?;
        match c.read_frame()? {
            Frame::HelloAck {
                session,
                role,
                epoch,
            } => {
                c.session = session;
                c.role = role;
                c.epoch = epoch;
                Ok(c)
            }
            Frame::Error {
                code,
                retry_after_ms,
                message,
                ..
            } => Err(NetError::Server {
                code,
                retry_after: Duration::from_millis(retry_after_ms),
                message,
            }),
            other => Err(NetError::Proto(format!(
                "expected HELLO_ACK, got {other:?}"
            ))),
        }
    }

    /// Server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Whether the peer is the primary or a replica.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The epoch last reported by the server (handshake or ping).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sets the socket read timeout used while waiting for responses.
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(t)?;
        Ok(())
    }

    /// Executes one statement and collects its full response.
    pub fn execute(&mut self, src: &str) -> Result<Response, NetError> {
        self.execute_with(src, 0)
    }

    /// Executes with a server-side deadline (`0` = none).
    pub fn execute_with(&mut self, src: &str, deadline_ms: u64) -> Result<Response, NetError> {
        let id = self.start_execute(src, deadline_ms)?;
        self.finish_execute(id)
    }

    /// Sends an `Execute` without waiting for the response; returns
    /// the statement id (pass it to [`Client::cancel`] /
    /// [`Client::finish_execute`]).
    pub fn start_execute(&mut self, src: &str, deadline_ms: u64) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Frame::Execute {
            id,
            deadline_ms,
            src: src.to_string(),
        })?;
        Ok(id)
    }

    /// Fires a mid-query cancel for `id`. The server answers the
    /// original statement with a `Cancelled` error frame.
    pub fn cancel(&mut self, id: u64) -> Result<(), NetError> {
        self.send(&Frame::Cancel { id })
    }

    /// Collects the response frames of statement `id`.
    pub fn finish_execute(&mut self, id: u64) -> Result<Response, NetError> {
        let mut resp = Response::default();
        loop {
            match self.read_frame()? {
                Frame::RowsHeader {
                    id: rid,
                    epoch,
                    columns,
                } if rid == id => {
                    resp.epoch = epoch;
                    self.epoch = epoch;
                    resp.columns = columns;
                }
                Frame::Row { id: rid, cells } if rid == id => resp.rows.push(cells),
                Frame::Done {
                    id: rid,
                    epoch,
                    info,
                    ..
                } if rid == id => {
                    if epoch > 0 {
                        resp.epoch = epoch;
                        self.epoch = epoch;
                    }
                    resp.info = info;
                    return Ok(resp);
                }
                // Connection-scoped errors carry id 0 (protocol
                // violations, idle reaping); statement errors carry the
                // statement id. Either terminates this request.
                Frame::Error {
                    id: rid,
                    code,
                    retry_after_ms,
                    message,
                } if rid == id || rid == 0 => {
                    return Err(NetError::Server {
                        code,
                        retry_after: Duration::from_millis(retry_after_ms),
                        message,
                    })
                }
                Frame::Goodbye => {
                    return Err(NetError::Io(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        "server said goodbye",
                    )))
                }
                other => return Err(NetError::Proto(format!("unexpected frame {other:?}"))),
            }
        }
    }

    /// Round-trips a `Ping`; returns `(epoch, replication_lag)`.
    pub fn ping(&mut self) -> Result<(u64, u64), NetError> {
        self.send(&Frame::Ping)?;
        match self.read_frame()? {
            Frame::Pong { epoch, lag } => {
                self.epoch = epoch;
                Ok((epoch, lag))
            }
            Frame::Error {
                code,
                retry_after_ms,
                message,
                ..
            } => Err(NetError::Server {
                code,
                retry_after: Duration::from_millis(retry_after_ms),
                message,
            }),
            other => Err(NetError::Proto(format!("expected PONG, got {other:?}"))),
        }
    }

    /// Polite close: announces `Goodbye` and drops the connection.
    pub fn goodbye(mut self) {
        let _ = self.send(&Frame::Goodbye);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    fn send(&mut self, f: &Frame) -> Result<(), NetError> {
        self.stream.write_all(&frame::encode(f))?;
        Ok(())
    }

    fn read_frame(&mut self) -> Result<Frame, NetError> {
        let mut chunk = [0u8; 8192];
        loop {
            match self.buf.next_frame() {
                Ok(Some(f)) => return Ok(f),
                Ok(None) => {}
                Err(e) => return Err(NetError::Proto(e.to_string())),
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(NetError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(n) => self.buf.push(&chunk[..n]),
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }
}

/// Bounded-exponential retry schedule with deterministic seeded
/// jitter (so chaos runs replay exactly).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub attempts: usize,
    /// Backoff before the second attempt; doubles each retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter band: each wait is scaled by `1 + jitter * u` with
    /// `u ∈ [0, 1)` drawn from the seeded stream.
    pub jitter: f64,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 6,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(250),
            jitter: 0.5,
            seed: 0x00c1_1e47,
        }
    }
}

/// A client that knows the topology: one primary plus read replicas.
pub struct FailoverClient {
    primary: String,
    replicas: Vec<String>,
    token: String,
    policy: RetryPolicy,
    jitter_state: u64,
    conns: std::collections::HashMap<String, Client>,
}

impl FailoverClient {
    /// A failover client over `primary` and `replicas`.
    pub fn new(
        primary: impl Into<String>,
        replicas: Vec<String>,
        token: impl Into<String>,
        policy: RetryPolicy,
    ) -> FailoverClient {
        let seed = policy.seed;
        FailoverClient {
            primary: primary.into(),
            replicas,
            token: token.into(),
            policy,
            jitter_state: seed,
            conns: std::collections::HashMap::new(),
        }
    }

    fn unit(&mut self) -> f64 {
        self.jitter_state = self.jitter_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The wait before retry number `attempt` (1-based), honouring a
    /// server hint when it is longer than the computed backoff.
    fn backoff(&mut self, attempt: usize, hint: Duration) -> Duration {
        let exp = self
            .policy
            .base_delay
            .saturating_mul(1u32 << (attempt.min(16) as u32))
            .min(self.policy.max_delay);
        let jittered = exp + exp.mul_f64(self.policy.jitter * self.unit());
        jittered.max(hint)
    }

    fn conn(&mut self, addr: &str) -> Result<&mut Client, NetError> {
        if !self.conns.contains_key(addr) {
            let c = Client::connect(addr, &self.token)?;
            self.conns.insert(addr.to_string(), c);
        }
        Ok(self.conns.get_mut(addr).expect("just inserted"))
    }

    /// Executes an idempotent read, retrying across the topology:
    /// primary first, then each replica, with bounded-exponential
    /// jittered backoff between rounds. Safe for reads only.
    pub fn execute_read(&mut self, src: &str) -> Result<Response, NetError> {
        let mut targets = vec![self.primary.clone()];
        targets.extend(self.replicas.iter().cloned());
        let mut last: Option<NetError> = None;
        for attempt in 0..self.policy.attempts {
            let addr = targets[attempt % targets.len()].clone();
            let res = self.conn(&addr).and_then(|c| c.execute(src));
            match res {
                Ok(r) => return Ok(r),
                Err(e) => {
                    // Reads are idempotent: any failure mode is safe to
                    // retry, but a dead or confused connection must not
                    // be reused.
                    if matches!(e, NetError::Io(_) | NetError::Proto(_)) {
                        self.conns.remove(&addr);
                    }
                    let hint = match &e {
                        NetError::Server { retry_after, .. } => *retry_after,
                        _ => Duration::ZERO,
                    };
                    let wait = self.backoff(attempt + 1, hint);
                    last = Some(e);
                    if attempt + 1 < self.policy.attempts {
                        std::thread::sleep(wait);
                    }
                }
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Executes a write against the primary. Retries **only** failures
    /// that prove the statement never ran: connect errors and typed
    /// retryable sheds. An ambiguous post-send I/O error is returned
    /// as-is — the caller must decide (the statement may have
    /// committed).
    pub fn execute_write(&mut self, src: &str) -> Result<Response, NetError> {
        let addr = self.primary.clone();
        let mut last: Option<NetError> = None;
        for attempt in 0..self.policy.attempts {
            let sent_before_error;
            let res = match self.conn(&addr) {
                Ok(c) => {
                    sent_before_error = true;
                    c.execute(src)
                }
                Err(e) => {
                    sent_before_error = false;
                    Err(e)
                }
            };
            match res {
                Ok(r) => return Ok(r),
                Err(e) => {
                    if matches!(e, NetError::Io(_) | NetError::Proto(_)) {
                        self.conns.remove(&addr);
                        if sent_before_error {
                            // Ambiguous: the write may have applied.
                            return Err(e);
                        }
                    }
                    if sent_before_error && !e.is_retryable() {
                        return Err(e);
                    }
                    let hint = match &e {
                        NetError::Server { retry_after, .. } => *retry_after,
                        _ => Duration::ZERO,
                    };
                    let wait = self.backoff(attempt + 1, hint);
                    last = Some(e);
                    if attempt + 1 < self.policy.attempts {
                        std::thread::sleep(wait);
                    }
                }
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Pings `addr` (must be the primary or a listed replica),
    /// returning `(epoch, lag)`.
    pub fn ping(&mut self, addr: &str) -> Result<(u64, u64), NetError> {
        let res = self.conn(addr).and_then(|c| c.ping());
        if res.is_err() {
            self.conns.remove(addr);
        }
        res
    }

    /// Drops every cached connection (politely).
    pub fn disconnect_all(&mut self) {
        for (_, c) in self.conns.drain() {
            c.goodbye();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_exponential_and_seed_deterministic() {
        let mk = |seed| {
            let mut f = FailoverClient::new(
                "127.0.0.1:1",
                vec![],
                "",
                RetryPolicy {
                    seed,
                    ..RetryPolicy::default()
                },
            );
            (1..=8)
                .map(|a| f.backoff(a, Duration::ZERO))
                .collect::<Vec<_>>()
        };
        let a = mk(7);
        let b = mk(7);
        let c = mk(8);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different jitter");
        // Bounded: never exceeds max_delay * (1 + jitter).
        let cap = Duration::from_millis(250).mul_f64(1.5);
        assert!(a.iter().all(|d| *d <= cap), "{a:?}");
        // Roughly exponential up to the ceiling: attempt 3 ≥ attempt 1.
        assert!(a[2] >= a[0]);
    }

    #[test]
    fn server_hint_dominates_small_backoff() {
        let mut f = FailoverClient::new("127.0.0.1:1", vec![], "", RetryPolicy::default());
        let hint = Duration::from_secs(2);
        assert_eq!(f.backoff(1, hint), hint);
    }
}
