//! The wire-protocol client, and a failover wrapper that retries
//! idempotent reads across the primary and its replicas.
//!
//! [`Client`] is the thin layer: one TCP connection, HELLO handshake,
//! synchronous `execute`, plus a split `start_execute`/`finish_execute`
//! pair so a test (or an interactive front end) can fire a `CANCEL`
//! while a statement is still running.
//!
//! [`FailoverClient`] adds the retry discipline the serving tier's
//! error contract is designed for:
//!
//! * **Reads are idempotent** — on any failure (connection refused,
//!   mid-stream disconnect, typed retryable error) they are retried
//!   with bounded exponential backoff, rotating primary-first through
//!   the replica list. A server-supplied `retry_after` hint takes
//!   precedence over the computed backoff when larger.
//! * **Writes are not** — a write is retried only on errors that
//!   *prove* the statement was never applied: a failed connect, or a
//!   typed retryable shed (`Overloaded`/`ReadOnly`/`ShuttingDown`,
//!   all raised before execution). An I/O error after the statement
//!   was sent is ambiguous (the commit may have landed) and is
//!   surfaced to the caller undisguised.

use crate::frame::{self, ErrorCode, Frame, FrameBuf, Role, PROTO_VERSION};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure. After a statement has been sent this is
    /// *ambiguous*: the server may or may not have applied it.
    Io(std::io::Error),
    /// The peer violated the frame grammar.
    Proto(String),
    /// A typed error frame from the server.
    Server {
        /// The wire error code.
        code: ErrorCode,
        /// Server-suggested wait before retrying (zero when absent).
        retry_after: Duration,
        /// Human-readable diagnostic.
        message: String,
    },
    /// The endpoint is not the primary (a replica, or a fenced
    /// ex-primary): the statement was refused *before* execution, so
    /// retrying it elsewhere is unconditionally safe. `leader_hint` is
    /// the server's best guess at the current primary (may be empty).
    NotPrimary {
        /// Address of the believed-current primary; empty when the
        /// endpoint has no hint.
        leader_hint: String,
    },
    /// A replica was skipped because its replication lag exceeded the
    /// client's configured bound.
    ReplicaLagging {
        /// The lag the health probe reported.
        lag: u64,
        /// The configured bound it exceeded.
        bound: u64,
    },
}

impl NetError {
    /// True when the statement provably did not execute and may be
    /// retried unchanged: a typed retryable shed, a `NotPrimary`
    /// redirect, or a lag-bound skip.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Server { code, .. } => code.retryable(),
            NetError::NotPrimary { .. } | NetError::ReplicaLagging { .. } => true,
            _ => false,
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Proto(m) => write!(f, "protocol: {m}"),
            NetError::Server {
                code,
                retry_after,
                message,
            } => write!(
                f,
                "server {code:?}: {message} (retry after {retry_after:?})"
            ),
            NetError::NotPrimary { leader_hint } if leader_hint.is_empty() => {
                write!(f, "endpoint is not the primary (no leader hint)")
            }
            NetError::NotPrimary { leader_hint } => {
                write!(
                    f,
                    "endpoint is not the primary (leader hint: {leader_hint})"
                )
            }
            NetError::ReplicaLagging { lag, bound } => write!(
                f,
                "replica skipped: replication lag {lag} exceeds bound {bound}"
            ),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

/// The health word a `PONG` carries: everything a failover-aware
/// client needs to pick a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Health {
    /// What the endpoint currently is.
    pub role: Role,
    /// The primary generation (fencing term) it serves or tails.
    pub generation: u64,
    /// Latest epoch it serves.
    pub epoch: u64,
    /// Replication lag in commit units (0 on the primary).
    pub lag: u64,
}

/// A complete statement response.
#[derive(Debug, Clone, Default)]
pub struct Response {
    /// Epoch the statement observed (or committed into).
    pub epoch: u64,
    /// Column names (empty for non-relation outcomes).
    pub columns: Vec<String>,
    /// Rendered cells, one `Vec` per row.
    pub rows: Vec<Vec<String>>,
    /// Rendered non-relational output (DDL acks, reports, …).
    pub info: String,
}

/// One authenticated wire-protocol connection.
pub struct Client {
    stream: TcpStream,
    buf: FrameBuf,
    next_id: u64,
    session: u64,
    role: Role,
    epoch: u64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("session", &self.session)
            .field("role", &self.role)
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connects, handshakes, and authenticates. `token` may be empty
    /// when the server does not require one.
    pub fn connect(addr: &str, token: &str) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut c = Client {
            stream,
            buf: FrameBuf::new(),
            next_id: 1,
            session: 0,
            role: Role::Primary,
            epoch: 0,
        };
        c.send(&Frame::Hello {
            version: PROTO_VERSION,
            token: token.to_string(),
        })?;
        match c.read_frame()? {
            Frame::HelloAck {
                session,
                role,
                epoch,
            } => {
                c.session = session;
                c.role = role;
                c.epoch = epoch;
                Ok(c)
            }
            Frame::Error {
                code,
                retry_after_ms,
                message,
                ..
            } => Err(NetError::Server {
                code,
                retry_after: Duration::from_millis(retry_after_ms),
                message,
            }),
            other => Err(NetError::Proto(format!(
                "expected HELLO_ACK, got {other:?}"
            ))),
        }
    }

    /// Server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Whether the peer is the primary or a replica.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The epoch last reported by the server (handshake or ping).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sets the socket read timeout used while waiting for responses.
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(t)?;
        Ok(())
    }

    /// Executes one statement and collects its full response.
    pub fn execute(&mut self, src: &str) -> Result<Response, NetError> {
        self.execute_with(src, 0)
    }

    /// Executes with a server-side deadline (`0` = none).
    pub fn execute_with(&mut self, src: &str, deadline_ms: u64) -> Result<Response, NetError> {
        let id = self.start_execute(src, deadline_ms)?;
        self.finish_execute(id)
    }

    /// Sends an `Execute` without waiting for the response; returns
    /// the statement id (pass it to [`Client::cancel`] /
    /// [`Client::finish_execute`]).
    pub fn start_execute(&mut self, src: &str, deadline_ms: u64) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Frame::Execute {
            id,
            deadline_ms,
            src: src.to_string(),
        })?;
        Ok(id)
    }

    /// Fires a mid-query cancel for `id`. The server answers the
    /// original statement with a `Cancelled` error frame.
    pub fn cancel(&mut self, id: u64) -> Result<(), NetError> {
        self.send(&Frame::Cancel { id })
    }

    /// Prepares `src` (the statement body, with `?n` parameters) under
    /// `name` on this connection. Prepared names do not survive a
    /// reconnect — re-prepare after failover.
    pub fn prepare(&mut self, name: &str, src: &str) -> Result<Response, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Frame::Prepare {
            id,
            deadline_ms: 0,
            name: name.to_string(),
            src: src.to_string(),
        })?;
        self.finish_execute(id)
    }

    /// Runs a statement prepared earlier on this connection. `args` are
    /// argument literals in XSQL syntax (e.g. `12000`, `"Smith"`), one
    /// per `?n` in the prepared body.
    pub fn execute_prepared(&mut self, name: &str, args: &[&str]) -> Result<Response, NetError> {
        self.execute_prepared_with(name, args, 0)
    }

    /// [`Client::execute_prepared`] with a server-side deadline
    /// (`0` = none).
    pub fn execute_prepared_with(
        &mut self,
        name: &str,
        args: &[&str],
        deadline_ms: u64,
    ) -> Result<Response, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Frame::ExecutePrepared {
            id,
            deadline_ms,
            name: name.to_string(),
            args: args.iter().map(|s| s.to_string()).collect(),
        })?;
        self.finish_execute(id)
    }

    /// Collects the response frames of statement `id`.
    pub fn finish_execute(&mut self, id: u64) -> Result<Response, NetError> {
        let mut resp = Response::default();
        loop {
            match self.read_frame()? {
                Frame::RowsHeader {
                    id: rid,
                    epoch,
                    columns,
                } if rid == id => {
                    resp.epoch = epoch;
                    self.epoch = epoch;
                    resp.columns = columns;
                }
                Frame::Row { id: rid, cells } if rid == id => resp.rows.push(cells),
                Frame::Done {
                    id: rid,
                    epoch,
                    info,
                    ..
                } if rid == id => {
                    if epoch > 0 {
                        resp.epoch = epoch;
                        self.epoch = epoch;
                    }
                    resp.info = info;
                    return Ok(resp);
                }
                // Connection-scoped errors carry id 0 (protocol
                // violations, idle reaping); statement errors carry the
                // statement id. Either terminates this request.
                Frame::Error {
                    id: rid,
                    code,
                    retry_after_ms,
                    message,
                } if rid == id || rid == 0 => {
                    return Err(NetError::Server {
                        code,
                        retry_after: Duration::from_millis(retry_after_ms),
                        message,
                    })
                }
                Frame::NotPrimary {
                    id: rid,
                    leader_hint,
                } if rid == id || rid == 0 => return Err(NetError::NotPrimary { leader_hint }),
                Frame::Goodbye => {
                    return Err(NetError::Io(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        "server said goodbye",
                    )))
                }
                other => return Err(NetError::Proto(format!("unexpected frame {other:?}"))),
            }
        }
    }

    /// Round-trips a `Ping`; returns the endpoint's [`Health`] word
    /// (role, generation, epoch, lag).
    pub fn ping(&mut self) -> Result<Health, NetError> {
        self.send(&Frame::Ping)?;
        match self.read_frame()? {
            Frame::Pong {
                role,
                generation,
                epoch,
                lag,
            } => {
                self.epoch = epoch;
                self.role = role;
                Ok(Health {
                    role,
                    generation,
                    epoch,
                    lag,
                })
            }
            Frame::Error {
                code,
                retry_after_ms,
                message,
                ..
            } => Err(NetError::Server {
                code,
                retry_after: Duration::from_millis(retry_after_ms),
                message,
            }),
            other => Err(NetError::Proto(format!("expected PONG, got {other:?}"))),
        }
    }

    /// Sends a token-gated `PROMOTE` admin frame; on success the peer
    /// is (now) the primary and the returned value is the generation
    /// it accepts writes under. Idempotent against an existing
    /// primary.
    pub fn promote(&mut self) -> Result<u64, NetError> {
        self.send(&Frame::Promote)?;
        match self.read_frame()? {
            Frame::PromoteAck { generation } => {
                self.role = Role::Primary;
                Ok(generation)
            }
            Frame::Error {
                code,
                retry_after_ms,
                message,
                ..
            } => Err(NetError::Server {
                code,
                retry_after: Duration::from_millis(retry_after_ms),
                message,
            }),
            other => Err(NetError::Proto(format!(
                "expected PROMOTE_ACK, got {other:?}"
            ))),
        }
    }

    /// Polite close: announces `Goodbye` and drops the connection.
    pub fn goodbye(mut self) {
        let _ = self.send(&Frame::Goodbye);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    fn send(&mut self, f: &Frame) -> Result<(), NetError> {
        self.stream.write_all(&frame::encode(f))?;
        Ok(())
    }

    fn read_frame(&mut self) -> Result<Frame, NetError> {
        let mut chunk = [0u8; 8192];
        loop {
            match self.buf.next_frame() {
                Ok(Some(f)) => return Ok(f),
                Ok(None) => {}
                Err(e) => return Err(NetError::Proto(e.to_string())),
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(NetError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(n) => self.buf.push(&chunk[..n]),
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }
}

/// Bounded-exponential retry schedule with deterministic seeded
/// jitter (so chaos runs replay exactly).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub attempts: usize,
    /// Backoff before the second attempt; doubles each retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter band: each wait is scaled by `1 + jitter * u` with
    /// `u ∈ [0, 1)` drawn from the seeded stream.
    pub jitter: f64,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 6,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(250),
            jitter: 0.5,
            seed: 0x00c1_1e47,
        }
    }
}

/// A client that knows the topology: one primary plus read replicas.
pub struct FailoverClient {
    primary: String,
    replicas: Vec<String>,
    token: String,
    policy: RetryPolicy,
    jitter_state: u64,
    conns: std::collections::HashMap<String, Client>,
    /// When set, a read is routed to a replica only after a health
    /// probe shows its lag at or under this bound. `None` routes reads
    /// to replicas regardless of how far behind they are.
    max_replica_lag: Option<u64>,
}

impl FailoverClient {
    /// A failover client over `primary` and `replicas`.
    pub fn new(
        primary: impl Into<String>,
        replicas: Vec<String>,
        token: impl Into<String>,
        policy: RetryPolicy,
    ) -> FailoverClient {
        let seed = policy.seed;
        FailoverClient {
            primary: primary.into(),
            replicas,
            token: token.into(),
            policy,
            jitter_state: seed,
            conns: std::collections::HashMap::new(),
            max_replica_lag: None,
        }
    }

    /// Bounds how stale a replica may be (in commit units) before
    /// reads skip it. Unset, reads rotate onto replicas no matter how
    /// far behind they are.
    pub fn with_max_replica_lag(mut self, bound: u64) -> FailoverClient {
        self.max_replica_lag = Some(bound);
        self
    }

    /// The address writes currently target (follows `NotPrimary`
    /// leader hints as failovers happen).
    pub fn primary_addr(&self) -> &str {
        &self.primary
    }

    fn unit(&mut self) -> f64 {
        self.jitter_state = self.jitter_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The wait before retry number `attempt` (1-based), honouring a
    /// server hint when it is longer than the computed backoff.
    fn backoff(&mut self, attempt: usize, hint: Duration) -> Duration {
        let exp = self
            .policy
            .base_delay
            .saturating_mul(1u32 << (attempt.min(16) as u32))
            .min(self.policy.max_delay);
        let jittered = exp + exp.mul_f64(self.policy.jitter * self.unit());
        jittered.max(hint)
    }

    fn conn(&mut self, addr: &str) -> Result<&mut Client, NetError> {
        if !self.conns.contains_key(addr) {
            let c = Client::connect(addr, &self.token)?;
            self.conns.insert(addr.to_string(), c);
        }
        Ok(self.conns.get_mut(addr).expect("just inserted"))
    }

    /// Executes an idempotent read, retrying across the topology:
    /// primary first, then each replica, with bounded-exponential
    /// jittered backoff between rounds. Safe for reads only.
    pub fn execute_read(&mut self, src: &str) -> Result<Response, NetError> {
        let mut targets = vec![self.primary.clone()];
        targets.extend(self.replicas.iter().cloned());
        let mut last: Option<NetError> = None;
        for attempt in 0..self.policy.attempts {
            let addr = targets[attempt % targets.len()].clone();
            // A bounded-staleness read must not land on a replica that
            // has fallen too far behind: probe its health first and
            // skip it (burning this attempt) when the lag is over the
            // bound.
            if addr != self.primary {
                if let Some(bound) = self.max_replica_lag {
                    match self.ping(&addr) {
                        Ok(h) if h.lag > bound => {
                            last = Some(NetError::ReplicaLagging { lag: h.lag, bound });
                            continue;
                        }
                        Ok(_) => {}
                        Err(e) => {
                            let wait = self.backoff(attempt + 1, Duration::ZERO);
                            last = Some(e);
                            if attempt + 1 < self.policy.attempts {
                                std::thread::sleep(wait);
                            }
                            continue;
                        }
                    }
                }
            }
            let res = self.conn(&addr).and_then(|c| c.execute(src));
            match res {
                Ok(r) => return Ok(r),
                Err(e) => {
                    // Reads are idempotent: any failure mode is safe to
                    // retry, but a dead or confused connection must not
                    // be reused.
                    if matches!(e, NetError::Io(_) | NetError::Proto(_)) {
                        self.conns.remove(&addr);
                    }
                    let hint = match &e {
                        NetError::Server { retry_after, .. } => *retry_after,
                        _ => Duration::ZERO,
                    };
                    let wait = self.backoff(attempt + 1, hint);
                    last = Some(e);
                    if attempt + 1 < self.policy.attempts {
                        std::thread::sleep(wait);
                    }
                }
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Executes a write against the primary. Retries **only** failures
    /// that prove the statement never ran: connect errors, typed
    /// retryable sheds, and `NotPrimary` redirects (raised before the
    /// statement reaches an engine). A redirect's leader hint — or,
    /// when the hint is empty, a health sweep of the known topology —
    /// re-aims subsequent attempts. An ambiguous post-send I/O error
    /// is returned as-is — the caller must decide (the statement may
    /// have committed).
    pub fn execute_write(&mut self, src: &str) -> Result<Response, NetError> {
        let mut addr = self.primary.clone();
        let mut last: Option<NetError> = None;
        for attempt in 0..self.policy.attempts {
            let sent_before_error;
            let res = match self.conn(&addr) {
                Ok(c) => {
                    sent_before_error = true;
                    c.execute(src)
                }
                Err(e) => {
                    sent_before_error = false;
                    Err(e)
                }
            };
            match res {
                Ok(r) => {
                    self.primary = addr;
                    return Ok(r);
                }
                Err(NetError::NotPrimary { leader_hint }) => {
                    // Provably pre-execution: the endpoint refused the
                    // statement before any engine saw it. Follow the
                    // hint; with none, probe the topology for whoever
                    // now reports itself primary.
                    let next = if leader_hint.is_empty() {
                        self.discover_primary()
                    } else {
                        Some(leader_hint.clone())
                    };
                    if let Some(next) = next {
                        if next != addr {
                            addr = next.clone();
                            self.primary = next;
                        }
                    }
                    let wait = self.backoff(attempt + 1, Duration::ZERO);
                    last = Some(NetError::NotPrimary { leader_hint });
                    if attempt + 1 < self.policy.attempts {
                        std::thread::sleep(wait);
                    }
                }
                Err(e) => {
                    if matches!(e, NetError::Io(_) | NetError::Proto(_)) {
                        self.conns.remove(&addr);
                        if sent_before_error {
                            // Ambiguous: the write may have applied.
                            return Err(e);
                        }
                    }
                    if sent_before_error && !e.is_retryable() {
                        return Err(e);
                    }
                    let hint = match &e {
                        NetError::Server { retry_after, .. } => *retry_after,
                        _ => Duration::ZERO,
                    };
                    let wait = self.backoff(attempt + 1, hint);
                    last = Some(e);
                    if attempt + 1 < self.policy.attempts {
                        std::thread::sleep(wait);
                    }
                }
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Pings `addr` (must be the primary or a listed replica),
    /// returning its [`Health`] word.
    pub fn ping(&mut self, addr: &str) -> Result<Health, NetError> {
        let res = self.conn(addr).and_then(|c| c.ping());
        if res.is_err() {
            self.conns.remove(addr);
        }
        res
    }

    /// Health-sweeps the known topology and returns the first address
    /// reporting itself primary, if any.
    fn discover_primary(&mut self) -> Option<String> {
        let mut candidates = vec![self.primary.clone()];
        candidates.extend(self.replicas.iter().cloned());
        for addr in candidates {
            if let Ok(h) = self.ping(&addr) {
                if h.role == Role::Primary {
                    return Some(addr);
                }
            }
        }
        None
    }

    /// Drops every cached connection (politely).
    pub fn disconnect_all(&mut self) {
        for (_, c) in self.conns.drain() {
            c.goodbye();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_exponential_and_seed_deterministic() {
        let mk = |seed| {
            let mut f = FailoverClient::new(
                "127.0.0.1:1",
                vec![],
                "",
                RetryPolicy {
                    seed,
                    ..RetryPolicy::default()
                },
            );
            (1..=8)
                .map(|a| f.backoff(a, Duration::ZERO))
                .collect::<Vec<_>>()
        };
        let a = mk(7);
        let b = mk(7);
        let c = mk(8);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different jitter");
        // Bounded: never exceeds max_delay * (1 + jitter).
        let cap = Duration::from_millis(250).mul_f64(1.5);
        assert!(a.iter().all(|d| *d <= cap), "{a:?}");
        // Roughly exponential up to the ceiling: attempt 3 ≥ attempt 1.
        assert!(a[2] >= a[0]);
    }

    #[test]
    fn server_hint_dominates_small_backoff() {
        let mut f = FailoverClient::new("127.0.0.1:1", vec![], "", RetryPolicy::default());
        let hint = Duration::from_secs(2);
        assert_eq!(f.backoff(1, hint), hint);
    }

    /// A minimal scripted peer: handshakes, answers `Ping` with a
    /// fixed health word, `Execute` with `Done { info }`, and (when
    /// `redirect_to` is set) refuses every Execute with `NotPrimary`.
    fn fake_server(
        role: Role,
        lag: u64,
        info: &'static str,
        redirect_to: Option<String>,
    ) -> String {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut s) = stream else { return };
                let redirect = redirect_to.clone();
                std::thread::spawn(move || {
                    let mut buf = FrameBuf::new();
                    let mut chunk = [0u8; 4096];
                    loop {
                        let f = loop {
                            match buf.next_frame() {
                                Ok(Some(f)) => break f,
                                Ok(None) => {}
                                Err(_) => return,
                            }
                            match s.read(&mut chunk) {
                                Ok(0) => return,
                                Ok(n) => buf.push(&chunk[..n]),
                                Err(_) => return,
                            }
                        };
                        let reply = match f {
                            Frame::Hello { .. } => Frame::HelloAck {
                                session: 1,
                                role,
                                epoch: 7,
                            },
                            Frame::Ping => Frame::Pong {
                                role,
                                generation: 2,
                                epoch: 7,
                                lag,
                            },
                            Frame::Execute { id, .. } => match &redirect {
                                Some(hint) => Frame::NotPrimary {
                                    id,
                                    leader_hint: hint.clone(),
                                },
                                None => Frame::Done {
                                    id,
                                    epoch: 7,
                                    rows: 0,
                                    info: info.into(),
                                },
                            },
                            _ => return,
                        };
                        if s.write_all(&frame::encode(&reply)).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(5),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn unbounded_reads_rotate_onto_a_lagging_replica() {
        // Dead primary, replica 1000 units behind: with no lag bound
        // the read must still rotate onto the replica and succeed.
        let replica = fake_server(Role::Replica, 1000, "from-replica", None);
        let mut f = FailoverClient::new("127.0.0.1:1", vec![replica], "", fast_policy());
        let r = f.execute_read("SELECT X FROM Counter X").expect("read");
        assert_eq!(r.info, "from-replica");
    }

    #[test]
    fn bounded_reads_skip_a_replica_over_the_lag_bound() {
        let replica = fake_server(Role::Replica, 1000, "from-replica", None);
        let mut f = FailoverClient::new("127.0.0.1:1", vec![replica], "", fast_policy())
            .with_max_replica_lag(5);
        let err = f
            .execute_read("SELECT X FROM Counter X")
            .expect_err("every target is dead or too stale");
        assert!(
            matches!(
                err,
                NetError::ReplicaLagging {
                    lag: 1000,
                    bound: 5
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn bounded_reads_accept_a_replica_within_the_lag_bound() {
        let replica = fake_server(Role::Replica, 3, "from-replica", None);
        let mut f = FailoverClient::new("127.0.0.1:1", vec![replica], "", fast_policy())
            .with_max_replica_lag(5);
        let r = f.execute_read("SELECT X FROM Counter X").expect("read");
        assert_eq!(r.info, "from-replica");
    }

    #[test]
    fn writes_follow_a_not_primary_leader_hint() {
        let new_primary = fake_server(Role::Primary, 0, "from-new-primary", None);
        let deposed = fake_server(Role::Fenced, 0, "", Some(new_primary.clone()));
        let mut f = FailoverClient::new(deposed, vec![], "", fast_policy());
        let r = f.execute_write("INSERT Counter c0").expect("redirected");
        assert_eq!(r.info, "from-new-primary");
        assert_eq!(f.primary_addr(), new_primary, "client re-aimed at the hint");
    }

    #[test]
    fn writes_discover_the_primary_when_the_hint_is_empty() {
        let new_primary = fake_server(Role::Primary, 0, "from-new-primary", None);
        let deposed = fake_server(Role::Fenced, 0, "", Some(String::new()));
        let mut f = FailoverClient::new(deposed, vec![new_primary.clone()], "", fast_policy());
        let r = f.execute_write("INSERT Counter c0").expect("discovered");
        assert_eq!(r.info, "from-new-primary");
        assert_eq!(f.primary_addr(), new_primary);
    }

    #[test]
    fn ping_returns_the_full_health_word() {
        let replica = fake_server(Role::Replica, 42, "", None);
        let mut f = FailoverClient::new(replica.clone(), vec![], "", fast_policy());
        let h = f.ping(&replica).expect("ping");
        assert_eq!(
            h,
            Health {
                role: Role::Replica,
                generation: 2,
                epoch: 7,
                lag: 42,
            }
        );
    }
}
