//! How a replica reads the primary's store files.
//!
//! WAL shipping here is *pull over a shared medium*: the replica
//! periodically re-reads the primary's store directory — manifest,
//! checkpoint image, WAL segments — through a [`ShipSource`]. The
//! source abstracts the medium (a real directory, an in-memory fault
//! filesystem in tests) and is deliberately dumb: fetch one file by
//! name, or report it absent. All replication intelligence (what to
//! fetch, gap detection, idempotent replay) lives in
//! [`crate::replica`], which only assumes the guarantees the store
//! format already provides: the manifest is the authoritative file
//! list, segments are checksummed and ordered by sequence number, and
//! a torn read of a segment still yields a valid record *prefix*.
//!
//! [`ChaosSource`] wraps any source with seeded, deterministic network
//! misbehaviour — stale re-reads (delayed shipping), repeated segments
//! (duplicated shipping), truncated bytes (torn shipping) — so the
//! chaos harness can prove convergence under all of it.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use storage::StorageFs;

/// One file-fetch away from the primary's store directory.
pub trait ShipSource: Send {
    /// Reads `name` from the primary's store directory; `Ok(None)`
    /// when the file does not exist (yet, or any more).
    fn fetch(&mut self, name: &str) -> io::Result<Option<Vec<u8>>>;
}

/// Ships from a store directory through a [`StorageFs`] — the real
/// filesystem in production, a shared [`storage::fault::FaultFs`]
/// clone in tests.
pub struct DirSource {
    fs: Box<dyn StorageFs>,
    dir: PathBuf,
}

impl DirSource {
    /// A source over `dir` on `fs`.
    pub fn new(fs: Box<dyn StorageFs>, dir: impl Into<PathBuf>) -> DirSource {
        DirSource {
            fs,
            dir: dir.into(),
        }
    }
}

impl ShipSource for DirSource {
    fn fetch(&mut self, name: &str) -> io::Result<Option<Vec<u8>>> {
        let path = self.dir.join(name);
        if !self.fs.exists(&path) {
            return Ok(None);
        }
        match self.fs.read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            // Deleted between the existence check and the read (the
            // primary retires segments at checkpoints): absent, not an
            // error.
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Deterministic, seeded shipping faults over any inner source.
///
/// Each fetch draws from a splitmix64 stream keyed by the seed, so a
/// given seed produces one exact fault schedule:
///
/// * **delayed** — with probability `delay`, serve the *previous*
///   fetch of this file (a stale cached copy) instead of re-reading;
///   the replica sees old state and must simply stay behind, never
///   diverge.
/// * **duplicated** — stale re-serves also re-deliver records the
///   replica already applied; idempotent replay (sequence-number
///   filtering) must skip them.
/// * **torn** — with probability `torn`, truncate the fetched bytes at
///   a drawn offset; checksummed scanning must salvage the valid
///   prefix and pick the tail up on a later round.
pub struct ChaosSource<S> {
    inner: S,
    state: u64,
    delay: f64,
    torn: f64,
    cache: HashMap<String, Vec<u8>>,
}

impl<S: ShipSource> ChaosSource<S> {
    /// Wraps `inner` with a fault schedule drawn from `seed`.
    pub fn new(inner: S, seed: u64, delay: f64, torn: f64) -> ChaosSource<S> {
        ChaosSource {
            inner,
            state: seed,
            delay,
            torn,
            cache: HashMap::new(),
        }
    }

    fn unit(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<S: ShipSource> ShipSource for ChaosSource<S> {
    fn fetch(&mut self, name: &str) -> io::Result<Option<Vec<u8>>> {
        if self.unit() < self.delay {
            if let Some(stale) = self.cache.get(name) {
                return Ok(Some(stale.clone()));
            }
            // Nothing cached to re-serve: the "delayed" ship looks like
            // the file not having arrived yet.
            return Ok(None);
        }
        let fetched = self.inner.fetch(name)?;
        if let Some(bytes) = &fetched {
            self.cache.insert(name.to_string(), bytes.clone());
        }
        match fetched {
            Some(bytes) if !bytes.is_empty() && self.unit() < self.torn => {
                let cut = 1 + (self.unit() * (bytes.len() - 1).max(1) as f64) as usize;
                Ok(Some(bytes[..cut.min(bytes.len())].to_vec()))
            }
            other => Ok(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MapSource(HashMap<String, Vec<u8>>);

    impl ShipSource for MapSource {
        fn fetch(&mut self, name: &str) -> io::Result<Option<Vec<u8>>> {
            Ok(self.0.get(name).cloned())
        }
    }

    #[test]
    fn chaos_schedule_is_a_pure_function_of_the_seed() {
        let files: HashMap<String, Vec<u8>> = [
            ("a".to_string(), vec![1u8; 64]),
            ("b".to_string(), vec![2u8; 64]),
        ]
        .into();
        let run = |seed| {
            let mut src = ChaosSource::new(MapSource(files.clone()), seed, 0.4, 0.4);
            (0..32)
                .map(|i| src.fetch(if i % 2 == 0 { "a" } else { "b" }).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn torn_fetch_is_a_strict_prefix() {
        let files: HashMap<String, Vec<u8>> =
            [("a".to_string(), (0..=255u8).collect::<Vec<u8>>())].into();
        let mut src = ChaosSource::new(MapSource(files.clone()), 3, 0.0, 1.0);
        for _ in 0..16 {
            let got = src.fetch("a").unwrap().unwrap();
            assert!(!got.is_empty() && got.len() <= 256);
            assert_eq!(got[..], files["a"][..got.len()]);
        }
    }
}
