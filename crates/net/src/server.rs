//! The TCP front end: one listener, one thread per admitted
//! connection, layered on the service executor (primary) or a
//! replica's published epochs (read-only).
//!
//! ## Robustness contract
//!
//! * **Bounded accept.** At most `max_conns` live connections; an
//!   accept beyond that is answered with a typed `Overloaded` error
//!   frame carrying a *jittered* retry-after — shed, never silently
//!   dropped.
//! * **Deadlines everywhere.** The handshake must complete within
//!   `handshake_timeout`; a partially received frame older than
//!   `frame_timeout` is a protocol error (a peer cannot wedge a
//!   connection by sending half a frame); writes time out after
//!   `write_timeout`; a connection with no traffic for `idle_timeout`
//!   is reaped with a typed `IdleTimeout` frame.
//! * **Mid-query CANCEL.** Each connection splits into a socket
//!   *reader* thread and a statement *executor* thread. The reader
//!   parses frames as they arrive, so a `CANCEL` lands while the
//!   executor is mid-statement: it trips the statement's cooperative
//!   [`CancelFlag`] directly. A client disconnect does the same — an
//!   abandoned runaway query stops consuming the server.
//! * **Graceful drain.** [`Server::begin_drain`] stops admitting new
//!   connections (refused with `ShuttingDown`) and lets in-flight
//!   statements finish; each connection closes after answering its
//!   next request with `ShuttingDown`. [`Server::shutdown`] then joins
//!   every thread.
//! * **Malformed input is answered, then closed.** Any byte sequence
//!   that cannot become a valid frame gets a final typed `Protocol`
//!   error frame before the connection closes; the server never
//!   panics and never just vanishes on garbage (the fuzz suite sweeps
//!   every truncation and corruption position).

use crate::frame::{self, ErrorCode, Frame, FrameBuf, Role, PROTO_VERSION};
use crate::replica::ReplicaShared;
use service::{
    ExecResult, QueryContext, ReadResult, RetryJitter, Service, ServiceError, SessionHandle,
};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xsql::eval::CancelFlag;
use xsql::{parse, Outcome, Session};

/// Network-tier knobs. Defaults suit an interactive deployment; tests
/// shrink the timeouts to force the reaping paths.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum live connections; accepts beyond this are shed with a
    /// jittered `Overloaded` error frame.
    pub max_conns: usize,
    /// Shared-secret token clients must present in HELLO; `None`
    /// accepts any.
    pub auth_token: Option<String>,
    /// HELLO must arrive within this after connect.
    pub handshake_timeout: Duration,
    /// A connection with no complete frame for this long is reaped.
    pub idle_timeout: Duration,
    /// A *partial* frame older than this is a protocol error.
    pub frame_timeout: Duration,
    /// Per-write socket deadline (a stuck client cannot wedge the
    /// executor).
    pub write_timeout: Duration,
    /// Base retry-after suggested on server-side sheds (jittered).
    pub retry_after: Duration,
    /// Jitter band fraction on shed hints.
    pub retry_jitter: f64,
    /// Seed of the server's jitter stream.
    pub jitter_seed: u64,
    /// Socket poll granularity; bounds how fast drain/stop/idle are
    /// noticed.
    pub poll_interval: Duration,
    /// Address of the believed-current primary, carried in
    /// `NotPrimary` redirects so clients can follow. Best-effort: may
    /// be stale after a failover; empty when unknown.
    pub leader_hint: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_conns: 64,
            auth_token: None,
            handshake_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(300),
            frame_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(10),
            retry_after: Duration::from_millis(50),
            retry_jitter: 0.5,
            jitter_seed: 0x5eed_07e7,
            poll_interval: Duration::from_millis(25),
            leader_hint: None,
        }
    }
}

/// What the server serves: the writable primary (over the service
/// executor) or a WAL-shipped read replica.
pub enum Backend {
    /// Full read/write service.
    Primary(Arc<Service>),
    /// Snapshot reads at the replica's published epochs; writes are
    /// answered with a `NotPrimary` redirect.
    Replica(Arc<ReplicaShared>),
}

impl Backend {
    /// The live role: a primary whose writer observed a newer
    /// generation reports itself fenced.
    fn role(&self) -> Role {
        match self {
            Backend::Primary(svc) if svc.fenced().is_some() => Role::Fenced,
            Backend::Primary(_) => Role::Primary,
            Backend::Replica(_) => Role::Replica,
        }
    }

    fn generation(&self) -> u64 {
        match self {
            Backend::Primary(svc) => svc.generation(),
            Backend::Replica(r) => r.generation(),
        }
    }

    fn epoch_seq(&self) -> u64 {
        match self {
            Backend::Primary(svc) => svc.epoch().seq,
            Backend::Replica(r) => r.epoch().seq,
        }
    }

    fn lag(&self) -> u64 {
        match self {
            Backend::Primary(_) => 0,
            Backend::Replica(r) => r.lag(),
        }
    }

    fn registry(&self) -> Arc<telemetry::Registry> {
        match self {
            Backend::Primary(svc) => Arc::clone(svc.registry()),
            Backend::Replica(r) => Arc::clone(r.registry()),
        }
    }
}

/// Wire encoding of [`Role`] for the `net_role` gauge.
fn role_gauge_value(role: Role) -> i64 {
    match role {
        Role::Primary => 0,
        Role::Replica => 1,
        Role::Fenced => 2,
    }
}

/// One-shot callback that turns this process's replica into a primary:
/// stop tailing, recover a writable session over the same artifacts,
/// bump the generation, start a service. Supplied by the embedder via
/// [`Server::set_promote_hook`].
pub type PromoteHook = Box<dyn FnOnce() -> Result<Arc<Service>, String> + Send>;

/// Cached handles for the network tier's hot-path metrics.
struct NetMetrics {
    accepted: Arc<telemetry::Counter>,
    shed_conn_limit: Arc<telemetry::Counter>,
    shed_drain: Arc<telemetry::Counter>,
    protocol_errors: Arc<telemetry::Counter>,
    idle_reaped: Arc<telemetry::Counter>,
    cancels: Arc<telemetry::Counter>,
    requests: Arc<telemetry::Counter>,
    conns: Arc<telemetry::Gauge>,
    role: Arc<telemetry::Gauge>,
    fenced_refusals: Arc<telemetry::Counter>,
    promotions: Arc<telemetry::Counter>,
}

impl NetMetrics {
    fn new(r: &Arc<telemetry::Registry>) -> NetMetrics {
        NetMetrics {
            accepted: r.counter("net_accepted_total", &[]),
            shed_conn_limit: r.counter("net_shed_total", &[("reason", "conn_limit")]),
            shed_drain: r.counter("net_shed_total", &[("reason", "drain")]),
            protocol_errors: r.counter("net_protocol_errors_total", &[]),
            idle_reaped: r.counter("net_idle_reaped_total", &[]),
            cancels: r.counter("net_cancels_total", &[]),
            requests: r.counter("net_requests_total", &[]),
            conns: r.gauge("net_conns", &[]),
            role: r.gauge("net_role", &[]),
            fenced_refusals: r.counter("net_fenced_refusals_total", &[]),
            promotions: r.counter("net_promotions_total", &[]),
        }
    }
}

struct ServerInner {
    cfg: ServerConfig,
    /// Swapped Replica → Primary by a successful `PROMOTE`.
    backend: RwLock<Backend>,
    promote_hook: Mutex<Option<PromoteHook>>,
    conns: AtomicUsize,
    draining: AtomicBool,
    stopping: AtomicBool,
    jitter: RetryJitter,
    /// Rebuilt on promotion so the gauges land in the new primary's
    /// registry (what STATS renders).
    metrics: RwLock<NetMetrics>,
    next_session: AtomicU64,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerInner {
    fn retry_hint_ms(&self) -> u64 {
        self.jitter.next_after(self.cfg.retry_after).as_millis() as u64
    }

    fn backend(&self) -> std::sync::RwLockReadGuard<'_, Backend> {
        self.backend.read().unwrap_or_else(|e| e.into_inner())
    }

    fn m(&self) -> std::sync::RwLockReadGuard<'_, NetMetrics> {
        self.metrics.read().unwrap_or_else(|e| e.into_inner())
    }

    fn leader_hint(&self) -> String {
        self.cfg.leader_hint.clone().unwrap_or_default()
    }
}

/// A running TCP server.
pub struct Server {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts accepting.
    pub fn start(backend: Backend, cfg: ServerConfig, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let registry = backend.registry();
        let inner = Arc::new(ServerInner {
            jitter: RetryJitter::new(cfg.jitter_seed, cfg.retry_jitter),
            metrics: RwLock::new(NetMetrics::new(&registry)),
            backend: RwLock::new(backend),
            promote_hook: Mutex::new(None),
            conns: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            conn_threads: Mutex::new(Vec::new()),
            cfg,
        });
        inner.m().role.set(role_gauge_value(inner.backend().role()));
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("xsql-net-accept".into())
            .spawn(move || accept_loop(listener, accept_inner))
            .expect("spawn accept thread");
        Ok(Server {
            inner,
            addr: local,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live connection count.
    pub fn conn_count(&self) -> usize {
        self.inner.conns.load(Ordering::Relaxed)
    }

    /// Installs the one-shot callback a `PROMOTE` frame runs to turn
    /// this replica process into the primary. Without one, PROMOTE is
    /// refused.
    pub fn set_promote_hook(&self, hook: PromoteHook) {
        *self
            .inner
            .promote_hook
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(hook);
    }

    /// The live role of this endpoint (promotion and fencing change it
    /// at runtime).
    pub fn role(&self) -> Role {
        self.inner.backend().role()
    }

    /// The primary generation this endpoint serves or tails.
    pub fn generation(&self) -> u64 {
        self.inner.backend().generation()
    }

    /// Starts a graceful drain: new connections are refused with
    /// `ShuttingDown`; each live connection finishes its in-flight
    /// statement and closes after its next request. Idempotent.
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::Release);
    }

    /// True once a drain (or shutdown) has begun.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// Drains, stops the accept loop, and joins every connection
    /// thread. In-flight statements finish first.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.inner.draining.store(true, Ordering::Release);
        self.inner.stopping.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        let threads: Vec<_> = {
            let mut g = self
                .inner
                .conn_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            g.drain(..).collect()
        };
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<ServerInner>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if inner.stopping.load(Ordering::Acquire) {
            return;
        }
        // Opportunistically reap finished connection threads so the
        // registry does not grow without bound on a long-lived server.
        {
            let mut g = inner.conn_threads.lock().unwrap_or_else(|e| e.into_inner());
            let (done, live): (Vec<_>, Vec<_>) = g.drain(..).partition(|t| t.is_finished());
            *g = live;
            for t in done {
                let _ = t.join();
            }
        }
        if inner.draining.load(Ordering::Acquire) {
            inner.m().shed_drain.inc();
            refuse(
                stream,
                ErrorCode::ShuttingDown,
                inner.retry_hint_ms(),
                "server is draining",
            );
            continue;
        }
        if inner.conns.load(Ordering::Relaxed) >= inner.cfg.max_conns {
            inner.m().shed_conn_limit.inc();
            refuse(
                stream,
                ErrorCode::Overloaded,
                inner.retry_hint_ms(),
                "connection limit reached",
            );
            continue;
        }
        inner.m().accepted.inc();
        inner.conns.fetch_add(1, Ordering::Relaxed);
        inner.m().conns.add(1);
        let conn_inner = Arc::clone(&inner);
        let t = std::thread::Builder::new()
            .name("xsql-net-conn".into())
            .spawn(move || {
                serve_conn(stream, &conn_inner);
                conn_inner.conns.fetch_sub(1, Ordering::Relaxed);
                conn_inner.m().conns.add(-1);
            })
            .expect("spawn conn thread");
        inner
            .conn_threads
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(t);
    }
}

/// Refuses a connection with one typed error frame — shed is never
/// silent. Best-effort: the peer may already be gone.
fn refuse(mut stream: TcpStream, code: ErrorCode, retry_after_ms: u64, message: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.write_all(&frame::encode(&Frame::Error {
        id: 0,
        code,
        retry_after_ms,
        message: message.into(),
    }));
}

/// What the socket-reader thread reports to the executor.
enum Event {
    Frame(Frame),
    /// The byte stream can never parse as a frame again.
    Malformed(String),
    /// No complete frame within the idle timeout.
    Idle,
    /// EOF or socket error.
    Disconnected,
}

/// In-flight statement registration: the reader trips the flag when a
/// matching CANCEL (or a disconnect) arrives.
type CancelSlot = Arc<Mutex<Option<(u64, CancelFlag)>>>;

fn serve_conn(mut stream: TcpStream, inner: &Arc<ServerInner>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
    // Handshake first, on this thread: one HELLO within the timeout.
    let mut buf = FrameBuf::new();
    let hello = match read_one_frame(&mut stream, &mut buf, inner.cfg.handshake_timeout) {
        Ok(Some(f)) => f,
        Ok(None) => return, // disconnected or timed out silently
        Err(m) => {
            inner.m().protocol_errors.inc();
            send(
                &mut stream,
                &Frame::Error {
                    id: 0,
                    code: ErrorCode::Protocol,
                    retry_after_ms: 0,
                    message: m,
                },
            );
            return;
        }
    };
    match hello {
        Frame::Hello { version, token } => {
            if version != PROTO_VERSION {
                inner.m().protocol_errors.inc();
                send(
                    &mut stream,
                    &Frame::Error {
                        id: 0,
                        code: ErrorCode::Protocol,
                        retry_after_ms: 0,
                        message: format!(
                            "protocol version {version} unsupported (want {PROTO_VERSION})"
                        ),
                    },
                );
                return;
            }
            if let Some(required) = &inner.cfg.auth_token {
                if &token != required {
                    send(
                        &mut stream,
                        &Frame::Error {
                            id: 0,
                            code: ErrorCode::Auth,
                            retry_after_ms: 0,
                            message: "bad token".into(),
                        },
                    );
                    return;
                }
            }
        }
        _ => {
            inner.m().protocol_errors.inc();
            send(
                &mut stream,
                &Frame::Error {
                    id: 0,
                    code: ErrorCode::Protocol,
                    retry_after_ms: 0,
                    message: "expected HELLO".into(),
                },
            );
            return;
        }
    }
    // Admission: the primary's session gate is the authority; shed
    // verdicts pass through as typed frames. Snapshot the backend under
    // the read lock — the connection keeps serving what it was admitted
    // to even if a promotion swaps the backend underneath.
    let picked = match &*inner.backend() {
        Backend::Primary(svc) => Ok(Arc::clone(svc)),
        Backend::Replica(r) => Err(Arc::clone(r)),
    };
    let mut backend_conn = match picked {
        Ok(svc) => match svc.connect() {
            Ok(h) => ConnBackend::Primary(h),
            Err(e) => {
                let (code, retry_after_ms, message) = map_service_err(&e);
                send(
                    &mut stream,
                    &Frame::Error {
                        id: 0,
                        code,
                        retry_after_ms,
                        message,
                    },
                );
                return;
            }
        },
        Err(r) => ConnBackend::Replica {
            shared: r,
            reader: None,
            prepared: BTreeMap::new(),
        },
    };
    let session = inner.next_session.fetch_add(1, Ordering::Relaxed);
    let (role, epoch) = {
        let b = inner.backend();
        (b.role(), b.epoch_seq())
    };
    if !send(
        &mut stream,
        &Frame::HelloAck {
            session,
            role,
            epoch,
        },
    ) {
        return;
    }
    // Split into reader + executor.
    let cancel_slot: CancelSlot = Arc::new(Mutex::new(None));
    let conn_stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::sync_channel::<Event>(64);
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let reader = {
        let slot = Arc::clone(&cancel_slot);
        let stop = Arc::clone(&conn_stop);
        let cfg = inner.cfg.clone();
        let metrics_cancels = Arc::clone(&inner.m().cancels);
        std::thread::Builder::new()
            .name("xsql-net-read".into())
            .spawn(move || reader_loop(read_half, buf, tx, slot, stop, cfg, metrics_cancels))
            .expect("spawn conn reader")
    };
    executor_loop(&mut stream, rx, &mut backend_conn, &cancel_slot, inner);
    // Tear down: close both halves so the reader unblocks, then join.
    conn_stop.store(true, Ordering::Release);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = reader.join();
}

/// Blocking-reads until one complete frame, a decode error, EOF, or
/// the deadline. Used only for the handshake.
fn read_one_frame(
    stream: &mut TcpStream,
    buf: &mut FrameBuf,
    timeout: Duration,
) -> Result<Option<Frame>, String> {
    let deadline = Instant::now() + timeout;
    let mut chunk = [0u8; 4096];
    loop {
        match buf.next_frame() {
            Ok(Some(f)) => return Ok(Some(f)),
            Ok(None) => {}
            Err(e) => return Err(e.to_string()),
        }
        let now = Instant::now();
        if now >= deadline {
            return Ok(None);
        }
        let _ = stream.set_read_timeout(Some((deadline - now).min(Duration::from_millis(100))));
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.push(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return Ok(None),
        }
    }
}

/// The socket-reader thread: parses frames as bytes arrive, handles
/// CANCEL inline (it must overtake the executor), forwards the rest,
/// and enforces the idle and torn-frame deadlines.
#[allow(clippy::too_many_arguments)]
fn reader_loop(
    mut stream: TcpStream,
    mut buf: FrameBuf,
    tx: SyncSender<Event>,
    cancel_slot: CancelSlot,
    stop: Arc<AtomicBool>,
    cfg: ServerConfig,
    cancels: Arc<telemetry::Counter>,
) {
    let trip_current = |why_disconnect: bool| {
        // A vanished or malformed peer implicitly cancels its in-flight
        // statement: nobody is left to read the answer.
        let _ = why_disconnect;
        if let Some((_, flag)) = &*cancel_slot.lock().unwrap_or_else(|e| e.into_inner()) {
            flag.cancel();
        }
    };
    let _ = stream.set_read_timeout(Some(cfg.poll_interval));
    let mut chunk = [0u8; 8192];
    let mut last_frame = Instant::now();
    let mut partial_since: Option<Instant> = None;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Drain everything already buffered first — the handshake read
        // may have slurped bytes past HELLO, and a peer that then goes
        // quiet must not park them unseen.
        loop {
            match buf.next_frame() {
                Ok(Some(Frame::Cancel { id })) => {
                    let slot = cancel_slot.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some((cur, flag)) = &*slot {
                        if *cur == id {
                            flag.cancel();
                            cancels.inc();
                        }
                    }
                    last_frame = Instant::now();
                }
                Ok(Some(f)) => {
                    last_frame = Instant::now();
                    if tx.send(Event::Frame(f)).is_err() {
                        return; // executor gone
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    trip_current(false);
                    let _ = tx.send(Event::Malformed(e.to_string()));
                    return;
                }
            }
        }
        partial_since = if buf.has_partial() {
            partial_since.or_else(|| Some(Instant::now()))
        } else {
            None
        };
        match stream.read(&mut chunk) {
            Ok(0) => {
                trip_current(true);
                let _ = tx.send(Event::Disconnected);
                return;
            }
            Ok(n) => buf.push(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if let Some(since) = partial_since {
                    if since.elapsed() >= cfg.frame_timeout {
                        trip_current(false);
                        let _ = tx.send(Event::Malformed(
                            "partial frame timed out (torn write?)".into(),
                        ));
                        return;
                    }
                }
                if last_frame.elapsed() >= cfg.idle_timeout {
                    let _ = tx.send(Event::Idle);
                    return;
                }
            }
            Err(_) => {
                trip_current(true);
                let _ = tx.send(Event::Disconnected);
                return;
            }
        }
    }
}

/// Per-connection execution state.
enum ConnBackend {
    Primary(SessionHandle),
    Replica {
        shared: Arc<ReplicaShared>,
        /// Cached reader session, valid for one published epoch (same
        /// rationale as the service's `SessionHandle`: resolution
        /// interns symbols, so reads run on a private snapshot copy).
        reader: Option<ReplicaReader>,
        /// Prepared statements registered on this connection
        /// (name → full `PREPARE …` source). Read-only bodies only;
        /// lazily re-installed into each epoch's reader session.
        prepared: BTreeMap<String, String>,
    },
}

/// The replica's per-epoch reader session.
struct ReplicaReader {
    seq: u64,
    sess: Session,
    /// Prepared names already installed into this epoch's session.
    installed: BTreeSet<String>,
}

fn executor_loop(
    stream: &mut TcpStream,
    rx: Receiver<Event>,
    conn: &mut ConnBackend,
    cancel_slot: &CancelSlot,
    inner: &Arc<ServerInner>,
) {
    loop {
        let ev = match rx.recv_timeout(inner.cfg.poll_interval) {
            Ok(ev) => ev,
            Err(RecvTimeoutError::Timeout) => {
                if inner.stopping.load(Ordering::Acquire) {
                    let _ = send(stream, &Frame::Goodbye);
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        match ev {
            Event::Frame(Frame::Execute {
                id,
                deadline_ms,
                src,
            }) => {
                inner.m().requests.inc();
                if inner.draining.load(Ordering::Acquire) {
                    send(
                        stream,
                        &Frame::Error {
                            id,
                            code: ErrorCode::ShuttingDown,
                            retry_after_ms: inner.retry_hint_ms(),
                            message: "server is draining".into(),
                        },
                    );
                    let _ = send(stream, &Frame::Goodbye);
                    return;
                }
                let ok = execute_one(stream, conn, cancel_slot, inner, id, deadline_ms, &src);
                if !ok {
                    return; // write failure: peer is gone
                }
            }
            // Prepare/ExecutePrepared are sugar over Execute: the
            // server rebuilds the statement text and runs it through
            // the same path, so deadlines, cancel, draining, and error
            // mapping behave identically. Prepared names live in the
            // connection's engine session (primary) or per-epoch reader
            // (replica, via the same lazy re-install the service uses).
            Event::Frame(Frame::Prepare {
                id,
                deadline_ms,
                name,
                src,
            }) => {
                inner.m().requests.inc();
                if inner.draining.load(Ordering::Acquire) {
                    send(
                        stream,
                        &Frame::Error {
                            id,
                            code: ErrorCode::ShuttingDown,
                            retry_after_ms: inner.retry_hint_ms(),
                            message: "server is draining".into(),
                        },
                    );
                    let _ = send(stream, &Frame::Goodbye);
                    return;
                }
                let text = format!("PREPARE {name} AS {src}");
                if !execute_one(stream, conn, cancel_slot, inner, id, deadline_ms, &text) {
                    return;
                }
            }
            Event::Frame(Frame::ExecutePrepared {
                id,
                deadline_ms,
                name,
                args,
            }) => {
                inner.m().requests.inc();
                if inner.draining.load(Ordering::Acquire) {
                    send(
                        stream,
                        &Frame::Error {
                            id,
                            code: ErrorCode::ShuttingDown,
                            retry_after_ms: inner.retry_hint_ms(),
                            message: "server is draining".into(),
                        },
                    );
                    let _ = send(stream, &Frame::Goodbye);
                    return;
                }
                let text = if args.is_empty() {
                    format!("EXECUTE {name}")
                } else {
                    format!("EXECUTE {name} ({})", args.join(", "))
                };
                if !execute_one(stream, conn, cancel_slot, inner, id, deadline_ms, &text) {
                    return;
                }
            }
            Event::Frame(Frame::Ping) => {
                // Compute the health word before writing: holding the
                // backend lock across a socket write would let a slow
                // client stall a promotion.
                let pong = {
                    let b = inner.backend();
                    Frame::Pong {
                        role: b.role(),
                        generation: b.generation(),
                        epoch: b.epoch_seq(),
                        lag: b.lag(),
                    }
                };
                if !send(stream, &pong) {
                    return;
                }
            }
            Event::Frame(Frame::Promote) => {
                let reply = handle_promote(inner);
                if !send(stream, &reply) {
                    return;
                }
            }
            Event::Frame(Frame::Goodbye) => {
                let _ = send(stream, &Frame::Goodbye);
                return;
            }
            // Cancel is consumed reader-side; any other frame from a
            // client is a grammar violation.
            Event::Frame(_) => {
                inner.m().protocol_errors.inc();
                send(
                    stream,
                    &Frame::Error {
                        id: 0,
                        code: ErrorCode::Protocol,
                        retry_after_ms: 0,
                        message: "unexpected frame kind from client".into(),
                    },
                );
                return;
            }
            Event::Malformed(m) => {
                inner.m().protocol_errors.inc();
                send(
                    stream,
                    &Frame::Error {
                        id: 0,
                        code: ErrorCode::Protocol,
                        retry_after_ms: 0,
                        message: m,
                    },
                );
                return;
            }
            Event::Idle => {
                inner.m().idle_reaped.inc();
                send(
                    stream,
                    &Frame::Error {
                        id: 0,
                        code: ErrorCode::IdleTimeout,
                        retry_after_ms: 0,
                        message: "connection idle too long".into(),
                    },
                );
                return;
            }
            Event::Disconnected => return,
        }
    }
}

/// Runs one Execute and streams its response. Returns false when the
/// peer stopped reading (write failure) and the connection should die.
fn execute_one(
    stream: &mut TcpStream,
    conn: &mut ConnBackend,
    cancel_slot: &CancelSlot,
    inner: &Arc<ServerInner>,
    id: u64,
    deadline_ms: u64,
    src: &str,
) -> bool {
    let ctx = QueryContext {
        deadline: (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms)),
        cancel: CancelFlag::new(),
        cancel_at_tick: None,
    };
    *cancel_slot.lock().unwrap_or_else(|e| e.into_inner()) = Some((id, ctx.cancel.clone()));
    let frames = match conn {
        ConnBackend::Primary(handle) => match handle.execute(src, &ctx) {
            Ok(r) => result_frames(id, r, inner),
            Err(ServiceError::Fenced { .. }) => {
                // Deposed: a newer generation owns the store. The write
                // provably never reached an engine (the writer refused
                // before ack), so redirect rather than error.
                let m = inner.m();
                m.fenced_refusals.inc();
                m.role.set(role_gauge_value(Role::Fenced));
                vec![Frame::NotPrimary {
                    id,
                    leader_hint: inner.leader_hint(),
                }]
            }
            Err(e) => vec![error_frame(id, &e)],
        },
        ConnBackend::Replica {
            shared,
            reader,
            prepared,
        } => replica_execute(
            shared,
            reader,
            prepared,
            id,
            src,
            &ctx,
            &inner.leader_hint(),
        ),
    };
    *cancel_slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
    let mut wire = Vec::with_capacity(1024);
    for f in &frames {
        wire.extend_from_slice(&frame::encode(f));
    }
    stream.write_all(&wire).is_ok()
}

/// Frames for a successful service execution.
fn result_frames(id: u64, r: ExecResult, inner: &Arc<ServerInner>) -> Vec<Frame> {
    match r {
        ExecResult::Read(read) => read_frames(id, &read),
        ExecResult::Write(ack) | ExecResult::TxnCommitted(ack) => {
            // Render against the epoch that exposes the write: the
            // current one is always at least as new.
            let db = match &*inner.backend() {
                Backend::Primary(svc) => svc.epoch().db,
                Backend::Replica(r) => r.epoch().db,
            };
            let info = ack
                .outcomes
                .iter()
                .map(|o| crate::render_outcome(&db, o))
                .collect::<Vec<_>>()
                .join("");
            vec![Frame::Done {
                id,
                epoch: ack.epoch,
                rows: 0,
                info: if info.is_empty() {
                    "committed\n".into()
                } else {
                    info
                },
            }]
        }
        ExecResult::TxnStarted => done_info(id, "transaction started\n"),
        ExecResult::Buffered => done_info(id, "buffered\n"),
        ExecResult::TxnRolledBack => done_info(id, "transaction rolled back\n"),
    }
}

fn done_info(id: u64, info: &str) -> Vec<Frame> {
    vec![Frame::Done {
        id,
        epoch: 0,
        rows: 0,
        info: info.into(),
    }]
}

/// Streams a read result: header, rows (rendered server-side against
/// the read's own snapshot), terminal Done.
fn read_frames(id: u64, r: &ReadResult) -> Vec<Frame> {
    match &r.outcome {
        Outcome::Relation(rel) => {
            let mut frames = Vec::with_capacity(rel.len() + 2);
            frames.push(Frame::RowsHeader {
                id,
                epoch: r.epoch,
                columns: rel.columns().to_vec(),
            });
            for t in rel.iter() {
                frames.push(Frame::Row {
                    id,
                    cells: t.iter().map(|o| r.snapshot.oids().render(*o)).collect(),
                });
            }
            frames.push(Frame::Done {
                id,
                epoch: r.epoch,
                rows: rel.len() as u64,
                info: String::new(),
            });
            frames
        }
        other => vec![Frame::Done {
            id,
            epoch: r.epoch,
            rows: 0,
            info: crate::render_outcome(&r.snapshot, other),
        }],
    }
}

/// Executes one statement against the replica's latest published
/// epoch. Writes (and transaction control) are refused with a
/// `NotPrimary` redirect carrying the configured leader hint.
fn replica_execute(
    shared: &Arc<ReplicaShared>,
    reader: &mut Option<ReplicaReader>,
    prepared: &mut BTreeMap<String, String>,
    id: u64,
    src: &str,
    ctx: &QueryContext,
    leader_hint: &str,
) -> Vec<Frame> {
    let stmt = match parse(src) {
        Ok(s) => s,
        Err(e) => {
            return vec![Frame::Error {
                id,
                code: ErrorCode::Stmt,
                retry_after_ms: 0,
                message: e.to_string(),
            }]
        }
    };
    if matches!(stmt, xsql::ast::Stmt::Stats) {
        return vec![Frame::Done {
            id,
            epoch: shared.epoch().seq,
            rows: 0,
            info: shared.registry().render(),
        }];
    }
    // Prepared statements: a read-only body prepares locally (the name
    // is per-connection, re-installed into each epoch's session on
    // first EXECUTE); a write body redirects to the primary before
    // touching any engine.
    let prep: Option<(&str, &str)> = match &stmt {
        xsql::ast::Stmt::Prepare { name, stmt: inner } => {
            if !service::is_read_only(inner) {
                return vec![Frame::NotPrimary {
                    id,
                    leader_hint: leader_hint.into(),
                }];
            }
            prepared.insert(name.clone(), src.to_string());
            if let Some(r) = reader.as_mut() {
                r.installed.remove(name);
            }
            return vec![Frame::Done {
                id,
                epoch: shared.epoch().seq,
                rows: 0,
                info: format!("prepared `{name}`\n"),
            }];
        }
        xsql::ast::Stmt::Execute { name, .. } => match prepared.get(name.as_str()) {
            Some(psrc) => Some((name.as_str(), psrc.as_str())),
            None => {
                return vec![Frame::Error {
                    id,
                    code: ErrorCode::Stmt,
                    retry_after_ms: 0,
                    message: format!(
                        "unknown prepared statement `{name}` (prepared statements are \
                         per-connection; re-PREPARE after reconnect)"
                    ),
                }]
            }
        },
        _ if !service::is_read_only(&stmt) => {
            // Provably pre-execution: the statement was never handed to
            // an engine, so the client may retry it elsewhere
            // unconditionally.
            return vec![Frame::NotPrimary {
                id,
                leader_hint: leader_hint.into(),
            }];
        }
        _ => None,
    };
    let ep = shared.epoch();
    let stale = match reader {
        Some(r) => r.seq != ep.seq,
        None => true,
    };
    if stale {
        *reader = Some(ReplicaReader {
            seq: ep.seq,
            sess: Session::with_options((*ep.db).clone(), shared.base_opts().clone()),
            installed: BTreeSet::new(),
        });
    }
    let r = reader.as_mut().expect("just cached");
    let mut opts = shared.base_opts().clone();
    opts.cancel = ctx.cancel.clone();
    opts.budget.deadline = ctx.deadline;
    opts.budget.cancel_at_tick = ctx.cancel_at_tick;
    r.sess.set_options(opts);
    if let Some((name, psrc)) = prep {
        if !r.installed.contains(name) {
            if let Err(e) = r.sess.run(psrc) {
                return vec![Frame::Error {
                    id,
                    code: ErrorCode::Stmt,
                    retry_after_ms: 0,
                    message: e.to_string(),
                }];
            }
            r.installed.insert(name.to_string());
        }
    }
    match r.sess.run(src) {
        Ok(outcome) => read_frames(
            id,
            &ReadResult {
                outcome,
                epoch: ep.seq,
                snapshot: ep.db,
            },
        ),
        Err(e) => vec![Frame::Error {
            id,
            code: if matches!(e, xsql::XsqlError::Cancelled { .. }) {
                ErrorCode::Cancelled
            } else {
                ErrorCode::Stmt
            },
            retry_after_ms: 0,
            message: e.to_string(),
        }],
    }
}

/// Handles a `PROMOTE` admin frame: token-gated, idempotent on an
/// existing primary, otherwise runs the embedder's promotion hook and
/// swaps the backend so new connections land on the primary.
fn handle_promote(inner: &Arc<ServerInner>) -> Frame {
    if inner.cfg.auth_token.is_none() {
        // The whole point of the fencing term is that promotion is a
        // deliberate operator action; an unauthenticated surface must
        // not expose it.
        return Frame::Error {
            id: 0,
            code: ErrorCode::Auth,
            retry_after_ms: 0,
            message: "promotion requires a server configured with a shared-secret token".into(),
        };
    }
    {
        let b = inner.backend();
        if let Backend::Primary(svc) = &*b {
            if let Some(observed) = svc.fenced() {
                return Frame::Error {
                    id: 0,
                    code: ErrorCode::Stmt,
                    retry_after_ms: 0,
                    message: format!(
                        "this node is fenced by generation {observed}; \
                         restart it as a replica before promoting it"
                    ),
                };
            }
            // Already the primary: promotion is idempotent.
            return Frame::PromoteAck {
                generation: svc.generation(),
            };
        }
    }
    let hook = inner
        .promote_hook
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take();
    let Some(hook) = hook else {
        return Frame::Error {
            id: 0,
            code: ErrorCode::Internal,
            retry_after_ms: 0,
            message: "this replica cannot be promoted (no promotion hook, \
                      or a promotion is already in flight)"
                .into(),
        };
    };
    match hook() {
        Ok(svc) => {
            let generation = svc.generation();
            let registry = Arc::clone(svc.registry());
            *inner.backend.write().unwrap_or_else(|e| e.into_inner()) = Backend::Primary(svc);
            // Rebuild the metric handles in the new primary's registry
            // so STATS on the promoted node shows the network tier.
            {
                let mut m = inner.metrics.write().unwrap_or_else(|e| e.into_inner());
                *m = NetMetrics::new(&registry);
                m.promotions.inc();
                m.role.set(role_gauge_value(Role::Primary));
            }
            Frame::PromoteAck { generation }
        }
        Err(m) => Frame::Error {
            id: 0,
            code: ErrorCode::Internal,
            retry_after_ms: 0,
            message: format!("promotion failed: {m}"),
        },
    }
}

/// Maps a service error to the wire contract.
fn map_service_err(e: &ServiceError) -> (ErrorCode, u64, String) {
    match e {
        ServiceError::Overloaded { retry_after } => (
            ErrorCode::Overloaded,
            retry_after.as_millis() as u64,
            e.to_string(),
        ),
        ServiceError::ReadOnly { retry_after } => (
            ErrorCode::ReadOnly,
            retry_after.as_millis() as u64,
            e.to_string(),
        ),
        ServiceError::ShuttingDown => (ErrorCode::ShuttingDown, 0, e.to_string()),
        ServiceError::Poisoned(_) => (ErrorCode::Poisoned, 0, e.to_string()),
        // Normally intercepted earlier and answered with a NotPrimary
        // redirect; as a plain error it is not same-node-retryable.
        ServiceError::Fenced { .. } => (ErrorCode::Stmt, 0, e.to_string()),
        ServiceError::Xsql(xsql::XsqlError::Cancelled { .. }) => {
            (ErrorCode::Cancelled, 0, e.to_string())
        }
        ServiceError::Xsql(_) | ServiceError::Protocol(_) => (ErrorCode::Stmt, 0, e.to_string()),
    }
}

fn error_frame(id: u64, e: &ServiceError) -> Frame {
    let (code, retry_after_ms, message) = map_service_err(e);
    Frame::Error {
        id,
        code,
        retry_after_ms,
        message,
    }
}

/// Writes one frame; false when the peer is unreachable.
fn send(stream: &mut TcpStream, f: &Frame) -> bool {
    stream.write_all(&frame::encode(f)).is_ok()
}
