//! The wire frame grammar: length-prefixed, checksummed, strictly
//! parsed.
//!
//! Every frame on the wire is
//!
//! ```text
//! | len: u32 LE | crc: u32 LE | body: len bytes |
//! ```
//!
//! where `crc` is the same CRC-32 (IEEE) the WAL uses
//! ([`storage::wal::crc32`]) computed over `body`, and `body` is
//!
//! ```text
//! | kind: u8 | payload |
//! ```
//!
//! Integers are little-endian; strings and byte fields are
//! `u32`-length-prefixed UTF-8. Decoding is *strict*: an unknown kind,
//! a checksum mismatch, a length beyond [`MAX_FRAME`], a string
//! running past the body, invalid UTF-8, or trailing bytes after the
//! payload are all [`FrameError::Corrupt`] — the server answers with a
//! typed protocol error and closes, never guesses. A prefix of a valid
//! frame is *not* an error; [`decode`] reports it as "need more bytes"
//! so torn TCP reads assemble incrementally in a [`FrameBuf`].

use std::fmt;
use storage::wal::crc32;

/// Protocol version sent in `HELLO`; the server rejects mismatches.
pub const PROTO_VERSION: u32 = 1;

/// Hard cap on one frame's body. Anything larger is corruption (a
/// flipped length byte), not a legitimate message; refusing it bounds
/// per-connection buffer memory.
pub const MAX_FRAME: u32 = 16 << 20;

/// Bytes of the `len + crc` frame header.
pub const HEADER: usize = 8;

/// Which side of the topology a connection landed on, reported in
/// `HELLO_ACK`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The single writable primary.
    Primary,
    /// A WAL-shipped read replica: snapshot reads only.
    Replica,
    /// A deposed primary: a newer generation owns the store, so this
    /// endpoint refuses writes but keeps serving its published epochs.
    Fenced,
}

impl Role {
    fn to_u8(self) -> u8 {
        match self {
            Role::Primary => 0,
            Role::Replica => 1,
            Role::Fenced => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Role, FrameError> {
        Ok(match v {
            0 => Role::Primary,
            1 => Role::Replica,
            2 => Role::Fenced,
            r => return Err(FrameError::Corrupt(format!("unknown role {r}"))),
        })
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::Primary => "primary",
            Role::Replica => "replica",
            Role::Fenced => "fenced",
        })
    }
}

/// Typed error codes carried by [`Frame::Error`]. The code — not the
/// human-readable message — is the retry contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The peer broke the frame grammar; the connection closes after
    /// this frame.
    Protocol = 1,
    /// Authentication failed at HELLO.
    Auth = 2,
    /// Admission control shed the request; retry after the hint.
    Overloaded = 3,
    /// Writes are refused here: the store is degraded (disk full) or
    /// this endpoint is a replica. Retry after the hint (against the
    /// primary, for the replica case).
    ReadOnly = 4,
    /// The server is draining; reconnect elsewhere or later.
    ShuttingDown = 5,
    /// The server's writer hit an unrecoverable storage fault.
    Poisoned = 6,
    /// The statement reached the engine and failed there (parse, type,
    /// budget, …). Retrying unchanged will fail identically.
    Stmt = 7,
    /// The statement was cancelled (deadline or CANCEL frame).
    Cancelled = 8,
    /// The connection sat idle past the server's limit and was reaped.
    IdleTimeout = 9,
    /// Unexpected server-side failure.
    Internal = 10,
}

impl ErrorCode {
    /// True when retrying the same request (after the supplied
    /// `retry_after`) can succeed without changing it.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Overloaded | ErrorCode::ReadOnly | ErrorCode::ShuttingDown
        )
    }

    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::Auth,
            3 => ErrorCode::Overloaded,
            4 => ErrorCode::ReadOnly,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::Poisoned,
            7 => ErrorCode::Stmt,
            8 => ErrorCode::Cancelled,
            9 => ErrorCode::IdleTimeout,
            10 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// One protocol message. See the module docs for the byte layout and
/// `docs/SERVING.md` for the conversation grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server, first frame on a connection.
    Hello {
        /// Must equal [`PROTO_VERSION`].
        version: u32,
        /// Shared-secret token; empty when the server requires none.
        token: String,
    },
    /// Server → client: the connection is admitted.
    HelloAck {
        /// Server-assigned session id (diagnostics only).
        session: u64,
        /// Primary or replica.
        role: Role,
        /// Epoch published at admission time.
        epoch: u64,
    },
    /// Client → server: run one statement.
    Execute {
        /// Client-chosen id echoed on every frame of the response.
        id: u64,
        /// Per-statement deadline in milliseconds; `0` = server default.
        deadline_ms: u64,
        /// XSQL source text.
        src: String,
    },
    /// Client → server: cancel the in-flight statement with this id.
    /// Answered by the statement finishing early with a `Cancelled`
    /// error frame (or its normal result, if it won the race).
    Cancel {
        /// Id of the Execute to cancel.
        id: u64,
    },
    /// Client → server: liveness / health probe.
    Ping,
    /// Server → client: answer to Ping — the full health word a
    /// failover-aware client needs to pick a target.
    Pong {
        /// What this endpoint currently is (promotion and fencing
        /// change it at runtime).
        role: Role,
        /// The primary generation (fencing term) of the store this
        /// endpoint serves or tails.
        generation: u64,
        /// Latest epoch this endpoint serves.
        epoch: u64,
        /// Replication lag in commit units (always 0 on the primary).
        lag: u64,
    },
    /// Client → server: promote this replica to primary. Gated on the
    /// shared-secret token (rejected with `Auth` when the connection
    /// authenticated without one); idempotent on an existing primary.
    Promote,
    /// Server → client: promotion finished (or was a no-op); the
    /// endpoint now accepts writes under `generation`.
    PromoteAck {
        /// The generation the endpoint serves writes under.
        generation: u64,
    },
    /// Server → client: this endpoint cannot take the write — it is a
    /// replica or a fenced ex-primary. Provably pre-execution: the
    /// statement never reached an engine, so retrying elsewhere is
    /// always safe.
    NotPrimary {
        /// Echo of the Execute id; 0 for connection-level refusals.
        id: u64,
        /// Address of the believed-current primary; empty when the
        /// endpoint has no hint.
        leader_hint: String,
    },
    /// Either direction: orderly close.
    Goodbye,
    /// Server → client: a result set begins.
    RowsHeader {
        /// Echo of the Execute id.
        id: u64,
        /// Epoch the read evaluated against.
        epoch: u64,
        /// Column names.
        columns: Vec<String>,
    },
    /// Server → client: one result row, rendered.
    Row {
        /// Echo of the Execute id.
        id: u64,
        /// One rendered cell per column.
        cells: Vec<String>,
    },
    /// Server → client: the statement finished successfully.
    Done {
        /// Echo of the Execute id.
        id: u64,
        /// Epoch of the result: the read snapshot, or the epoch that
        /// first exposes a committed write.
        epoch: u64,
        /// Row count of the result set (0 for non-queries).
        rows: u64,
        /// Human-readable summary for non-query statements.
        info: String,
    },
    /// Client → server: compile a statement once under a name, for
    /// repeated [`Frame::ExecutePrepared`] runs. Prepared names are
    /// per-connection; a reconnect starts with none.
    Prepare {
        /// Client-chosen id echoed on every frame of the response.
        id: u64,
        /// Per-statement deadline in milliseconds; `0` = server default.
        deadline_ms: u64,
        /// Name to prepare under.
        name: String,
        /// XSQL source of the statement body (what follows `AS` in
        /// `PREPARE name AS …`); may contain `?1`, `?2`, … parameters.
        src: String,
    },
    /// Client → server: run a statement prepared earlier on this
    /// connection, binding `?n` to the n-th argument.
    ExecutePrepared {
        /// Client-chosen id echoed on every frame of the response.
        id: u64,
        /// Per-statement deadline in milliseconds; `0` = server default.
        deadline_ms: u64,
        /// Name given at [`Frame::Prepare`].
        name: String,
        /// Argument literals in XSQL syntax (e.g. `12000`, `"Smith"`),
        /// one per `?n` in the prepared body.
        args: Vec<String>,
    },
    /// Server → client: the statement (or the connection, when
    /// `id == 0`) failed.
    Error {
        /// Echo of the Execute id; 0 for connection-level errors.
        id: u64,
        /// The typed failure class.
        code: ErrorCode,
        /// Suggested back-off before retrying, 0 when not retryable.
        retry_after_ms: u64,
        /// Human-readable detail (not part of the contract).
        message: String,
    },
}

const K_HELLO: u8 = 0x01;
const K_HELLO_ACK: u8 = 0x02;
const K_EXECUTE: u8 = 0x03;
const K_CANCEL: u8 = 0x04;
const K_PING: u8 = 0x05;
const K_PONG: u8 = 0x06;
const K_GOODBYE: u8 = 0x07;
const K_PROMOTE: u8 = 0x08;
const K_ROWS_HEADER: u8 = 0x10;
const K_ROW: u8 = 0x11;
const K_DONE: u8 = 0x12;
const K_ERROR: u8 = 0x13;
const K_PROMOTE_ACK: u8 = 0x14;
const K_NOT_PRIMARY: u8 = 0x15;
const K_PREPARE: u8 = 0x16;
const K_EXECUTE_PREPARED: u8 = 0x17;

/// Why a byte sequence failed to decode as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The bytes are not a valid frame and never will be, no matter
    /// what arrives next: bad checksum, bad kind, oversized length,
    /// malformed payload.
    Corrupt(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Corrupt(m) => write!(f, "corrupt frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_strs(out: &mut Vec<u8>, ss: &[String]) {
    put_u32(out, ss.len() as u32);
    for s in ss {
        put_str(out, s);
    }
}

/// Encodes one frame to wire bytes (header + checksummed body).
pub fn encode(f: &Frame) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    match f {
        Frame::Hello { version, token } => {
            body.push(K_HELLO);
            put_u32(&mut body, *version);
            put_str(&mut body, token);
        }
        Frame::HelloAck {
            session,
            role,
            epoch,
        } => {
            body.push(K_HELLO_ACK);
            put_u64(&mut body, *session);
            body.push(role.to_u8());
            put_u64(&mut body, *epoch);
        }
        Frame::Execute {
            id,
            deadline_ms,
            src,
        } => {
            body.push(K_EXECUTE);
            put_u64(&mut body, *id);
            put_u64(&mut body, *deadline_ms);
            put_str(&mut body, src);
        }
        Frame::Cancel { id } => {
            body.push(K_CANCEL);
            put_u64(&mut body, *id);
        }
        Frame::Prepare {
            id,
            deadline_ms,
            name,
            src,
        } => {
            body.push(K_PREPARE);
            put_u64(&mut body, *id);
            put_u64(&mut body, *deadline_ms);
            put_str(&mut body, name);
            put_str(&mut body, src);
        }
        Frame::ExecutePrepared {
            id,
            deadline_ms,
            name,
            args,
        } => {
            body.push(K_EXECUTE_PREPARED);
            put_u64(&mut body, *id);
            put_u64(&mut body, *deadline_ms);
            put_str(&mut body, name);
            put_strs(&mut body, args);
        }
        Frame::Ping => body.push(K_PING),
        Frame::Pong {
            role,
            generation,
            epoch,
            lag,
        } => {
            body.push(K_PONG);
            body.push(role.to_u8());
            put_u64(&mut body, *generation);
            put_u64(&mut body, *epoch);
            put_u64(&mut body, *lag);
        }
        Frame::Goodbye => body.push(K_GOODBYE),
        Frame::Promote => body.push(K_PROMOTE),
        Frame::PromoteAck { generation } => {
            body.push(K_PROMOTE_ACK);
            put_u64(&mut body, *generation);
        }
        Frame::NotPrimary { id, leader_hint } => {
            body.push(K_NOT_PRIMARY);
            put_u64(&mut body, *id);
            put_str(&mut body, leader_hint);
        }
        Frame::RowsHeader { id, epoch, columns } => {
            body.push(K_ROWS_HEADER);
            put_u64(&mut body, *id);
            put_u64(&mut body, *epoch);
            put_strs(&mut body, columns);
        }
        Frame::Row { id, cells } => {
            body.push(K_ROW);
            put_u64(&mut body, *id);
            put_strs(&mut body, cells);
        }
        Frame::Done {
            id,
            epoch,
            rows,
            info,
        } => {
            body.push(K_DONE);
            put_u64(&mut body, *id);
            put_u64(&mut body, *epoch);
            put_u64(&mut body, *rows);
            put_str(&mut body, info);
        }
        Frame::Error {
            id,
            code,
            retry_after_ms,
            message,
        } => {
            body.push(K_ERROR);
            put_u64(&mut body, *id);
            body.push(*code as u8);
            put_u64(&mut body, *retry_after_ms);
            put_str(&mut body, message);
        }
    }
    let mut out = Vec::with_capacity(HEADER + body.len());
    put_u32(&mut out, body.len() as u32);
    put_u32(&mut out, crc32(0, &body));
    out.extend_from_slice(&body);
    out
}

/// Strict little-endian cursor over one frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() - self.pos < n {
            return Err(FrameError::Corrupt("payload truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> Result<String, FrameError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FrameError::Corrupt("string is not UTF-8".into()))
    }

    fn strs(&mut self) -> Result<Vec<String>, FrameError> {
        let n = self.u32()? as usize;
        // Each entry costs at least its 4-byte length prefix; a count
        // beyond that is a forged header, not a big list.
        if n > (self.buf.len() - self.pos) / 4 {
            return Err(FrameError::Corrupt(
                "string list count overflows body".into(),
            ));
        }
        (0..n).map(|_| self.str()).collect()
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos != self.buf.len() {
            return Err(FrameError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
    let mut c = Cursor { buf: body, pos: 0 };
    let kind = c.u8()?;
    let f = match kind {
        K_HELLO => Frame::Hello {
            version: c.u32()?,
            token: c.str()?,
        },
        K_HELLO_ACK => Frame::HelloAck {
            session: c.u64()?,
            role: Role::from_u8(c.u8()?)?,
            epoch: c.u64()?,
        },
        K_EXECUTE => Frame::Execute {
            id: c.u64()?,
            deadline_ms: c.u64()?,
            src: c.str()?,
        },
        K_CANCEL => Frame::Cancel { id: c.u64()? },
        K_PREPARE => Frame::Prepare {
            id: c.u64()?,
            deadline_ms: c.u64()?,
            name: c.str()?,
            src: c.str()?,
        },
        K_EXECUTE_PREPARED => Frame::ExecutePrepared {
            id: c.u64()?,
            deadline_ms: c.u64()?,
            name: c.str()?,
            args: c.strs()?,
        },
        K_PING => Frame::Ping,
        K_PONG => Frame::Pong {
            role: Role::from_u8(c.u8()?)?,
            generation: c.u64()?,
            epoch: c.u64()?,
            lag: c.u64()?,
        },
        K_GOODBYE => Frame::Goodbye,
        K_PROMOTE => Frame::Promote,
        K_PROMOTE_ACK => Frame::PromoteAck {
            generation: c.u64()?,
        },
        K_NOT_PRIMARY => Frame::NotPrimary {
            id: c.u64()?,
            leader_hint: c.str()?,
        },
        K_ROWS_HEADER => Frame::RowsHeader {
            id: c.u64()?,
            epoch: c.u64()?,
            columns: c.strs()?,
        },
        K_ROW => Frame::Row {
            id: c.u64()?,
            cells: c.strs()?,
        },
        K_DONE => Frame::Done {
            id: c.u64()?,
            epoch: c.u64()?,
            rows: c.u64()?,
            info: c.str()?,
        },
        K_ERROR => Frame::Error {
            id: c.u64()?,
            code: ErrorCode::from_u8(c.u8()?)
                .ok_or_else(|| FrameError::Corrupt("unknown error code".into()))?,
            retry_after_ms: c.u64()?,
            message: c.str()?,
        },
        k => return Err(FrameError::Corrupt(format!("unknown frame kind {k:#04x}"))),
    };
    c.finish()?;
    Ok(f)
}

/// Attempts to decode one frame from the front of `buf`.
///
/// `Ok(Some((frame, consumed)))` on success; `Ok(None)` when `buf`
/// holds a valid *prefix* and more bytes are needed; `Err` when the
/// bytes can never become a valid frame.
pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
    if buf.len() < HEADER {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4"));
    if len == 0 || len > MAX_FRAME {
        return Err(FrameError::Corrupt(format!(
            "frame length {len} out of range"
        )));
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().expect("4"));
    let total = HEADER + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let body = &buf[HEADER..total];
    if crc32(0, body) != crc {
        return Err(FrameError::Corrupt("checksum mismatch".into()));
    }
    Ok(Some((decode_body(body)?, total)))
}

/// Reassembly buffer for a TCP byte stream: push whatever chunk the
/// socket produced, pop complete frames.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Appends raw bytes read from the socket.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete frame, if the buffer holds one.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        match decode(&self.buf)? {
            Some((f, consumed)) => {
                self.buf.drain(..consumed);
                Ok(Some(f))
            }
            None => Ok(None),
        }
    }

    /// True when bytes of an incomplete frame are waiting.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: PROTO_VERSION,
                token: "s3cret".into(),
            },
            Frame::HelloAck {
                session: 7,
                role: Role::Replica,
                epoch: 42,
            },
            Frame::Execute {
                id: 1,
                deadline_ms: 250,
                src: "SELECT X FROM Counter X".into(),
            },
            Frame::Cancel { id: 1 },
            Frame::Prepare {
                id: 5,
                deadline_ms: 0,
                name: "rich".into(),
                src: "SELECT X FROM Employee X WHERE X.Salary > ?1".into(),
            },
            Frame::ExecutePrepared {
                id: 6,
                deadline_ms: 250,
                name: "rich".into(),
                args: vec!["12000".into(), "\"Smith\"".into()],
            },
            Frame::Ping,
            Frame::Pong {
                role: Role::Replica,
                generation: 2,
                epoch: 9,
                lag: 3,
            },
            Frame::Pong {
                role: Role::Fenced,
                generation: 2,
                epoch: 9,
                lag: 0,
            },
            Frame::Goodbye,
            Frame::Promote,
            Frame::PromoteAck { generation: 3 },
            Frame::NotPrimary {
                id: 4,
                leader_hint: "127.0.0.1:7878".into(),
            },
            Frame::RowsHeader {
                id: 1,
                epoch: 9,
                columns: vec!["X".into(), "W".into()],
            },
            Frame::Row {
                id: 1,
                cells: vec!["c0".into(), "41".into()],
            },
            Frame::Done {
                id: 1,
                epoch: 9,
                rows: 2,
                info: "committed".into(),
            },
            Frame::Error {
                id: 1,
                code: ErrorCode::Overloaded,
                retry_after_ms: 63,
                message: "service overloaded".into(),
            },
        ]
    }

    #[test]
    fn roundtrip_every_frame_kind() {
        for f in all_frames() {
            let bytes = encode(&f);
            let (got, consumed) = decode(&bytes).unwrap().unwrap();
            assert_eq!(consumed, bytes.len());
            assert_eq!(got, f);
        }
    }

    #[test]
    fn every_prefix_is_need_more_never_corrupt() {
        for f in all_frames() {
            let bytes = encode(&f);
            for k in 0..bytes.len() {
                assert_eq!(
                    decode(&bytes[..k]).unwrap(),
                    None,
                    "prefix of {k} bytes must ask for more"
                );
            }
        }
    }

    #[test]
    fn flipped_body_byte_is_caught_by_the_checksum() {
        let bytes = encode(&Frame::Execute {
            id: 3,
            deadline_ms: 0,
            src: "SELECT X FROM Counter X".into(),
        });
        for i in HEADER..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                decode(&bad).is_err(),
                "flip at body byte {i} must fail the checksum"
            );
        }
    }

    #[test]
    fn trailing_bytes_inside_the_body_are_rejected() {
        // Re-frame a valid body with one extra byte, fixing len + crc:
        // the strict cursor must still reject it.
        let mut body = vec![K_PING];
        body.push(0xAA);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(0, &body).to_le_bytes());
        bytes.extend_from_slice(&body);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn oversized_length_is_corrupt_not_a_wait() {
        let mut bytes = vec![0u8; HEADER];
        bytes[0..4].copy_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn frame_buf_reassembles_byte_by_byte() {
        let frames = all_frames();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode(f));
        }
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for b in wire {
            fb.push(&[b]);
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert!(!fb.has_partial());
    }
}
