//! WAL-shipped read replicas.
//!
//! A replica is a second process holding its own in-memory database,
//! built *only* from what the primary's store directory says: the
//! checkpoint image (snapshot + delta chain) for bootstrap, then the
//! checksummed WAL segments for the tail. It re-reads those files
//! through a [`ShipSource`] on a poll loop and replays new commit
//! units through [`Session::apply_commit_payload`] — the exact code
//! path crash recovery uses, so a state the replica can diverge on is
//! a state recovery would diverge on too.
//!
//! The shipping medium is allowed to misbehave (see
//! [`crate::ship::ChaosSource`]); the replica's obligations under
//! misbehaviour are:
//!
//! * **Torn segment reads** salvage the valid record prefix
//!   ([`storage::wal::scan`] stops at the first bad record) and catch
//!   up on a later round — shipping corruption never reaches the
//!   database.
//! * **Duplicated / stale shipments** are filtered by sequence number:
//!   a unit applies exactly once, when it is the successor of the last
//!   applied unit.
//! * **A sequence gap** — the primary checkpointed and retired the
//!   segments the replica still needed — triggers a full *resync*:
//!   throw the state away and bootstrap again from the newer image.
//!
//! Progress is observable: each applied batch publishes a new epoch on
//! an [`EpochCell`] (the same snapshot-isolation device the service
//! uses), and the `net_replication_lag` gauge exports
//! `shipped_seq − applied_seq`, reaching 0 when the replica has
//! everything the shipped log contains.

use crate::ship::ShipSource;
use oodb::{Database, EpochCell, EpochDb};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use storage::manifest::parse_manifest;
use storage::snapshot::decode_snapshot;
use storage::{delta, wal, SnapshotFile};
use xsql::{EvalOptions, Session};

/// Replica state shared between the tailer thread and the serving
/// front end.
pub struct ReplicaShared {
    epoch: EpochCell,
    applied_seq: AtomicU64,
    shipped_seq: AtomicU64,
    generation: AtomicU64,
    stop: AtomicBool,
    /// Base evaluation options for serving sessions over published
    /// epochs.
    base_opts: EvalOptions,
    registry: Arc<telemetry::Registry>,
    lag_gauge: Arc<telemetry::Gauge>,
    applied_units: Arc<telemetry::Counter>,
    resyncs: Arc<telemetry::Counter>,
    sync_errors: Arc<telemetry::Counter>,
    /// Last sync round's failure, for diagnostics; cleared on success.
    last_error: Mutex<Option<String>>,
}

impl ReplicaShared {
    /// The latest locally published epoch (snapshot + local sequence).
    pub fn epoch(&self) -> EpochDb {
        self.epoch.load()
    }

    /// Highest primary WAL sequence number applied here.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq.load(Ordering::Acquire)
    }

    /// Highest primary WAL sequence number observed in shipped files.
    pub fn shipped_seq(&self) -> u64 {
        self.shipped_seq.load(Ordering::Acquire)
    }

    /// Replication lag in commit units: `shipped_seq − applied_seq`.
    pub fn lag(&self) -> u64 {
        self.shipped_seq().saturating_sub(self.applied_seq())
    }

    /// The primary generation (fencing term) of the manifest this
    /// replica is tailing. 0 until the first manifest ships.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The replica's telemetry registry (`net_replication_lag` etc.).
    pub fn registry(&self) -> &Arc<telemetry::Registry> {
        &self.registry
    }

    /// Evaluation options serving sessions should inherit.
    pub fn base_opts(&self) -> &EvalOptions {
        &self.base_opts
    }

    /// The last failed sync round's message, if the most recent round
    /// failed.
    pub fn last_error(&self) -> Option<String> {
        self.last_error
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn record_round(&self, outcome: Result<(), &str>) {
        let mut slot = self.last_error.lock().unwrap_or_else(|e| e.into_inner());
        match outcome {
            Ok(()) => *slot = None,
            Err(m) => {
                self.sync_errors.inc();
                *slot = Some(m.to_string());
            }
        }
    }
}

/// Configuration for a replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Base-fixture tag the primary's store was created over; replay
    /// onto any other base would corrupt, so it is verified against
    /// the shipped `meta` file.
    pub base_tag: String,
    /// Evaluation options for the replay session and serving readers.
    pub opts: EvalOptions,
}

/// The replica's replay state machine. Owns the ship source and the
/// replay session; drive it with [`ReplicaCore::step`] (tests) or hand
/// it to [`ReplicaCore::spawn`] for a background poll loop.
pub struct ReplicaCore {
    src: Box<dyn ShipSource>,
    base: Database,
    cfg: ReplicaConfig,
    shared: Arc<ReplicaShared>,
    /// `None` until bootstrap succeeds, and again after a gap forces a
    /// resync.
    session: Option<Session>,
    /// Highest generation any applied record (or the bootstrap image)
    /// was written under; a higher-generation segment that *rewrites*
    /// already-applied sequence numbers means the timeline forked under
    /// us and forces a resync.
    applied_gen: u64,
    /// The manifest bytes of the last completed round. A manifest that
    /// changed while yielding nothing to replay is the signature of a
    /// checkpoint retiring records we still needed — the one gap shape
    /// sequence numbers alone cannot reveal.
    seen_manifest: Option<Vec<u8>>,
}

/// One sync round's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncProgress {
    /// Commit units applied this round.
    pub applied: u64,
    /// True when the round bootstrapped (or re-bootstrapped) from the
    /// checkpoint image.
    pub resynced: bool,
}

impl ReplicaCore {
    /// Creates a replica replaying `src` on top of the `base` fixture.
    /// Nothing is fetched yet; the first [`ReplicaCore::step`] (or the
    /// spawned loop) bootstraps.
    pub fn new(src: Box<dyn ShipSource>, base: Database, cfg: ReplicaConfig) -> ReplicaCore {
        let registry = Arc::new(telemetry::Registry::from_env());
        let shared = Arc::new(ReplicaShared {
            epoch: EpochCell::new(base.clone()),
            applied_seq: AtomicU64::new(0),
            shipped_seq: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            base_opts: cfg.opts.clone(),
            lag_gauge: registry.gauge("net_replication_lag", &[]),
            applied_units: registry.counter("net_replica_applied_units_total", &[]),
            resyncs: registry.counter("net_replica_resyncs_total", &[]),
            sync_errors: registry.counter("net_replica_sync_errors_total", &[]),
            last_error: Mutex::new(None),
            registry,
        });
        ReplicaCore {
            src,
            base,
            cfg,
            shared,
            session: None,
            applied_gen: 0,
            seen_manifest: None,
        }
    }

    /// The shared view served to clients.
    pub fn shared(&self) -> Arc<ReplicaShared> {
        Arc::clone(&self.shared)
    }

    /// Verifies the shipped `meta` file names the expected base
    /// fixture. `Ok(false)` when the file has not shipped yet.
    fn check_meta(&mut self) -> Result<bool, String> {
        let Some(bytes) = self
            .src
            .fetch("meta")
            .map_err(|e| format!("ship meta: {e}"))?
        else {
            return Ok(false);
        };
        let text = String::from_utf8_lossy(&bytes);
        let mut lines = text.lines();
        match (lines.next(), lines.next()) {
            (Some("XSQLSTOREv1"), Some(tag)) if tag == self.cfg.base_tag => Ok(true),
            (Some("XSQLSTOREv1"), Some(tag)) => Err(format!(
                "primary store is over base `{tag}`, replica expects `{}`",
                self.cfg.base_tag
            )),
            // A torn ship of a tiny file; retry.
            _ => Ok(false),
        }
    }

    /// Bootstraps the replay session from the shipped checkpoint image
    /// (or the bare fixture when the primary has never checkpointed).
    /// `Ok(None)` when the image is mid-ship and the round should
    /// retry.
    fn bootstrap(&mut self, deltas: &[String]) -> Result<Option<(Session, u64)>, String> {
        let image: Option<SnapshotFile> = match self
            .src
            .fetch("snapshot.bin")
            .map_err(|e| format!("ship snapshot: {e}"))?
        {
            None => None,
            Some(bytes) => match decode_snapshot(&bytes) {
                Ok(mut snap) => {
                    for name in deltas {
                        let Some(dbytes) = self
                            .src
                            .fetch(name)
                            .map_err(|e| format!("ship {name}: {e}"))?
                        else {
                            // Compaction raced the manifest read.
                            return Ok(None);
                        };
                        let Ok(d) = delta::decode_delta(&dbytes) else {
                            return Ok(None); // torn ship; retry
                        };
                        if delta::apply_delta(&mut snap, &d).is_err() {
                            // Chain mismatch: stale snapshot with newer
                            // deltas (or vice versa); retry as a unit.
                            return Ok(None);
                        }
                    }
                    Some(snap)
                }
                // A torn ship of the snapshot itself; retry.
                Err(_) => None,
            },
        };
        let start_seq = image.as_ref().map_or(0, |s| s.last_seq);
        let session = Session::restore_image(
            self.base.clone(),
            &self.cfg.base_tag,
            image,
            self.cfg.opts.clone(),
        )
        .map_err(|e| format!("restore image: {e}"))?;
        Ok(Some((session, start_seq)))
    }

    /// Runs one sync round: fetch the manifest, bootstrap if needed,
    /// replay new commit units, publish an epoch if anything advanced.
    pub fn step(&mut self) -> Result<SyncProgress, String> {
        let r = self.step_inner(false);
        self.shared
            .record_round(r.as_ref().map(|_| ()).map_err(|m| m.as_str()));
        r
    }

    fn step_inner(&mut self, resyncing: bool) -> Result<SyncProgress, String> {
        if !self.check_meta()? {
            return Ok(SyncProgress {
                applied: 0,
                resynced: false,
            });
        }
        let Some(mbytes) = self
            .src
            .fetch("manifest")
            .map_err(|e| format!("ship manifest: {e}"))?
        else {
            return Ok(SyncProgress {
                applied: 0,
                resynced: false,
            });
        };
        let Ok(manifest) = parse_manifest(&mbytes) else {
            // Torn ship of the manifest; retry next round.
            return Ok(SyncProgress {
                applied: 0,
                resynced: false,
            });
        };
        self.shared
            .generation
            .fetch_max(manifest.generation, Ordering::AcqRel);
        let manifest_changed = self.seen_manifest.as_deref() != Some(&mbytes[..]);
        let mut resynced = false;
        if self.session.is_none() {
            match self.bootstrap(&manifest.deltas)? {
                Some((session, start_seq)) => {
                    self.shared.applied_seq.store(start_seq, Ordering::Release);
                    self.session = Some(session);
                    // The checkpoint image was written by the manifest's
                    // generation; everything it contains is that term's
                    // history.
                    self.applied_gen = manifest.generation;
                    resynced = true;
                }
                None => {
                    return Ok(SyncProgress {
                        applied: 0,
                        resynced: false,
                    })
                }
            }
        }
        // Fetch and scan every listed segment up front: generation-aware
        // replay needs one segment of lookahead to cut a stale-term
        // tail. Salvage semantics on the shipped copies: a torn or
        // corrupted fetch still yields the valid record prefix.
        let mut scans: Vec<Option<wal::WalScan>> = Vec::with_capacity(manifest.segments.len());
        for name in &manifest.segments {
            let bytes = self
                .src
                .fetch(name)
                .map_err(|e| format!("ship {name}: {e}"))?;
            scans.push(bytes.map(|b| wal::scan(&b)));
        }
        // A segment whose successor carries a higher generation may end
        // in a zombie tail: appends the deposed primary raced past the
        // promotion. Apply the same cut recovery applies — drop records
        // at or beyond the successor's first sequence number.
        let mut caps: Vec<Option<u64>> = vec![None; scans.len()];
        for i in 0..scans.len().saturating_sub(1) {
            let (Some(cur), Some(next)) = (&scans[i], &scans[i + 1]) else {
                continue;
            };
            let (Some(cg), Some(ng)) = (cur.generation, next.generation) else {
                continue;
            };
            if ng > cg {
                if let Some(&(first, _)) = next.records.first() {
                    caps[i] = Some(first);
                }
            }
        }
        let mut applied_seq = self.shared.applied_seq.load(Ordering::Acquire);
        let mut shipped_seq = self.shared.shipped_seq.load(Ordering::Acquire);
        let mut applied = 0u64;
        let mut gap = false;
        'segments: for (i, scan) in scans.iter().enumerate() {
            let Some(scan) = scan else {
                // Retired (or not yet shipped); later segments decide
                // whether that leaves a gap.
                continue;
            };
            if let (Some(g), Some(&(first, _))) = (scan.generation, scan.records.first()) {
                if g > self.applied_gen && first <= applied_seq {
                    // A higher generation rewrote sequence numbers we
                    // already applied under an older term: we replayed a
                    // zombie tail the promotion discarded. Our state is
                    // off the surviving timeline — resync.
                    gap = true;
                    break 'segments;
                }
            }
            for (seq, payload) in &scan.records {
                if caps[i].is_some_and(|cap| *seq >= cap) {
                    break; // stale-term zombie tail; the successor owns these seqs
                }
                shipped_seq = shipped_seq.max(*seq);
                if *seq <= applied_seq {
                    continue; // duplicate / stale shipment
                }
                if *seq > applied_seq + 1 {
                    // The unit between was retired unseen: resync from
                    // the (necessarily newer) checkpoint image.
                    gap = true;
                    break 'segments;
                }
                let sess = self.session.as_mut().expect("bootstrapped above");
                sess.apply_commit_payload(payload)
                    .map_err(|e| format!("apply unit {seq}: {e}"))?;
                applied_seq = *seq;
                applied += 1;
                if let Some(g) = scan.generation {
                    self.applied_gen = self.applied_gen.max(g);
                }
            }
        }
        if !gap && applied == 0 && manifest_changed && !resynced {
            // The manifest moved but nothing replayed. If the image
            // frontier is past us, a checkpoint retired the records we
            // still needed — with no later records left to expose the
            // sequence gap (e.g. the primary's last act before going
            // quiet was the checkpoint itself). Resync; a replica that
            // trusts silence here serves stale reads at "lag 0". The
            // frontier is the *end of the delta chain* when one exists
            // (incremental checkpoints leave the base snapshot behind).
            let mut frontier = None;
            if let Some(name) = manifest.deltas.last() {
                if let Some(bytes) = self
                    .src
                    .fetch(name)
                    .map_err(|e| format!("ship {name}: {e}"))?
                {
                    if let Ok(d) = delta::decode_delta(&bytes) {
                        frontier = Some(d.last_seq);
                    }
                }
            } else if let Some(bytes) = self
                .src
                .fetch("snapshot.bin")
                .map_err(|e| format!("ship snapshot: {e}"))?
            {
                if let Ok(snap) = decode_snapshot(&bytes) {
                    frontier = Some(snap.last_seq);
                }
            }
            if frontier.is_some_and(|f| f > applied_seq) {
                gap = true;
            }
        }
        if gap && !resyncing {
            self.session = None;
            self.shared.resyncs.inc();
            let again = self.step_inner(true)?;
            return Ok(SyncProgress {
                applied: again.applied,
                resynced: true,
            });
        }
        self.seen_manifest = Some(mbytes);
        self.shared
            .shipped_seq
            .fetch_max(shipped_seq, Ordering::AcqRel);
        if applied > 0 || resynced {
            let sess = self.session.as_mut().expect("bootstrapped above");
            sess.db_mut().commit();
            self.shared
                .applied_seq
                .store(applied_seq, Ordering::Release);
            self.shared.applied_units.add(applied);
            self.shared.epoch.publish(sess.db().clone());
        }
        self.shared.lag_gauge.set(self.shared.lag() as i64);
        Ok(SyncProgress { applied, resynced })
    }

    /// Spawns the background poll loop, returning the running replica.
    pub fn spawn(self, poll: Duration) -> Replica {
        let shared = self.shared();
        let mut core = self;
        let thread = std::thread::Builder::new()
            .name("xsql-replica-tailer".into())
            .spawn(move || {
                while !core.shared.stop.load(Ordering::Acquire) {
                    // Round errors are recorded on the shared state and
                    // retried; a replica outlives transient ship faults.
                    let _ = core.step();
                    std::thread::sleep(poll);
                }
                core
            })
            .expect("spawn replica tailer");
        Replica {
            shared,
            thread: Some(thread),
        }
    }
}

/// A running replica: the tailer thread plus the shared serving view.
pub struct Replica {
    shared: Arc<ReplicaShared>,
    thread: Option<JoinHandle<ReplicaCore>>,
}

impl Replica {
    /// The shared view served to clients.
    pub fn shared(&self) -> Arc<ReplicaShared> {
        Arc::clone(&self.shared)
    }

    /// Blocks until the replica has applied at least `seq`, or the
    /// timeout expires. Returns whether the target was reached.
    pub fn wait_for_seq(&self, seq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.shared.applied_seq() < seq {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Stops the poll loop and returns the core (for inspection or
    /// manual stepping).
    pub fn stop(mut self) -> ReplicaCore {
        self.shared.stop.store(true, Ordering::Release);
        self.thread
            .take()
            .expect("stopped once")
            .join()
            .expect("replica tailer panicked")
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
