//! The network serving tier: a fault-tolerant TCP front end over the
//! service executor, and WAL-shipped read replicas.
//!
//! This crate turns the in-process [`service`] layer into something a
//! remote client can use without losing any of its guarantees:
//!
//! * [`frame`] — the wire protocol: length-prefixed, checksummed,
//!   strictly decoded frames. Garbage never panics the server; every
//!   malformed byte sequence is answered with a typed error before the
//!   connection closes.
//! * [`server`] — the TCP front end: bounded admission feeding the
//!   service's own gates (shed with jittered `retry_after`, never a
//!   silent drop), per-connection read/write deadlines, idle-session
//!   reaping, mid-query CANCEL, and graceful drain.
//! * [`client`] — the protocol client, plus a failover wrapper that
//!   retries idempotent reads primary-then-replica with bounded
//!   exponential backoff, and retries writes only on errors that prove
//!   the statement never applied.
//! * [`ship`] / [`replica`] — WAL shipping: a replica tails the
//!   primary's checksummed store directory (manifest, checkpoint
//!   image, WAL segments — the exact files crash recovery reads),
//!   replays committed units idempotently, publishes epochs, and
//!   serves snapshot-isolated reads while exposing a replication-lag
//!   gauge.
//!
//! See `docs/SERVING.md` for the frame grammar, the error/retry
//! contract, and the replica topology.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod replica;
pub mod server;
pub mod ship;

pub use client::{Client, FailoverClient, Health, NetError, Response, RetryPolicy};
pub use frame::{ErrorCode, Frame, FrameBuf, Role, PROTO_VERSION};
pub use replica::{Replica, ReplicaConfig, ReplicaCore, ReplicaShared};
pub use server::{Backend, PromoteHook, Server, ServerConfig};
pub use ship::{ChaosSource, DirSource, ShipSource};

use oodb::Database;
use xsql::Outcome;

/// Renders a non-relational outcome as the text a local CLI would
/// print for it, resolving OIDs against `db`. The server ships this
/// rendering in `Done.info` so results read identically over the wire
/// and in-process.
pub fn render_outcome(db: &Database, out: &Outcome) -> String {
    use relalg::render_table;
    use std::fmt::Write as _;
    let mut t = String::new();
    match out {
        Outcome::Relation(rel) => write!(t, "{}", render_table(rel, db.oids())).unwrap(),
        Outcome::Created { oids } => {
            writeln!(t, "created {} object(s)", oids.len()).unwrap();
            for o in oids.iter().take(10) {
                writeln!(t, "  {}", db.render(*o)).unwrap();
            }
        }
        Outcome::ViewCreated { class, count } => {
            writeln!(t, "view {} created ({count} object(s))", db.render(*class)).unwrap();
        }
        Outcome::MethodDefined { class, method } => {
            writeln!(
                t,
                "method {} defined on {}",
                db.render(*method),
                db.render(*class)
            )
            .unwrap();
        }
        Outcome::Updated { entries } => writeln!(t, "updated {entries} entr(ies)").unwrap(),
        Outcome::ClassCreated { class } => {
            writeln!(t, "class {} created", db.render(*class)).unwrap()
        }
        Outcome::ObjectCreated { oid } => {
            writeln!(t, "object {} created", db.render(*oid)).unwrap()
        }
        Outcome::SignatureAdded { class, method } => {
            writeln!(
                t,
                "signature {} added to {}",
                db.render(*method),
                db.render(*class)
            )
            .unwrap();
        }
        Outcome::Prepared { name } => writeln!(t, "prepared `{name}`").unwrap(),
        Outcome::Explained { report } => writeln!(t, "{report}").unwrap(),
        Outcome::Stats { report } => writeln!(t, "{report}").unwrap(),
        Outcome::TransactionStarted => writeln!(t, "transaction started").unwrap(),
        Outcome::TransactionCommitted => writeln!(t, "transaction committed").unwrap(),
        Outcome::TransactionRolledBack => writeln!(t, "transaction rolled back").unwrap(),
        Outcome::WalEnabled => writeln!(t, "WAL enabled").unwrap(),
        Outcome::WalDisabled => writeln!(t, "WAL disabled").unwrap(),
        Outcome::Checkpointed => writeln!(t, "checkpoint written").unwrap(),
    }
    t
}
