//! Deterministic fault-injecting in-memory filesystem.
//!
//! [`FaultFs`] models the durability semantics the storage layer relies
//! on: every file has *written* content and a *durable* prefix; `sync`
//! promotes written to durable; renames are journaled and only become
//! durable at `sync_dir`. Two controls drive crash tests:
//!
//! * [`FaultFs::fail_after_ops`] — the first `n` mutating operations
//!   succeed, every later one fails with an injected I/O error (the
//!   process "can no longer reach the disk");
//! * [`FaultFs::crash`] — "power off, reboot": discards non-durable
//!   state according to a [`CrashMode`] and re-arms the filesystem so a
//!   fresh [`Store::open`](crate::Store::open) sees the surviving bytes;
//! * [`FaultFs::set_disk_full`] / [`FaultFs::disk_full_after_ops`] —
//!   space-consuming operations (`write`, `append`) fail with a real
//!   `ENOSPC` until space is "freed", while syncs, truncates, renames
//!   and removals keep working — the disk is full, not broken;
//! * [`FaultFs::fail_transient_ops`] — the next `n` mutating operations
//!   fail with `ErrorKind::Interrupted` and then succeed, exercising the
//!   store's bounded-backoff retry layer deterministically.
//!
//! Everything is deterministic: the same script and the same crash point
//! always produce the same post-crash image, which is what lets the
//! proptest suite shrink failures to a reproducible case.

use crate::fs::StorageFs;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// What the simulated crash does to non-durable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Each file keeps its durable prefix plus *half* of the bytes
    /// written since the last sync — a torn tail mid-record.
    TornTail,
    /// Each file keeps exactly its durable prefix; everything after the
    /// last sync vanishes (the classic lost final fsync).
    LostFsync,
    /// All written bytes survive, but one bit in the middle of each
    /// file's non-durable region is flipped — silent media corruption
    /// that only checksums can catch.
    BitFlip,
    /// All written bytes survive, but renames not yet made durable by
    /// `sync_dir` are undone — the crash lands between the temp-file
    /// rename and the directory sync.
    LostRename,
}

#[derive(Debug, Clone, Default)]
struct FileState {
    data: Vec<u8>,
    durable: usize,
}

#[derive(Debug, Default)]
struct Inner {
    files: BTreeMap<PathBuf, FileState>,
    dirs: BTreeSet<PathBuf>,
    /// Renames since the last `sync_dir`: `(from, to, displaced)` in
    /// application order, so a lost-rename crash can undo them in
    /// reverse.
    renames: Vec<(PathBuf, PathBuf, Option<FileState>)>,
    /// `Some(n)`: the first `n` mutating ops succeed, the rest fail.
    fail_after: Option<u64>,
    ops: u64,
    /// The disk is full: `write`/`append` fail with `ENOSPC` until
    /// cleared. Does not consume `fail_after` ops.
    disk_full: bool,
    /// `Some(n)`: the disk becomes full once `ops` reaches `n`.
    disk_full_after: Option<u64>,
    /// The next `n` mutating ops fail with `ErrorKind::Interrupted`
    /// (transient; the retried operation then succeeds).
    transient: u64,
}

/// Cloneable handle to one shared in-memory filesystem. Clones see the
/// same files, so the handle passed to a [`Store`](crate::Store) and the
/// one kept by the test observe each other.
#[derive(Debug, Clone, Default)]
pub struct FaultFs {
    inner: Arc<Mutex<Inner>>,
}

fn injected() -> io::Error {
    io::Error::other("injected crash: disk unreachable")
}

fn enospc() -> io::Error {
    // A real ENOSPC, so `classify_io` sees exactly what a full disk
    // produces in production.
    io::Error::from_raw_os_error(28)
}

impl Inner {
    /// Gate for mutating operations; counts ops and fails past the limit.
    /// Transient faults fire first and do not consume the op budget (the
    /// retried operation replays at the same op index).
    fn tick(&mut self) -> io::Result<()> {
        if self.transient > 0 {
            self.transient -= 1;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient fault",
            ));
        }
        if let Some(n) = self.fail_after {
            if self.ops >= n {
                return Err(injected());
            }
        }
        self.ops += 1;
        Ok(())
    }

    /// Gate for space-consuming operations (`write`, `append`).
    fn space(&mut self) -> io::Result<()> {
        if self.disk_full_after.is_some_and(|n| self.ops >= n) {
            self.disk_full = true;
        }
        if self.disk_full {
            return Err(enospc());
        }
        Ok(())
    }
}

impl FaultFs {
    /// A fresh, empty filesystem with no fault armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the fault: the next `n` mutating operations (write, append,
    /// truncate, rename, remove, sync, sync_dir, create_dir_all)
    /// succeed, every subsequent one fails with an I/O error.
    pub fn fail_after_ops(&self, n: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.fail_after = Some(n);
        inner.ops = 0;
    }

    /// Disarms the fault without crashing (all operations succeed again).
    pub fn disarm(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.fail_after = None;
        inner.ops = 0;
    }

    /// Fills (or frees) the disk: while full, `write` and `append` fail
    /// with a real `ENOSPC`; syncs, truncates, renames and removals
    /// still work. Freeing also clears a pending
    /// [`FaultFs::disk_full_after_ops`] trigger.
    pub fn set_disk_full(&self, full: bool) {
        let mut inner = self.inner.lock().unwrap();
        inner.disk_full = full;
        if !full {
            inner.disk_full_after = None;
        }
    }

    /// Arms a deterministic disk-full trigger: once `n` mutating
    /// operations have run, the disk is full (as per
    /// [`FaultFs::set_disk_full`]) until freed.
    pub fn disk_full_after_ops(&self, n: u64) {
        self.inner.lock().unwrap().disk_full_after = Some(n);
    }

    /// True while the simulated disk is full.
    pub fn is_disk_full(&self) -> bool {
        let mut inner = self.inner.lock().unwrap();
        inner.space().is_err()
    }

    /// Arms `n` transient faults: the next `n` mutating operations fail
    /// with `ErrorKind::Interrupted`, after which operations succeed
    /// again — the deterministic stand-in for a flaky-but-recovering
    /// disk that the retry layer must absorb.
    pub fn fail_transient_ops(&self, n: u64) {
        self.inner.lock().unwrap().transient = n;
    }

    /// Number of mutating operations performed since the fault was
    /// armed (or since construction, when unarmed).
    pub fn ops_done(&self) -> u64 {
        self.inner.lock().unwrap().ops
    }

    /// Simulates power loss and reboot: applies `mode` to all
    /// non-durable state, marks the survivors durable, and disarms the
    /// fault so recovery code can run against the surviving image.
    pub fn crash(&self, mode: CrashMode) {
        let mut inner = self.inner.lock().unwrap();
        inner.fail_after = None;
        inner.ops = 0;
        inner.transient = 0;
        if mode == CrashMode::LostRename {
            // Undo unsynced renames in reverse order, then drop pending
            // writes: nothing after the last durability point survived.
            let journal: Vec<_> = inner.renames.drain(..).collect();
            for (from, to, displaced) in journal.into_iter().rev() {
                if let Some(f) = inner.files.remove(&to) {
                    inner.files.insert(from, f);
                }
                if let Some(d) = displaced {
                    inner.files.insert(to, d);
                }
            }
        }
        inner.renames.clear();
        for f in inner.files.values_mut() {
            let durable = f.durable.min(f.data.len());
            let pending = f.data.len() - durable;
            match mode {
                CrashMode::TornTail => f.data.truncate(durable + pending / 2),
                CrashMode::LostFsync | CrashMode::LostRename => f.data.truncate(durable),
                CrashMode::BitFlip => {
                    if pending > 0 {
                        let i = durable + pending / 2;
                        f.data[i] ^= 0x10;
                    }
                }
            }
            // After reboot, whatever is on disk is (vacuously) durable.
            f.durable = f.data.len();
        }
    }

    /// Direct read of a file's current (written, possibly non-durable)
    /// content; `None` if absent. For test assertions.
    pub fn peek(&self, path: &Path) -> Option<Vec<u8>> {
        self.inner
            .lock()
            .unwrap()
            .files
            .get(path)
            .map(|f| f.data.clone())
    }
}

impl StorageFs for FaultFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let inner = self.inner.lock().unwrap();
        inner
            .files
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.space()?;
        inner.tick()?;
        inner.files.insert(
            path.to_path_buf(),
            FileState {
                data: data.to_vec(),
                durable: 0,
            },
        );
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.space()?;
        inner.tick()?;
        inner
            .files
            .entry(path.to_path_buf())
            .or_default()
            .data
            .extend_from_slice(data);
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick()?;
        let f = inner
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        let len = usize::try_from(len).expect("truncate length");
        f.data.truncate(len);
        f.durable = f.durable.min(len);
        Ok(())
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick()?;
        let f = inner
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        f.durable = f.data.len();
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick()?;
        let f = inner
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        let displaced = inner.files.insert(to.to_path_buf(), f);
        inner
            .renames
            .push((from.to_path_buf(), to.to_path_buf(), displaced));
        Ok(())
    }

    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick()?;
        inner.renames.clear();
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        let inner = self.inner.lock().unwrap();
        inner.files.contains_key(path) || inner.dirs.contains(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick()?;
        inner.files.remove(path);
        Ok(())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick()?;
        inner.dirs.insert(dir.to_path_buf());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_promotes_written_to_durable() {
        let fs = FaultFs::new();
        let p = Path::new("f");
        fs.append(p, b"abcd").unwrap();
        fs.sync(p).unwrap();
        fs.append(p, b"efgh").unwrap();
        fs.crash(CrashMode::LostFsync);
        assert_eq!(fs.read(p).unwrap(), b"abcd");
    }

    #[test]
    fn torn_tail_keeps_half_the_pending_bytes() {
        let fs = FaultFs::new();
        let p = Path::new("f");
        fs.append(p, b"abcd").unwrap();
        fs.sync(p).unwrap();
        fs.append(p, b"efgh").unwrap();
        fs.crash(CrashMode::TornTail);
        assert_eq!(fs.read(p).unwrap(), b"abcdef");
    }

    #[test]
    fn bit_flip_corrupts_pending_region_only() {
        let fs = FaultFs::new();
        let p = Path::new("f");
        fs.append(p, b"abcd").unwrap();
        fs.sync(p).unwrap();
        fs.append(p, b"efgh").unwrap();
        fs.crash(CrashMode::BitFlip);
        let got = fs.read(p).unwrap();
        assert_eq!(&got[..4], b"abcd");
        assert_ne!(&got[4..], b"efgh");
        assert_eq!(got.len(), 8);
    }

    #[test]
    fn lost_rename_restores_both_files() {
        let fs = FaultFs::new();
        let (tmp, fin) = (Path::new("t"), Path::new("s"));
        fs.write(fin, b"old").unwrap();
        fs.sync(fin).unwrap();
        fs.write(tmp, b"new").unwrap();
        fs.sync(tmp).unwrap();
        fs.rename(tmp, fin).unwrap();
        fs.crash(CrashMode::LostRename);
        assert_eq!(fs.read(fin).unwrap(), b"old");
        assert_eq!(fs.read(tmp).unwrap(), b"new");
    }

    #[test]
    fn synced_rename_survives_lost_rename_crash() {
        let fs = FaultFs::new();
        let (tmp, fin) = (Path::new("t"), Path::new("s"));
        fs.write(tmp, b"new").unwrap();
        fs.sync(tmp).unwrap();
        fs.rename(tmp, fin).unwrap();
        fs.sync_dir(Path::new(".")).unwrap();
        fs.crash(CrashMode::LostRename);
        assert_eq!(fs.read(fin).unwrap(), b"new");
        assert!(!fs.exists(tmp));
    }

    #[test]
    fn ops_fail_past_the_armed_limit() {
        let fs = FaultFs::new();
        let p = Path::new("f");
        fs.fail_after_ops(2);
        fs.append(p, b"a").unwrap();
        fs.append(p, b"b").unwrap();
        assert!(fs.append(p, b"c").is_err());
        assert!(fs.sync(p).is_err());
        // Reads still work while the fault is armed.
        assert_eq!(fs.read(p).unwrap(), b"ab");
    }

    #[test]
    fn disk_full_fails_writes_but_not_syncs_or_removes() {
        let fs = FaultFs::new();
        let p = Path::new("f");
        fs.append(p, b"a").unwrap();
        fs.set_disk_full(true);
        let err = fs.append(p, b"b").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        assert!(fs.write(Path::new("g"), b"x").is_err());
        // The disk is full, not broken: durability and reclamation work.
        fs.sync(p).unwrap();
        fs.truncate(p, 0).unwrap();
        fs.remove(p).unwrap();
        fs.set_disk_full(false);
        fs.append(p, b"b").unwrap();
        assert_eq!(fs.read(p).unwrap(), b"b");
    }

    #[test]
    fn disk_full_after_ops_triggers_deterministically() {
        let fs = FaultFs::new();
        let p = Path::new("f");
        fs.disk_full_after_ops(2);
        fs.append(p, b"a").unwrap();
        fs.append(p, b"b").unwrap();
        assert!(fs.append(p, b"c").unwrap_err().raw_os_error() == Some(28));
        fs.set_disk_full(false);
        fs.append(p, b"c").unwrap();
        assert_eq!(fs.read(p).unwrap(), b"abc");
    }

    #[test]
    fn transient_ops_fail_then_recover() {
        let fs = FaultFs::new();
        let p = Path::new("f");
        fs.fail_transient_ops(2);
        for _ in 0..2 {
            let err = fs.append(p, b"x").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        }
        fs.append(p, b"x").unwrap();
        assert_eq!(fs.read(p).unwrap(), b"x");
    }
}
