//! Incremental checkpoint deltas.
//!
//! A full snapshot rewrite is proportional to the whole database —
//! "fatal at millions" of objects (ROADMAP item 3). A
//! [`SnapshotDelta`] instead records only what changed since the
//! previous checkpoint image: appended interner entries (the interner
//! is append-only), class upserts/removals keyed by class OID, and
//! keyed upserts/tombstones for memberships, domains and stored state.
//! The store keeps the last checkpoint image in memory, diffs against
//! it ([`diff_snapshot`]), and writes `delta.NNNNNN.bin` files chained
//! by sequence number: each delta's `prev_seq` must equal the covered
//! sequence of the image it applies to, so a stale delta (orphaned by a
//! crashed full checkpoint) is recognized and skipped during recovery.
//!
//! [`diff_snapshot`] returns `None` when the new image is not an
//! *extension* of the old one (e.g. the interner prefix diverged, which
//! cannot happen in committed history but is cheap to verify) — the
//! store then falls back to a full snapshot. Chains are compacted into
//! a new full snapshot after `delta_chain_max` links.
//!
//! File layout mirrors [`crate::snapshot`]: an 8-byte magic, a CRC32 of
//! the body, then the body; OIDs are raw table indices validated
//! against the combined base + appended table length.

use crate::snapshot::{
    corrupt, put_class_entry, put_len, put_oid, put_oid_data, put_oids, put_str, put_u32, put_u64,
    put_val, read_class_entry, read_oid_data, OidReader, R,
};
use crate::{wal, SnapshotFile, StorageError, StorageResult};
use oodb::{ClassEntry, Oid, OidData, Val};
use std::collections::{BTreeMap, BTreeSet};

/// File magic for checkpoint delta files.
pub const DELTA_MAGIC: &[u8; 8] = b"XSQLDLT1";

/// One stored-state key: `(receiver, method, args)`.
pub type StateKey = (Oid, Oid, Vec<Oid>);

/// Everything that changed between two checkpoint images.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotDelta {
    /// Covered sequence of the image this delta applies to; recovery
    /// skips a delta whose `prev_seq` does not match the running chain.
    pub prev_seq: u64,
    /// Covered sequence after applying this delta.
    pub last_seq: u64,
    /// Anonymous-OID counter after applying.
    pub anon_counter: u64,
    /// Interner length of the base image (validation anchor).
    pub base_oids: usize,
    /// Catalog statements appended since the base image.
    pub catalog_append: Vec<String>,
    /// Interner entries appended since the base image.
    pub oid_append: Vec<OidData>,
    /// Classes removed (by class OID).
    pub class_removes: Vec<Oid>,
    /// Classes added or changed, in the new image's order.
    pub class_upserts: Vec<ClassEntry>,
    /// Objects whose membership entry vanished.
    pub instance_removes: Vec<Oid>,
    /// Memberships added or changed.
    pub instance_upserts: Vec<(Oid, Vec<Oid>)>,
    /// Individuals that left the active domain.
    pub individuals_removed: Vec<Oid>,
    /// Individuals that joined the active domain.
    pub individuals_added: Vec<Oid>,
    /// Method-objects removed from the catalogue.
    pub methods_removed: Vec<Oid>,
    /// Method-objects added to the catalogue.
    pub methods_added: Vec<Oid>,
    /// State entries deleted.
    pub state_removes: Vec<StateKey>,
    /// State entries added or overwritten.
    pub state_upserts: Vec<(StateKey, Val)>,
}

impl SnapshotDelta {
    /// True when the delta carries no changes at all (the images were
    /// identical except for the covered sequence).
    pub fn is_empty_change(&self) -> bool {
        self.catalog_append.is_empty()
            && self.oid_append.is_empty()
            && self.class_removes.is_empty()
            && self.class_upserts.is_empty()
            && self.instance_removes.is_empty()
            && self.instance_upserts.is_empty()
            && self.individuals_removed.is_empty()
            && self.individuals_added.is_empty()
            && self.methods_removed.is_empty()
            && self.methods_added.is_empty()
            && self.state_removes.is_empty()
            && self.state_upserts.is_empty()
    }
}

/// Set difference of two sorted OID slices: `(in old only, in new only)`.
fn sorted_diff(old: &[Oid], new: &[Oid]) -> (Vec<Oid>, Vec<Oid>) {
    let o: BTreeSet<Oid> = old.iter().copied().collect();
    let n: BTreeSet<Oid> = new.iter().copied().collect();
    (
        o.difference(&n).copied().collect(),
        n.difference(&o).copied().collect(),
    )
}

/// Computes the delta turning `old` into `new`, or `None` when `new` is
/// not an extension of `old` (diverged base tag, interner or catalog
/// prefix, or a class order the upsert rules cannot reproduce) — the
/// caller falls back to a full snapshot.
pub fn diff_snapshot(old: &SnapshotFile, new: &SnapshotFile) -> Option<SnapshotDelta> {
    if old.base_tag != new.base_tag
        || new.last_seq < old.last_seq
        || new.catalog.len() < old.catalog.len()
        || new.catalog[..old.catalog.len()] != old.catalog[..]
        || new.db.oids.len() < old.db.oids.len()
        || new.db.oids[..old.db.oids.len()] != old.db.oids[..]
    {
        return None;
    }
    let mut d = SnapshotDelta {
        prev_seq: old.last_seq,
        last_seq: new.last_seq,
        anon_counter: new.anon_counter,
        base_oids: old.db.oids.len(),
        catalog_append: new.catalog[old.catalog.len()..].to_vec(),
        oid_append: new.db.oids[old.db.oids.len()..].to_vec(),
        ..SnapshotDelta::default()
    };

    // Classes: upserts keyed by class OID plus tombstones. The apply
    // rule (retain, replace in place, append) reproduces the new order
    // only if surviving classes kept their relative order — verify that
    // here and bail to a full snapshot otherwise.
    let old_classes: BTreeMap<Oid, &ClassEntry> =
        old.db.classes.iter().map(|c| (c.class, c)).collect();
    let new_class_set: BTreeSet<Oid> = new.db.classes.iter().map(|c| c.class).collect();
    d.class_removes = old
        .db
        .classes
        .iter()
        .map(|c| c.class)
        .filter(|c| !new_class_set.contains(c))
        .collect();
    for ce in &new.db.classes {
        match old_classes.get(&ce.class) {
            Some(o) if *o == ce => {}
            _ => d.class_upserts.push(ce.clone()),
        }
    }
    let expected_order: Vec<Oid> = old
        .db
        .classes
        .iter()
        .map(|c| c.class)
        .filter(|c| new_class_set.contains(c))
        .chain(
            new.db
                .classes
                .iter()
                .map(|c| c.class)
                .filter(|c| !old_classes.contains_key(c)),
        )
        .collect();
    let new_order: Vec<Oid> = new.db.classes.iter().map(|c| c.class).collect();
    if expected_order != new_order {
        return None;
    }

    // Memberships and state: both sides are sorted by key, so keyed
    // upserts/tombstones applied through a BTreeMap reproduce the new
    // vector exactly.
    let old_inst: BTreeMap<Oid, &Vec<Oid>> =
        old.db.instance_of.iter().map(|(o, c)| (*o, c)).collect();
    let new_inst: BTreeSet<Oid> = new.db.instance_of.iter().map(|(o, _)| *o).collect();
    d.instance_removes = old_inst
        .keys()
        .copied()
        .filter(|o| !new_inst.contains(o))
        .collect();
    for (o, cs) in &new.db.instance_of {
        if old_inst.get(o) != Some(&cs) {
            d.instance_upserts.push((*o, cs.clone()));
        }
    }

    (d.individuals_removed, d.individuals_added) =
        sorted_diff(&old.db.individuals, &new.db.individuals);
    (d.methods_removed, d.methods_added) =
        sorted_diff(&old.db.method_objects, &new.db.method_objects);

    let old_state: BTreeMap<&StateKey, &Val> = old.db.state.iter().map(|(k, v)| (k, v)).collect();
    let new_state: BTreeSet<&StateKey> = new.db.state.iter().map(|(k, _)| k).collect();
    d.state_removes = old_state
        .keys()
        .filter(|k| !new_state.contains(**k))
        .map(|k| (*k).clone())
        .collect();
    for (k, v) in &new.db.state {
        if old_state.get(k) != Some(&v) {
            d.state_upserts.push((k.clone(), v.clone()));
        }
    }
    Some(d)
}

/// Applies `delta` to `base` in place. The caller has already verified
/// the chain (`delta.prev_seq == base.last_seq`); this checks the
/// structural anchor (interner length) and upsert integrity.
pub fn apply_delta(base: &mut SnapshotFile, delta: &SnapshotDelta) -> StorageResult<()> {
    if delta.base_oids != base.db.oids.len() {
        return Err(StorageError::Corrupt(format!(
            "delta: interner anchor mismatch (base has {} entries, delta expects {})",
            base.db.oids.len(),
            delta.base_oids
        )));
    }
    base.last_seq = delta.last_seq;
    base.anon_counter = delta.anon_counter;
    base.catalog.extend(delta.catalog_append.iter().cloned());
    base.db.oids.extend(delta.oid_append.iter().cloned());

    let removed: BTreeSet<Oid> = delta.class_removes.iter().copied().collect();
    base.db.classes.retain(|c| !removed.contains(&c.class));
    for ce in &delta.class_upserts {
        match base.db.classes.iter_mut().find(|c| c.class == ce.class) {
            Some(slot) => *slot = ce.clone(),
            None => base.db.classes.push(ce.clone()),
        }
    }

    let mut inst: BTreeMap<Oid, Vec<Oid>> = base.db.instance_of.drain(..).collect();
    for o in &delta.instance_removes {
        inst.remove(o);
    }
    for (o, cs) in &delta.instance_upserts {
        inst.insert(*o, cs.clone());
    }
    base.db.instance_of = inst.into_iter().collect();

    let mut ind: BTreeSet<Oid> = base.db.individuals.drain(..).collect();
    for o in &delta.individuals_removed {
        ind.remove(o);
    }
    ind.extend(delta.individuals_added.iter().copied());
    base.db.individuals = ind.into_iter().collect();

    let mut mo: BTreeSet<Oid> = base.db.method_objects.drain(..).collect();
    for o in &delta.methods_removed {
        mo.remove(o);
    }
    mo.extend(delta.methods_added.iter().copied());
    base.db.method_objects = mo.into_iter().collect();

    let mut state: BTreeMap<StateKey, Val> = base.db.state.drain(..).collect();
    for k in &delta.state_removes {
        state.remove(k);
    }
    for (k, v) in &delta.state_upserts {
        state.insert(k.clone(), v.clone());
    }
    base.db.state = state.into_iter().collect();
    Ok(())
}

fn put_state_key(out: &mut Vec<u8>, (recv, method, args): &StateKey) {
    put_oid(out, *recv);
    put_oid(out, *method);
    put_oids(out, args);
}

/// Encodes a delta file (magic + CRC + body).
pub fn encode_delta(d: &SnapshotDelta) -> Vec<u8> {
    let mut body = Vec::new();
    put_u64(&mut body, d.prev_seq);
    put_u64(&mut body, d.last_seq);
    put_u64(&mut body, d.anon_counter);
    put_u32(
        &mut body,
        u32::try_from(d.base_oids).expect("interner fits u32"),
    );
    put_len(&mut body, d.catalog_append.len());
    for s in &d.catalog_append {
        put_str(&mut body, s);
    }
    put_len(&mut body, d.oid_append.len());
    for e in &d.oid_append {
        put_oid_data(&mut body, e);
    }
    put_oids(&mut body, &d.class_removes);
    put_len(&mut body, d.class_upserts.len());
    for ce in &d.class_upserts {
        put_class_entry(&mut body, ce);
    }
    put_oids(&mut body, &d.instance_removes);
    put_len(&mut body, d.instance_upserts.len());
    for (o, cs) in &d.instance_upserts {
        put_oid(&mut body, *o);
        put_oids(&mut body, cs);
    }
    put_oids(&mut body, &d.individuals_removed);
    put_oids(&mut body, &d.individuals_added);
    put_oids(&mut body, &d.methods_removed);
    put_oids(&mut body, &d.methods_added);
    put_len(&mut body, d.state_removes.len());
    for k in &d.state_removes {
        put_state_key(&mut body, k);
    }
    put_len(&mut body, d.state_upserts.len());
    for (k, v) in &d.state_upserts {
        put_state_key(&mut body, k);
        put_val(&mut body, v);
    }

    let mut out = Vec::with_capacity(DELTA_MAGIC.len() + 4 + body.len());
    out.extend_from_slice(DELTA_MAGIC);
    put_u32(&mut out, wal::crc32(0, &body));
    out.extend_from_slice(&body);
    out
}

fn read_state_key(r: &mut R<'_>, rd: &OidReader) -> StorageResult<StateKey> {
    Ok((
        rd.oid(r, "state receiver")?,
        rd.oid(r, "state method")?,
        rd.oids(r, "state args")?,
    ))
}

/// Decodes and validates a delta file (magic and CRC checked first; OID
/// indices validated against the base + appended interner length the
/// file itself declares — [`apply_delta`] re-checks that anchor against
/// the actual base image).
pub fn decode_delta(bytes: &[u8]) -> StorageResult<SnapshotDelta> {
    if bytes.len() < DELTA_MAGIC.len() + 4 || &bytes[..DELTA_MAGIC.len()] != DELTA_MAGIC {
        return Err(corrupt("delta magic"));
    }
    let crc = u32::from_le_bytes(
        bytes[DELTA_MAGIC.len()..DELTA_MAGIC.len() + 4]
            .try_into()
            .unwrap(),
    );
    let body = &bytes[DELTA_MAGIC.len() + 4..];
    if wal::crc32(0, body) != crc {
        return Err(StorageError::Corrupt("delta: checksum mismatch".into()));
    }
    let mut r = R { b: body, pos: 0 };
    let mut d = SnapshotDelta {
        prev_seq: r.u64("prev seq")?,
        last_seq: r.u64("last seq")?,
        anon_counter: r.u64("anon counter")?,
        base_oids: r.u32("base interner length")? as usize,
        ..SnapshotDelta::default()
    };
    let nc = r.len("catalog append count")?;
    for _ in 0..nc {
        d.catalog_append.push(r.str("catalog statement")?);
    }
    let na = r.len("oid append count")?;
    let rd = OidReader {
        table_len: d.base_oids + na,
    };
    for j in 0..na {
        d.oid_append
            .push(read_oid_data(&mut r, &rd, d.base_oids + j)?);
    }
    d.class_removes = rd.oids(&mut r, "class removes")?;
    let ncl = r.len("class upsert count")?;
    for _ in 0..ncl {
        d.class_upserts.push(read_class_entry(&mut r, &rd)?);
    }
    d.instance_removes = rd.oids(&mut r, "instance removes")?;
    let ni = r.len("instance upsert count")?;
    for _ in 0..ni {
        let o = rd.oid(&mut r, "instance object")?;
        let cs = rd.oids(&mut r, "instance classes")?;
        d.instance_upserts.push((o, cs));
    }
    d.individuals_removed = rd.oids(&mut r, "individuals removed")?;
    d.individuals_added = rd.oids(&mut r, "individuals added")?;
    d.methods_removed = rd.oids(&mut r, "methods removed")?;
    d.methods_added = rd.oids(&mut r, "methods added")?;
    let nsr = r.len("state remove count")?;
    for _ in 0..nsr {
        d.state_removes.push(read_state_key(&mut r, &rd)?);
    }
    let nsu = r.len("state upsert count")?;
    for _ in 0..nsu {
        let k = read_state_key(&mut r, &rd)?;
        let v = rd.val(&mut r)?;
        d.state_upserts.push((k, v));
    }
    if r.pos != body.len() {
        return Err(corrupt("delta file (trailing bytes)"));
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::encode_snapshot;
    use oodb::Database;

    fn image(db: &Database, last_seq: u64, catalog: Vec<String>) -> SnapshotFile {
        SnapshotFile {
            base_tag: "empty".into(),
            last_seq,
            anon_counter: last_seq,
            catalog,
            db: db.export_snapshot(),
        }
    }

    /// Evolve a database through definitional and state changes;
    /// diff + apply must reproduce the new image exactly, and the
    /// encoded delta must be far smaller than the full snapshot.
    #[test]
    fn diff_apply_reproduces_new_image() {
        let mut db = Database::new();
        let person = db.define_class("Person", &[]).unwrap();
        let numeral = db.builtins().numeral;
        db.add_signature(person, "Age", &[], numeral, false)
            .unwrap();
        let age = db.oids().find_sym("Age").unwrap();
        for i in 0..200 {
            let p = db.new_individual(&format!("p{i}"), &[person]).unwrap();
            let v = db.oids_mut().int(i);
            db.set_scalar(p, age, &[], v).unwrap();
        }
        let old = image(&db, 10, vec!["CAT0".into()]);

        // A small change: one new object, one mutated value, one new class.
        let student = db.define_class("Student", &[person]).unwrap();
        let p = db.new_individual("fresh", &[student]).unwrap();
        let v = db.oids_mut().int(99);
        db.set_scalar(p, age, &[], v).unwrap();
        let p0 = db.oids().find_sym("p0").unwrap();
        let v2 = db.oids_mut().int(1000);
        db.set_scalar(p0, age, &[], v2).unwrap();
        let new = image(&db, 14, vec!["CAT0".into(), "CAT1".into()]);

        let d = diff_snapshot(&old, &new).expect("extension diff");
        let mut rebuilt = old.clone();
        apply_delta(&mut rebuilt, &d).unwrap();
        assert_eq!(rebuilt, new);

        // Incrementality: the delta is a small fraction of the full image.
        let full = encode_snapshot(&new).len();
        let delta = encode_delta(&d).len();
        assert!(
            delta * 5 < full,
            "delta ({delta} B) not proportional to the change (full {full} B)"
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut db = Database::new();
        let person = db.define_class("Person", &[]).unwrap();
        let old = image(&db, 1, vec![]);
        db.new_individual("p", &[person]).unwrap();
        let new = image(&db, 2, vec!["CAT".into()]);
        let d = diff_snapshot(&old, &new).unwrap();
        let got = decode_delta(&encode_delta(&d)).unwrap();
        assert_eq!(got, d);
    }

    #[test]
    fn diverged_prefix_forces_full_snapshot() {
        let mut db1 = Database::new();
        db1.define_class("A", &[]).unwrap();
        let mut db2 = Database::new();
        db2.define_class("B", &[]).unwrap();
        let old = image(&db1, 1, vec![]);
        let new = image(&db2, 2, vec![]);
        assert!(diff_snapshot(&old, &new).is_none());
    }

    #[test]
    fn flipped_bytes_are_detected() {
        let mut db = Database::new();
        let person = db.define_class("Person", &[]).unwrap();
        let old = image(&db, 1, vec![]);
        db.new_individual("p", &[person]).unwrap();
        let new = image(&db, 2, vec![]);
        let bytes = encode_delta(&diff_snapshot(&old, &new).unwrap());
        for i in (0..bytes.len()).step_by(5) {
            let mut m = bytes.clone();
            m[i] ^= 0x20;
            assert!(decode_delta(&m).is_err(), "flip at {i} went unnoticed");
        }
    }

    #[test]
    fn interner_anchor_mismatch_is_rejected_on_apply() {
        let mut db = Database::new();
        let old = image(&db, 1, vec![]);
        db.define_class("A", &[]).unwrap();
        let new = image(&db, 2, vec![]);
        let d = diff_snapshot(&old, &new).unwrap();
        let mut wrong = new.clone();
        apply_delta(&mut wrong, &d).unwrap_err();
    }
}
