//! The filesystem seam.
//!
//! Every byte the storage layer reads or writes goes through
//! [`StorageFs`], so the crash test-suite can substitute a deterministic
//! in-memory filesystem ([`crate::fault::FaultFs`]) that injects torn
//! writes and lost fsyncs at chosen points. [`RealFs`] is the production
//! implementation over `std::fs`.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Minimal filesystem interface: exactly the operations the WAL and
/// checkpoint protocols need, with explicit durability points (`sync`,
/// `sync_dir`) so fault injection can distinguish written from durable.
pub trait StorageFs: Send {
    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates or truncates the file and writes `data`. Not durable
    /// until [`StorageFs::sync`].
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Appends `data` to the file, creating it if absent. Not durable
    /// until [`StorageFs::sync`].
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Truncates the file to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Makes the file's current content durable (fsync).
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to`, replacing any existing `to`.
    /// The rename itself is not durable until [`StorageFs::sync_dir`].
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Makes directory-entry changes (renames, creations) durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// True if the path exists.
    fn exists(&self, path: &Path) -> bool;
    /// Removes the file; `Ok` even if it does not exist.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Creates the directory and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// How the retry/degradation machinery should treat an I/O error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoClass {
    /// Worth retrying with backoff: interruptions, timeouts, momentary
    /// unavailability.
    Transient,
    /// The disk is out of space (`ENOSPC`). Not retryable, but also not
    /// fatal: the store degrades to read-only and probes for freed
    /// space.
    DiskFull,
    /// Anything else — media errors, permission failures, injected
    /// crashes. Retrying would mask real damage; surface immediately.
    Hard,
}

/// Classifies an I/O error for the retry layer and the ENOSPC state
/// machine. Deterministic under [`crate::fault::FaultFs`]: its injected
/// transient faults are `Interrupted`, its full-disk errors carry the
/// real `ENOSPC` code, and its injected crashes are `Other` (hard).
pub fn classify_io(e: &io::Error) -> IoClass {
    if e.raw_os_error() == Some(28) || e.kind() == io::ErrorKind::StorageFull {
        return IoClass::DiskFull;
    }
    match e.kind() {
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            IoClass::Transient
        }
        _ => IoClass::Hard,
    }
}

/// Production implementation over `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl StorageFs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        fs::write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(data)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        fs::OpenOptions::new().read(true).open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory fsync is a POSIX idiom; on platforms where a
        // directory cannot be opened for syncing, the rename is already
        // as durable as the platform allows. But once the directory IS
        // open, an fsync failure is a real I/O error and must propagate:
        // swallowing it would let a checkpoint truncate the WAL while
        // the snapshot rename is not yet durable.
        match fs::File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            r => r,
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }
}
