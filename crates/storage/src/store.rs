//! The durable store: one directory, one WAL, one snapshot.
//!
//! Protocols:
//!
//! * **Commit.** [`Store::append_commit`] frames the payload with the
//!   next sequence number, appends it to `wal`, and (unless disabled for
//!   benchmarking) fsyncs before returning. The caller acknowledges the
//!   statement only after this returns `Ok`, so a crash can lose at most
//!   the unacknowledged suffix.
//! * **Checkpoint.** [`Store::checkpoint`] writes the snapshot to
//!   `snapshot.tmp`, fsyncs it, renames over `snapshot.bin`, fsyncs the
//!   directory, and only then truncates the WAL. Every crash point
//!   leaves either the old or the new snapshot intact; WAL truncation is
//!   pure space reclamation because replay skips records the snapshot
//!   already covers (`seq <= last_seq`).
//! * **Recovery.** [`Store::open`] reads the latest snapshot (if any),
//!   scans the WAL, truncates any torn/corrupt tail in place, and
//!   returns the surviving records past the snapshot for the session to
//!   replay.

use crate::fs::StorageFs;
use crate::snapshot::{decode_snapshot, encode_snapshot, SnapshotFile};
use crate::{wal, StorageError, StorageResult};
use std::path::{Path, PathBuf};

const META: &str = "meta";
const WAL: &str = "wal";
const SNAPSHOT: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";
const META_MAGIC: &str = "XSQLSTOREv1";

/// Handle to one store directory. All I/O goes through the injected
/// [`StorageFs`].
pub struct Store {
    fs: Box<dyn StorageFs>,
    dir: PathBuf,
    next_seq: u64,
    sync_on_commit: bool,
    /// Cached metric handles, present once a registry is attached
    /// ([`Store::attach_registry`]). Instrumentation is pure timing and
    /// atomic counting around the existing I/O calls — it never adds a
    /// filesystem operation, so fault-injection tests that count ops
    /// see the same sequence with or without telemetry.
    metrics: Option<StoreMetrics>,
}

/// Cached handles into the attached telemetry registry.
struct StoreMetrics {
    wal_append_latency: std::sync::Arc<telemetry::Histogram>,
    wal_fsync_latency: std::sync::Arc<telemetry::Histogram>,
    checkpoint_latency: std::sync::Arc<telemetry::Histogram>,
    wal_appends: std::sync::Arc<telemetry::Counter>,
    wal_bytes: std::sync::Arc<telemetry::Counter>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("next_seq", &self.next_seq)
            .field("sync_on_commit", &self.sync_on_commit)
            .finish()
    }
}

/// What [`Store::open`] found on disk.
#[derive(Debug)]
pub struct Recovered {
    /// Base-fixture tag from the `meta` file.
    pub base_tag: String,
    /// The latest checkpoint, if one was ever taken.
    pub snapshot: Option<SnapshotFile>,
    /// Valid WAL records past the snapshot (`seq > snapshot.last_seq`),
    /// as raw payloads in log order; the session decodes them against
    /// its own OID table as it replays.
    pub tail: Vec<(u64, Vec<u8>)>,
}

impl Store {
    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// True if `dir` already contains a store (its `meta` file exists).
    pub fn exists(fs: &dyn StorageFs, dir: &Path) -> bool {
        fs.exists(&dir.join(META))
    }

    /// Reads just the base-fixture tag of an existing store, without
    /// opening it (the CLI uses this to pick the right fixture before
    /// constructing a session).
    pub fn read_base_tag(fs: &dyn StorageFs, dir: &Path) -> StorageResult<String> {
        parse_meta(&fs.read(&dir.join(META))?)
    }

    /// Creates a fresh store in `dir` (which must not already hold one).
    pub fn create(
        fs: Box<dyn StorageFs>,
        dir: impl Into<PathBuf>,
        base_tag: &str,
    ) -> StorageResult<Store> {
        let dir = dir.into();
        if Store::exists(fs.as_ref(), &dir) {
            return Err(StorageError::Corrupt(format!(
                "store already exists in {}",
                dir.display()
            )));
        }
        fs.create_dir_all(&dir)?;
        let store = Store {
            fs,
            dir,
            next_seq: 1,
            sync_on_commit: true,
            metrics: None,
        };
        let meta = format!("{META_MAGIC}\n{base_tag}\n");
        store.fs.write(&store.path(META), meta.as_bytes())?;
        store.fs.sync(&store.path(META))?;
        store.fs.write(&store.path(WAL), b"")?;
        store.fs.sync(&store.path(WAL))?;
        store.fs.sync_dir(&store.dir)?;
        // The store directory's own entry must also be durable, or a
        // crash right after create could lose the whole store even
        // though its files were fsynced.
        if let Some(parent) = store.dir.parent() {
            if !parent.as_os_str().is_empty() {
                store.fs.sync_dir(parent)?;
            }
        }
        Ok(store)
    }

    /// Opens an existing store, running recovery: loads the latest
    /// snapshot, scans the WAL, truncates any invalid tail in place (so
    /// later appends never follow garbage), and returns the records the
    /// session must replay.
    pub fn open(
        fs: Box<dyn StorageFs>,
        dir: impl Into<PathBuf>,
    ) -> StorageResult<(Store, Recovered)> {
        let dir = dir.into();
        let mut store = Store {
            fs,
            dir,
            next_seq: 1,
            sync_on_commit: true,
            metrics: None,
        };
        let base_tag = parse_meta(&store.fs.read(&store.path(META))?)?;
        // A leftover temp file is a checkpoint that never renamed; it is
        // dead weight, not data. Make the removal durable so the stale
        // temp file cannot reappear after a crash and be mistaken for
        // in-progress work forever.
        if store.fs.exists(&store.path(SNAPSHOT_TMP)) {
            store.fs.remove(&store.path(SNAPSHOT_TMP))?;
            store.fs.sync_dir(&store.dir)?;
        }
        let snapshot = if store.fs.exists(&store.path(SNAPSHOT)) {
            Some(decode_snapshot(&store.fs.read(&store.path(SNAPSHOT))?)?)
        } else {
            None
        };
        let last_snap_seq = snapshot.as_ref().map_or(0, |s| s.last_seq);
        let wal_bytes = if store.fs.exists(&store.path(WAL)) {
            store.fs.read(&store.path(WAL))?
        } else {
            Vec::new()
        };
        let scan = wal::scan(&wal_bytes);
        if scan.valid_len < wal_bytes.len() as u64 {
            // Torn or corrupt tail from a crash: discard it durably so
            // the next append continues a clean log.
            store.fs.truncate(&store.path(WAL), scan.valid_len)?;
            store.fs.sync(&store.path(WAL))?;
        }
        let mut next_seq = last_snap_seq + 1;
        if let Some(&(seq, _)) = scan.records.last() {
            next_seq = next_seq.max(seq + 1);
        }
        store.next_seq = next_seq;
        let tail = scan
            .records
            .into_iter()
            .filter(|&(seq, _)| seq > last_snap_seq)
            .collect();
        Ok((
            store,
            Recovered {
                base_tag,
                snapshot,
                tail,
            },
        ))
    }

    /// Attaches a telemetry registry: WAL append/fsync and checkpoint
    /// latencies, appended-commit and byte counters are recorded into
    /// it from now on. Metric handles are cached here, so the hot path
    /// never takes the registry lock.
    pub fn attach_registry(&mut self, registry: &telemetry::Registry) {
        self.metrics = Some(StoreMetrics {
            wal_append_latency: registry.latency("storage_wal_append_latency_us", &[]),
            wal_fsync_latency: registry.latency("storage_wal_fsync_latency_us", &[]),
            checkpoint_latency: registry.latency("storage_checkpoint_latency_us", &[]),
            wal_appends: registry.counter("storage_wal_appends_total", &[]),
            wal_bytes: registry.counter("storage_wal_bytes_written_total", &[]),
        });
    }

    /// Sequence number of the most recently appended commit (0 if none).
    pub fn last_committed_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Disables (or re-enables) the fsync after each commit append.
    /// **For benchmarking only** — without the sync, acknowledged
    /// commits can be lost on power failure.
    pub fn set_sync_on_commit(&mut self, on: bool) {
        self.sync_on_commit = on;
    }

    /// Fsyncs the WAL file. Group commit uses this: a batch of appends
    /// made with `sync_on_commit` disabled becomes durable all at once
    /// with this single sync, amortizing the fsync cost over the batch.
    pub fn sync_wal(&mut self) -> StorageResult<()> {
        let started = self.metrics.as_ref().map(|_| std::time::Instant::now());
        self.fs.sync(&self.path(WAL))?;
        if let (Some(m), Some(t0)) = (&self.metrics, started) {
            m.wal_fsync_latency.observe_since(t0);
        }
        Ok(())
    }

    /// Appends one commit-unit payload to the WAL and makes it durable.
    /// Returns the record's sequence number.
    pub fn append_commit(&mut self, payload: &[u8]) -> StorageResult<u64> {
        let started = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let seq = self.next_seq;
        let rec = wal::frame(seq, payload);
        self.fs.append(&self.path(WAL), &rec)?;
        if self.sync_on_commit {
            let sync_started = started.map(|_| std::time::Instant::now());
            self.fs.sync(&self.path(WAL))?;
            if let (Some(m), Some(t0)) = (&self.metrics, sync_started) {
                m.wal_fsync_latency.observe_since(t0);
            }
        }
        self.next_seq += 1;
        // Counted only on success: an errored append is rolled back and
        // never acknowledged, so acked commits == this counter.
        if let Some(m) = &self.metrics {
            m.wal_append_latency
                .observe_since(started.expect("paired with metrics"));
            m.wal_appends.inc();
            m.wal_bytes.add(rec.len() as u64);
        }
        Ok(seq)
    }

    /// Writes a checkpoint covering everything committed so far, then
    /// truncates the WAL. `snap.last_seq` is filled in by the store.
    pub fn checkpoint(&mut self, mut snap: SnapshotFile) -> StorageResult<()> {
        let started = self.metrics.as_ref().map(|_| std::time::Instant::now());
        snap.last_seq = self.last_committed_seq();
        let bytes = encode_snapshot(&snap);
        let tmp = self.path(SNAPSHOT_TMP);
        self.fs.write(&tmp, &bytes)?;
        self.fs.sync(&tmp)?;
        self.fs.rename(&tmp, &self.path(SNAPSHOT))?;
        self.fs.sync_dir(&self.dir)?;
        // The snapshot is durable; the log before it is now redundant.
        self.fs.truncate(&self.path(WAL), 0)?;
        self.fs.sync(&self.path(WAL))?;
        if let (Some(m), Some(t0)) = (&self.metrics, started) {
            m.checkpoint_latency.observe_since(t0);
        }
        Ok(())
    }
}

fn parse_meta(bytes: &[u8]) -> StorageResult<String> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| StorageError::Corrupt("meta: not UTF-8".into()))?;
    let mut lines = text.lines();
    if lines.next() != Some(META_MAGIC) {
        return Err(StorageError::Corrupt("meta: bad magic".into()));
    }
    match lines.next() {
        Some(tag) if !tag.is_empty() => Ok(tag.to_string()),
        _ => Err(StorageError::Corrupt("meta: missing base tag".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::RealFs;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tmp_dir(name: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "xsql-store-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn create_append_reopen_roundtrip_on_real_fs() {
        let dir = tmp_dir("roundtrip");
        let mut store = Store::create(Box::new(RealFs), &dir, "figure1").unwrap();
        assert_eq!(store.append_commit(b"one").unwrap(), 1);
        assert_eq!(store.append_commit(b"two").unwrap(), 2);
        drop(store);
        assert!(Store::exists(&RealFs, &dir));
        assert_eq!(Store::read_base_tag(&RealFs, &dir).unwrap(), "figure1");
        let (store, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert_eq!(rec.base_tag, "figure1");
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.tail, vec![(1, b"one".to_vec()), (2, b"two".to_vec())]);
        assert_eq!(store.last_committed_seq(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives_reopen() {
        let dir = tmp_dir("checkpoint");
        let mut store = Store::create(Box::new(RealFs), &dir, "empty").unwrap();
        store.append_commit(b"one").unwrap();
        store
            .checkpoint(SnapshotFile {
                base_tag: "empty".into(),
                anon_counter: 5,
                ..SnapshotFile::default()
            })
            .unwrap();
        store.append_commit(b"after").unwrap();
        drop(store);
        let (store, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        let snap = rec.snapshot.unwrap();
        assert_eq!(snap.last_seq, 1);
        assert_eq!(snap.anon_counter, 5);
        // Only the post-checkpoint record replays.
        assert_eq!(rec.tail, vec![(2, b"after".to_vec())]);
        assert_eq!(store.last_committed_seq(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let mut store = Store::create(Box::new(RealFs), &dir, "empty").unwrap();
        store.append_commit(b"good").unwrap();
        drop(store);
        // Simulate a torn append directly on the real file.
        let wal_path = dir.join("wal");
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let keep = bytes.len();
        let rec = wal::frame(2, b"torn-away");
        bytes.extend_from_slice(&rec[..rec.len() - 3]);
        std::fs::write(&wal_path, &bytes).unwrap();
        let (mut store, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert_eq!(rec.tail, vec![(1, b"good".to_vec())]);
        assert_eq!(std::fs::read(&wal_path).unwrap().len(), keep);
        // Appending after repair continues a clean log.
        assert_eq!(store.append_commit(b"next").unwrap(), 2);
        drop(store);
        let (_, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert_eq!(rec.tail, vec![(1, b"good".to_vec()), (2, b"next".to_vec())]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_store() {
        let dir = tmp_dir("dup");
        Store::create(Box::new(RealFs), &dir, "empty").unwrap();
        assert!(Store::create(Box::new(RealFs), &dir, "empty").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(all(test, feature = "fault-injection"))]
mod fault_tests {
    use super::*;
    use crate::fault::{CrashMode, FaultFs};
    use std::path::Path;

    const DIR: &str = "store";

    #[test]
    fn lost_fsync_loses_only_unsynced_commits() {
        let fs = FaultFs::new();
        let mut store = Store::create(Box::new(fs.clone()), DIR, "empty").unwrap();
        store.append_commit(b"one").unwrap();
        store.set_sync_on_commit(false);
        store.append_commit(b"two").unwrap();
        fs.crash(CrashMode::LostFsync);
        let (_, rec) = Store::open(Box::new(fs), DIR).unwrap();
        assert_eq!(rec.tail, vec![(1, b"one".to_vec())]);
    }

    #[test]
    fn torn_tail_crash_recovers_the_synced_prefix() {
        let fs = FaultFs::new();
        let mut store = Store::create(Box::new(fs.clone()), DIR, "empty").unwrap();
        store.append_commit(b"one").unwrap();
        store.set_sync_on_commit(false);
        store.append_commit(b"two-unsynced").unwrap();
        fs.crash(CrashMode::TornTail);
        let (_, rec) = Store::open(Box::new(fs.clone()), DIR).unwrap();
        assert_eq!(rec.tail, vec![(1, b"one".to_vec())]);
        // The torn bytes were durably truncated by recovery.
        let on_disk = fs.peek(Path::new("store/wal")).unwrap();
        assert_eq!(wal::scan(&on_disk).valid_len, on_disk.len() as u64);
    }

    #[test]
    fn bit_flip_in_unsynced_region_is_rejected_by_crc() {
        let fs = FaultFs::new();
        let mut store = Store::create(Box::new(fs.clone()), DIR, "empty").unwrap();
        store.append_commit(b"one").unwrap();
        store.set_sync_on_commit(false);
        store.append_commit(b"two-flipped").unwrap();
        fs.crash(CrashMode::BitFlip);
        let (_, rec) = Store::open(Box::new(fs), DIR).unwrap();
        assert_eq!(rec.tail, vec![(1, b"one".to_vec())]);
    }

    #[test]
    fn lost_rename_keeps_the_previous_snapshot() {
        let fs = FaultFs::new();
        let mut store = Store::create(Box::new(fs.clone()), DIR, "empty").unwrap();
        store.append_commit(b"one").unwrap();
        store
            .checkpoint(SnapshotFile {
                base_tag: "empty".into(),
                anon_counter: 1,
                ..SnapshotFile::default()
            })
            .unwrap();
        store.append_commit(b"two").unwrap();
        // Second checkpoint: crash with the rename not yet durable.
        // Ops in checkpoint: write tmp, sync tmp, rename = 3; fail the
        // sync_dir and everything after.
        fs.fail_after_ops(3);
        let err = store.checkpoint(SnapshotFile {
            base_tag: "empty".into(),
            anon_counter: 2,
            ..SnapshotFile::default()
        });
        assert!(err.is_err());
        fs.crash(CrashMode::LostRename);
        let (_, rec) = Store::open(Box::new(fs), DIR).unwrap();
        // Old snapshot (covering seq 1) survived; record 2 replays.
        let snap = rec.snapshot.unwrap();
        assert_eq!(snap.last_seq, 1);
        assert_eq!(snap.anon_counter, 1);
        assert_eq!(rec.tail, vec![(2, b"two".to_vec())]);
    }

    #[test]
    fn crash_between_rename_and_wal_truncate_skips_covered_records() {
        let fs = FaultFs::new();
        let mut store = Store::create(Box::new(fs.clone()), DIR, "empty").unwrap();
        store.append_commit(b"one").unwrap();
        store.append_commit(b"two").unwrap();
        // Checkpoint ops: write tmp, sync tmp, rename, sync_dir = 4;
        // fail the WAL truncate that follows.
        fs.fail_after_ops(4);
        assert!(store
            .checkpoint(SnapshotFile {
                base_tag: "empty".into(),
                ..SnapshotFile::default()
            })
            .is_err());
        fs.crash(CrashMode::LostFsync);
        let (_, rec) = Store::open(Box::new(fs), DIR).unwrap();
        // New snapshot is durable and covers both records, so nothing
        // replays even though the WAL still physically holds them.
        assert_eq!(rec.snapshot.unwrap().last_seq, 2);
        assert!(rec.tail.is_empty());
    }
}
