//! The durable store: one directory, segmented WAL, incremental
//! checkpoints, a health state machine for hostile disks.
//!
//! Protocols:
//!
//! * **Commit.** [`Store::append_commit`] frames the payload with the
//!   next sequence number, appends it to the active WAL segment, and
//!   (unless disabled for group commit) fsyncs before returning. The
//!   caller acknowledges the statement only after this returns `Ok`, so
//!   a crash can lose at most the unacknowledged suffix. When the
//!   active segment would exceed [`StoreConfig::segment_max_bytes`] the
//!   store *rotates*: fsync the old segment, start a new one, rewrite
//!   the manifest.
//! * **Checkpoint.** [`Store::checkpoint`] is incremental: it diffs the
//!   new image against the previous checkpoint image (kept in memory)
//!   and writes a small `delta.NNNNNN.bin` chained by sequence number;
//!   a full `snapshot.bin` is written only for the first checkpoint,
//!   when the diff fails structurally, or to compact a chain longer
//!   than [`StoreConfig::delta_chain_max`]. Either way the temp file is
//!   fsync'd and renamed before the manifest is updated, fully-covered
//!   segments are retired (removed from the manifest, then deleted —
//!   retirement, not quarantine) and the active segment is truncated.
//!   Every crash point leaves a recoverable image: stale deltas are
//!   skipped by the chain check, covered records by their sequence.
//! * **Recovery.** [`Store::open`] loads `snapshot.bin`, applies the
//!   delta chain, scans the segments in manifest order, and salvages
//!   the longest valid record prefix. A torn tail in the *final*
//!   segment is truncated in place (expected crash state); a bad record
//!   *mid-log* (more log follows it) is hostile corruption: the valid
//!   prefix of the offending segment is copied to a fresh segment, the
//!   corrupt segment and everything after it are renamed to
//!   `*.quarantined` (never deleted), and the salvage point — segment,
//!   byte offset of the first bad record, records dropped — is reported
//!   in [`SalvageReport`].
//! * **Hostile disks.** Transient I/O errors (classified by
//!   [`classify_io`]) are retried with bounded exponential backoff.
//!   `ENOSPC` flips the store to [`StoreHealth::DegradedReadOnly`]:
//!   appends fail fast with [`StorageError::DiskFull`] while reads keep
//!   working; [`Store::probe_space`] (rate-limited) tests for freed
//!   space and moves the store through `Recovering` back to `Healthy`
//!   on the next successful durable write — no restart required.

use crate::delta::{apply_delta, decode_delta, diff_snapshot, encode_delta};
use crate::fs::{classify_io, IoClass, StorageFs};
use crate::manifest::{parse_manifest, render_manifest, Manifest};
use crate::snapshot::{decode_snapshot, encode_snapshot, SnapshotFile};
use crate::{wal, StorageError, StorageResult};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const META: &str = "meta";
const LEGACY_WAL: &str = "wal";
const MANIFEST: &str = "manifest";
const MANIFEST_TMP: &str = "manifest.tmp";
const SNAPSHOT: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";
const PROBE: &str = "probe.tmp";
const META_MAGIC: &str = "XSQLSTOREv1";

/// Suffix appended to quarantined segment file names.
pub const QUARANTINE_SUFFIX: &str = ".quarantined";

/// Retry policy for transient I/O errors: up to `attempts` tries with
/// exponential backoff starting at `base_delay` (a zero base delay
/// retries immediately — what the deterministic tests use).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Delay before the first retry; doubles each retry.
    pub base_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(1),
        }
    }
}

/// Tuning knobs for segment rotation, incremental checkpoints, ENOSPC
/// probing and transient-error retries. The defaults keep rotation and
/// auto-checkpointing inert for small workloads (and therefore for the
/// deterministic fault tests, which count I/O operations).
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Rotate the active WAL segment before it would exceed this size.
    pub segment_max_bytes: u64,
    /// [`Store::checkpoint_due`] fires once this many *sealed*
    /// (non-active) segments have accumulated…
    pub checkpoint_segments: usize,
    /// …or once the total WAL bytes exceed this.
    pub checkpoint_max_wal_bytes: u64,
    /// Rate limit between automatic checkpoints.
    pub checkpoint_min_interval: Duration,
    /// Compact the delta chain into a full snapshot after this many
    /// links.
    pub delta_chain_max: usize,
    /// Rate limit between ENOSPC probes while degraded.
    pub probe_min_interval: Duration,
    /// Transient-error retry policy.
    pub retry: RetryPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_max_bytes: 4 << 20,
            checkpoint_segments: 4,
            checkpoint_max_wal_bytes: 16 << 20,
            checkpoint_min_interval: Duration::from_secs(2),
            delta_chain_max: 8,
            probe_min_interval: Duration::from_millis(250),
            retry: RetryPolicy::default(),
        }
    }
}

/// The store's disk-health state machine (exported as the
/// `store_health` gauge: 0 healthy, 1 degraded, 2 recovering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreHealth {
    /// Normal operation.
    Healthy,
    /// The disk filled up; writes are refused with
    /// [`StorageError::DiskFull`], reads keep working.
    DegradedReadOnly,
    /// A probe saw free space; the next successful durable write
    /// returns the store to `Healthy`.
    Recovering,
}

impl StoreHealth {
    /// Stable label for telemetry and reports.
    pub fn name(self) -> &'static str {
        match self {
            StoreHealth::Healthy => "healthy",
            StoreHealth::DegradedReadOnly => "degraded_read_only",
            StoreHealth::Recovering => "recovering",
        }
    }

    /// Gauge encoding (0/1/2).
    pub fn as_gauge(self) -> i64 {
        match self {
            StoreHealth::Healthy => 0,
            StoreHealth::DegradedReadOnly => 1,
            StoreHealth::Recovering => 2,
        }
    }
}

/// What kind of checkpoint [`Store::checkpoint`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointKind {
    /// Whole-image `snapshot.bin` rewrite.
    Full,
    /// Incremental `delta.NNNNNN.bin` chained onto the previous image.
    Delta,
}

/// Outcome of one checkpoint: what was written and how much.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointStats {
    /// Full rewrite or incremental delta.
    pub kind: CheckpointKind,
    /// Payload bytes written (snapshot or delta file, excluding
    /// manifest bookkeeping).
    pub bytes: u64,
    /// WAL segments retired (deleted after being fully covered).
    pub segments_retired: usize,
}

/// Where recovery found the first bad WAL record and what it did about
/// it. `Store::open` always keeps the longest valid record prefix; the
/// report says what was *lost*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// Segment containing the first bad record.
    pub segment: String,
    /// Byte offset of the first bad record within that segment.
    pub offset: u64,
    /// Parseable records discarded past the salvage point (records in
    /// the unparseable tail itself cannot be counted).
    pub records_dropped: u64,
    /// Total bytes discarded past the salvage point.
    pub bytes_dropped: u64,
    /// Files renamed to `*.quarantined` (empty for a plain torn tail,
    /// which is truncated in place).
    pub quarantined: Vec<String>,
}

/// One live WAL segment as tracked in memory.
#[derive(Debug, Clone)]
struct Segment {
    name: String,
    /// First/last record sequence in the segment; 0 when empty.
    first_seq: u64,
    last_seq: u64,
    /// Record bytes in the segment, *excluding* the segment header, so
    /// rotation thresholds measure payload, not framing.
    bytes: u64,
    /// Bytes of generation header at the start of the file (0 for
    /// legacy headerless segments).
    header_len: u64,
}

impl Segment {
    fn fresh(name: String, header_len: u64) -> Segment {
        Segment {
            name,
            first_seq: 0,
            last_seq: 0,
            bytes: 0,
            header_len,
        }
    }
}

/// One live checkpoint delta as tracked in memory.
#[derive(Debug, Clone)]
struct DeltaRef {
    name: String,
}

/// Handle to one store directory. All I/O goes through the injected
/// [`StorageFs`].
pub struct Store {
    fs: Box<dyn StorageFs>,
    dir: PathBuf,
    cfg: StoreConfig,
    next_seq: u64,
    sync_on_commit: bool,
    segments: Vec<Segment>,
    deltas: Vec<DeltaRef>,
    /// Next index for segment/delta file names (shared counter so names
    /// never collide).
    next_file_idx: u64,
    /// The previous checkpoint image, diffed against to produce deltas.
    last_snap: Option<SnapshotFile>,
    /// Primary generation (fencing term) this writer holds. Appends,
    /// syncs and checkpoints re-validate it against the shared manifest
    /// and refuse with [`StorageError::Fenced`] once a newer writer has
    /// bumped it.
    generation: u64,
    /// `Some(observed)` once a newer generation was observed: the store
    /// is permanently fenced (terminal for this instance).
    fenced: Option<u64>,
    health: StoreHealth,
    last_probe: Option<Instant>,
    last_checkpoint: Option<Instant>,
    /// Cached metric handles, present once a registry is attached
    /// ([`Store::attach_registry`]). Instrumentation is pure timing and
    /// atomic counting around the existing I/O calls — it never adds a
    /// filesystem operation, so fault-injection tests that count ops
    /// see the same sequence with or without telemetry.
    metrics: Option<StoreMetrics>,
}

/// Cached handles into the attached telemetry registry.
struct StoreMetrics {
    wal_append_latency: std::sync::Arc<telemetry::Histogram>,
    wal_fsync_latency: std::sync::Arc<telemetry::Histogram>,
    checkpoint_latency_ok: std::sync::Arc<telemetry::Histogram>,
    checkpoint_latency_err: std::sync::Arc<telemetry::Histogram>,
    wal_appends: std::sync::Arc<telemetry::Counter>,
    wal_bytes: std::sync::Arc<telemetry::Counter>,
    io_retries: std::sync::Arc<telemetry::Counter>,
    disk_full: std::sync::Arc<telemetry::Counter>,
    checkpoints_full: std::sync::Arc<telemetry::Counter>,
    checkpoints_delta: std::sync::Arc<telemetry::Counter>,
    checkpoint_bytes_full: std::sync::Arc<telemetry::Counter>,
    checkpoint_bytes_delta: std::sync::Arc<telemetry::Counter>,
    health: std::sync::Arc<telemetry::Gauge>,
    generation: std::sync::Arc<telemetry::Gauge>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("next_seq", &self.next_seq)
            .field("sync_on_commit", &self.sync_on_commit)
            .field("segments", &self.segments.len())
            .field("deltas", &self.deltas.len())
            .field("generation", &self.generation)
            .field("fenced", &self.fenced.is_some())
            .field("health", &self.health)
            .finish()
    }
}

/// What [`Store::open`] found on disk.
#[derive(Debug)]
pub struct Recovered {
    /// Base-fixture tag from the `meta` file.
    pub base_tag: String,
    /// The latest checkpoint image — the full snapshot with its delta
    /// chain already applied — if a checkpoint was ever taken.
    pub snapshot: Option<SnapshotFile>,
    /// Valid WAL records past the snapshot (`seq > snapshot.last_seq`),
    /// as raw payloads in log order; the session decodes them against
    /// its own OID table as it replays.
    pub tail: Vec<(u64, Vec<u8>)>,
    /// Number of checkpoint deltas applied on top of the full snapshot.
    pub deltas_applied: usize,
    /// Present when recovery had to discard WAL bytes (torn tail or
    /// quarantined corruption).
    pub salvage: Option<SalvageReport>,
}

fn seg_name(idx: u64) -> String {
    format!("wal.{idx:06}")
}

fn delta_name(idx: u64) -> String {
    format!("delta.{idx:06}.bin")
}

/// Extracts the numeric index from `wal.NNNNNN` / `delta.NNNNNN.bin`
/// file names (0 for the legacy bare `wal`).
fn file_idx(name: &str) -> u64 {
    name.split('.')
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0)
}

impl Store {
    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// True if `dir` already contains a store (its `meta` file exists).
    pub fn exists(fs: &dyn StorageFs, dir: &Path) -> bool {
        fs.exists(&dir.join(META))
    }

    /// Reads just the base-fixture tag of an existing store, without
    /// opening it (the CLI uses this to pick the right fixture before
    /// constructing a session).
    pub fn read_base_tag(fs: &dyn StorageFs, dir: &Path) -> StorageResult<String> {
        parse_meta(&fs.read(&dir.join(META))?)
    }

    fn blank(fs: Box<dyn StorageFs>, dir: PathBuf, cfg: StoreConfig) -> Store {
        Store {
            fs,
            dir,
            cfg,
            next_seq: 1,
            sync_on_commit: true,
            segments: Vec::new(),
            deltas: Vec::new(),
            next_file_idx: 1,
            last_snap: None,
            generation: 1,
            fenced: None,
            health: StoreHealth::Healthy,
            last_probe: None,
            last_checkpoint: None,
            metrics: None,
        }
    }

    /// Creates a fresh store in `dir` (which must not already hold one).
    pub fn create(
        fs: Box<dyn StorageFs>,
        dir: impl Into<PathBuf>,
        base_tag: &str,
    ) -> StorageResult<Store> {
        Store::create_with(fs, dir, base_tag, StoreConfig::default())
    }

    /// [`Store::create`] with explicit tuning.
    pub fn create_with(
        fs: Box<dyn StorageFs>,
        dir: impl Into<PathBuf>,
        base_tag: &str,
        cfg: StoreConfig,
    ) -> StorageResult<Store> {
        let dir = dir.into();
        if Store::exists(fs.as_ref(), &dir) {
            return Err(StorageError::Corrupt(format!(
                "store already exists in {}",
                dir.display()
            )));
        }
        fs.create_dir_all(&dir)?;
        let mut store = Store::blank(fs, dir, cfg);
        let meta = format!("{META_MAGIC}\n{base_tag}\n");
        store.fs.write(&store.path(META), meta.as_bytes())?;
        store.fs.sync(&store.path(META))?;
        let first = seg_name(store.next_file_idx);
        store.next_file_idx += 1;
        store
            .fs
            .write(&store.path(&first), &wal::segment_header(store.generation))?;
        store.fs.sync(&store.path(&first))?;
        let man = Manifest {
            generation: store.generation,
            segments: vec![first.clone()],
            deltas: Vec::new(),
        };
        store
            .fs
            .write(&store.path(MANIFEST), &render_manifest(&man))?;
        store.fs.sync(&store.path(MANIFEST))?;
        store
            .segments
            .push(Segment::fresh(first, wal::SEG_HEADER as u64));
        store.fs.sync_dir(&store.dir)?;
        // The store directory's own entry must also be durable, or a
        // crash right after create could lose the whole store even
        // though its files were fsynced.
        if let Some(parent) = store.dir.parent() {
            if !parent.as_os_str().is_empty() {
                store.fs.sync_dir(parent)?;
            }
        }
        Ok(store)
    }

    /// Opens an existing store, running recovery; see the module docs
    /// for the salvage and quarantine rules.
    pub fn open(
        fs: Box<dyn StorageFs>,
        dir: impl Into<PathBuf>,
    ) -> StorageResult<(Store, Recovered)> {
        Store::open_with(fs, dir, StoreConfig::default())
    }

    /// [`Store::open`] with explicit tuning.
    pub fn open_with(
        fs: Box<dyn StorageFs>,
        dir: impl Into<PathBuf>,
        cfg: StoreConfig,
    ) -> StorageResult<(Store, Recovered)> {
        let dir = dir.into();
        let mut store = Store::blank(fs, dir, cfg);
        let base_tag = parse_meta(&store.fs.read(&store.path(META))?)?;
        // Leftover temp/probe files are dead weight from a crash mid-
        // protocol. Make the removal durable so they cannot reappear
        // after another crash and be mistaken for in-progress work.
        let mut removed_tmp = false;
        for tmp in [SNAPSHOT_TMP, MANIFEST_TMP, PROBE] {
            if store.fs.exists(&store.path(tmp)) {
                store.fs.remove(&store.path(tmp))?;
                removed_tmp = true;
            }
        }
        if removed_tmp {
            store.fs.sync_dir(&store.dir)?;
        }

        let man = if store.fs.exists(&store.path(MANIFEST)) {
            parse_manifest(&store.fs.read(&store.path(MANIFEST))?)?
        } else if store.fs.exists(&store.path(LEGACY_WAL)) {
            // Pre-manifest store: one bare `wal` file is the only
            // segment. The first rotation or checkpoint writes the real
            // manifest.
            Manifest {
                generation: 1,
                segments: vec![LEGACY_WAL.to_string()],
                deltas: Vec::new(),
            }
        } else {
            Manifest::default()
        };
        // A plain open *adopts* the manifest generation: only an
        // explicit promotion bumps it, so a deposed primary that
        // restarts after the new one took over comes back as a writer
        // of the *current* term, not a stale one.
        store.generation = man.generation;
        store.next_file_idx = man
            .segments
            .iter()
            .chain(man.deltas.iter())
            .map(|n| file_idx(n))
            .max()
            .unwrap_or(0)
            + 1;

        // Base snapshot plus the delta chain. Deltas whose `prev_seq`
        // does not continue the chain are stale leftovers of a crashed
        // full-snapshot compaction and are dropped.
        let mut snapshot = if store.fs.exists(&store.path(SNAPSHOT)) {
            Some(decode_snapshot(&store.fs.read(&store.path(SNAPSHOT))?)?)
        } else {
            None
        };
        let mut covered = snapshot.as_ref().map_or(0, |s| s.last_seq);
        let mut deltas_applied = 0usize;
        let mut live_deltas: Vec<DeltaRef> = Vec::new();
        let mut stale_deltas: Vec<String> = Vec::new();
        for name in &man.deltas {
            if !store.fs.exists(&store.path(name)) {
                return Err(StorageError::Corrupt(format!(
                    "manifest lists missing checkpoint delta {name}"
                )));
            }
            let d = decode_delta(&store.fs.read(&store.path(name))?)?;
            match (&mut snapshot, d.prev_seq == covered) {
                (Some(snap), true) => {
                    apply_delta(snap, &d)?;
                    covered = d.last_seq;
                    deltas_applied += 1;
                    live_deltas.push(DeltaRef { name: name.clone() });
                }
                _ => stale_deltas.push(name.clone()),
            }
        }

        // Scan segments in manifest order, enforcing cross-segment
        // sequence continuity, and find the first bad point.
        let n_segs = man.segments.len();
        let mut scans: Vec<(String, Vec<u8>, wal::WalScan)> = Vec::with_capacity(n_segs);
        for (i, name) in man.segments.iter().enumerate() {
            let bytes = if store.fs.exists(&store.path(name)) {
                store.fs.read(&store.path(name))?
            } else if i + 1 == n_segs {
                // The active segment is created lazily on first append;
                // a listed-but-missing *final* segment is simply empty.
                Vec::new()
            } else {
                return Err(StorageError::CorruptSegment {
                    segment: name.clone(),
                    offset: 0,
                    detail: "manifest lists a missing non-final segment".into(),
                });
            };
            let scan = wal::scan(&bytes);
            scans.push((name.clone(), bytes, scan));
        }

        // Fencing pre-pass, before the continuity check. A deposed
        // primary can race the promotion and append a few records to
        // its old segment *after* the promoted writer rotated to a new,
        // higher-generation segment — zombie records that were never
        // acknowledged (the ack-path fsync re-validates the generation)
        // and that the new timeline re-issued under the same sequence
        // numbers. When a segment overlaps a higher-generation
        // successor, cut it at the first re-issued sequence: salvage
        // the prefix under a fresh name, quarantine the original.
        let mut stale_salvage: Option<SalvageReport> = None;
        for i in 0..scans.len().saturating_sub(1) {
            let (cur_gen, next_gen) = match (scans[i].2.generation, scans[i + 1].2.generation) {
                (Some(c), Some(n)) => (c, n),
                _ => continue,
            };
            if next_gen <= cur_gen {
                continue;
            }
            let next_first = match scans[i + 1].2.records.first() {
                Some(&(seq, _)) => seq,
                None => continue,
            };
            let cut = match scans[i]
                .2
                .records
                .iter()
                .position(|&(seq, _)| seq >= next_first)
            {
                Some(k) => k,
                None => continue,
            };
            let name = scans[i].0.clone();
            let cut_offset = scans[i].2.header_len
                + scans[i].2.records[..cut]
                    .iter()
                    .map(|(_, p)| (wal::HEADER + p.len()) as u64)
                    .sum::<u64>();
            let prefix = scans[i].1[..cut_offset as usize].to_vec();
            let total = scans[i].1.len() as u64;
            let dropped = (scans[i].2.records.len() - cut) as u64;
            let salvaged = seg_name(store.next_file_idx);
            store.next_file_idx += 1;
            store.fs.write(&store.path(&salvaged), &prefix)?;
            store.fs.sync(&store.path(&salvaged))?;
            let q = format!("{name}{QUARANTINE_SUFFIX}");
            store.fs.rename(&store.path(&name), &store.path(&q))?;
            store.fs.sync_dir(&store.dir)?;
            let report = stale_salvage.get_or_insert_with(|| SalvageReport {
                segment: name.clone(),
                offset: cut_offset,
                records_dropped: 0,
                bytes_dropped: 0,
                quarantined: Vec::new(),
            });
            report.records_dropped += dropped;
            report.bytes_dropped += total - cut_offset;
            report.quarantined.push(q);
            let new_scan = wal::scan(&prefix);
            scans[i] = (salvaged, prefix, new_scan);
        }

        // First bad point: (segment index, byte offset). A continuity
        // break invalidates the whole segment (offset 0).
        let mut bad: Option<(usize, u64)> = None;
        let mut prev_last: Option<u64> = None;
        for (i, (_, bytes, scan)) in scans.iter().enumerate() {
            if let Some(&(first, _)) = scan.records.first() {
                if prev_last.is_some_and(|p| first <= p) {
                    bad = Some((i, 0));
                    break;
                }
            }
            if scan.valid_len < bytes.len() as u64 {
                bad = Some((i, scan.valid_len));
                break;
            }
            if let Some(&(last, _)) = scan.records.last() {
                prev_last = Some(last);
            }
        }

        let mut salvage: Option<SalvageReport> = None;
        let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut segments: Vec<Segment> = Vec::new();
        let mut quarantined_from_salvage: Vec<String> = Vec::new();
        let keep_upto = bad.map_or(scans.len(), |(i, _)| i + 1);
        match bad {
            None => {
                for (name, bytes, scan) in scans {
                    segments.push(seg_from_scan(name, bytes.len() as u64, &scan));
                    records.extend(scan.records);
                }
            }
            Some((i, offset)) if i + 1 == n_segs => {
                // Bad point in the final segment: the classic torn tail
                // (or a continuity break at its first record). Truncate
                // in place, durably, exactly as before — but report it.
                // An intact generation header survives the truncation.
                for (name, bytes, scan) in scans.into_iter().take(keep_upto) {
                    let is_bad = segments.len() == i;
                    let keep = if is_bad {
                        offset.max(scan.header_len)
                    } else {
                        bytes.len() as u64
                    };
                    if is_bad && keep < bytes.len() as u64 {
                        store.fs.truncate(&store.path(&name), keep)?;
                        store.fs.sync(&store.path(&name))?;
                        let dropped_records = if offset == 0 {
                            scan.records.len() as u64
                        } else {
                            0
                        };
                        salvage = Some(SalvageReport {
                            segment: name.clone(),
                            offset,
                            records_dropped: dropped_records,
                            bytes_dropped: bytes.len() as u64 - keep,
                            quarantined: Vec::new(),
                        });
                    }
                    if is_bad && offset == 0 {
                        segments.push(Segment::fresh(name, keep));
                    } else {
                        segments.push(seg_from_scan(name, keep, &scan));
                        records.extend(scan.records);
                    }
                }
            }
            Some((i, offset)) => {
                // Hostile mid-log corruption: log continues past the bad
                // record. Salvage the valid prefix of the offending
                // segment into a fresh file, quarantine the corrupt
                // segment and everything after it (rename, never
                // delete), and count what was lost.
                let mut report = SalvageReport {
                    segment: scans[i].0.clone(),
                    offset,
                    records_dropped: 0,
                    bytes_dropped: 0,
                    quarantined: Vec::new(),
                };
                for (j, (name, bytes, scan)) in scans.into_iter().enumerate() {
                    if j < i {
                        segments.push(seg_from_scan(name, bytes.len() as u64, &scan));
                        records.extend(scan.records);
                    } else if j == i {
                        if offset > 0 {
                            let salvaged = seg_name(store.next_file_idx);
                            store.next_file_idx += 1;
                            store
                                .fs
                                .write(&store.path(&salvaged), &bytes[..offset as usize])?;
                            store.fs.sync(&store.path(&salvaged))?;
                            segments.push(seg_from_scan(salvaged, offset, &scan));
                            records.extend(scan.records);
                            report.bytes_dropped += bytes.len() as u64 - offset;
                        } else {
                            report.records_dropped += scan.records.len() as u64;
                            report.bytes_dropped += bytes.len() as u64;
                        }
                        let q = format!("{name}{QUARANTINE_SUFFIX}");
                        store.fs.rename(&store.path(&name), &store.path(&q))?;
                        report.quarantined.push(q);
                    } else {
                        // Unreachable past the break: preserve for
                        // forensics, count the parseable records lost.
                        report.records_dropped += scan.records.len() as u64;
                        report.bytes_dropped += bytes.len() as u64;
                        if store.fs.exists(&store.path(&name)) {
                            let q = format!("{name}{QUARANTINE_SUFFIX}");
                            store.fs.rename(&store.path(&name), &store.path(&q))?;
                            report.quarantined.push(q);
                        }
                    }
                }
                quarantined_from_salvage = report.quarantined.clone();
                salvage = Some(report);
            }
        }

        // Rewrite the manifest if recovery changed the live set (stale
        // deltas dropped, segments salvaged/quarantined).
        let final_names: Vec<String> = segments.iter().map(|s| s.name.clone()).collect();
        if !stale_deltas.is_empty() || final_names != man.segments {
            let new_man = Manifest {
                generation: store.generation,
                segments: final_names,
                deltas: live_deltas.iter().map(|d| d.name.clone()).collect(),
            };
            store.write_manifest_raw(&new_man)?;
            // Stale deltas are orphans now that the manifest dropped
            // them; reclaim the space (never touches quarantined files).
            for name in &stale_deltas {
                let _ = store.fs.remove(&store.path(name));
            }
        }
        let _ = quarantined_from_salvage; // names live on in the report

        // A stale-term cut and a torn tail / corruption can both occur
        // in one recovery; report them as one salvage (earliest cut
        // point wins the headline fields, losses are summed).
        let salvage = match (stale_salvage, salvage) {
            (None, s) | (s, None) => s,
            (Some(mut a), Some(b)) => {
                a.records_dropped += b.records_dropped;
                a.bytes_dropped += b.bytes_dropped;
                a.quarantined.extend(b.quarantined);
                Some(a)
            }
        };

        let mut next_seq = covered + 1;
        if let Some(&(seq, _)) = records.last() {
            next_seq = next_seq.max(seq + 1);
        }
        store.next_seq = next_seq;
        store.segments = segments;
        store.deltas = live_deltas;
        store.last_snap = snapshot.clone();
        let tail = records
            .into_iter()
            .filter(|&(seq, _)| seq > covered)
            .collect();
        Ok((
            store,
            Recovered {
                base_tag,
                snapshot,
                tail,
                deltas_applied,
                salvage,
            },
        ))
    }

    /// Attaches a telemetry registry: WAL append/fsync and checkpoint
    /// latencies, appended-commit/byte/retry counters and the
    /// `store_health` gauge are recorded into it from now on. Metric
    /// handles are cached here, so the hot path never takes the
    /// registry lock.
    pub fn attach_registry(&mut self, registry: &telemetry::Registry) {
        let m = StoreMetrics {
            wal_append_latency: registry.latency("storage_wal_append_latency_us", &[]),
            wal_fsync_latency: registry.latency("storage_wal_fsync_latency_us", &[]),
            checkpoint_latency_ok: registry
                .latency("storage_checkpoint_latency_us", &[("result", "ok")]),
            checkpoint_latency_err: registry
                .latency("storage_checkpoint_latency_us", &[("result", "err")]),
            wal_appends: registry.counter("storage_wal_appends_total", &[]),
            wal_bytes: registry.counter("storage_wal_bytes_written_total", &[]),
            io_retries: registry.counter("storage_io_retries_total", &[]),
            disk_full: registry.counter("storage_disk_full_total", &[]),
            checkpoints_full: registry.counter("storage_checkpoints_total", &[("kind", "full")]),
            checkpoints_delta: registry.counter("storage_checkpoints_total", &[("kind", "delta")]),
            checkpoint_bytes_full: registry
                .counter("storage_checkpoint_bytes_total", &[("kind", "full")]),
            checkpoint_bytes_delta: registry
                .counter("storage_checkpoint_bytes_total", &[("kind", "delta")]),
            health: registry.gauge("store_health", &[]),
            generation: registry.gauge("store_generation", &[]),
        };
        m.health.set(self.health.as_gauge());
        m.generation.set(self.generation as i64);
        self.metrics = Some(m);
    }

    /// Sequence number of the most recently appended commit (0 if none).
    pub fn last_committed_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Current disk-health state.
    pub fn health(&self) -> StoreHealth {
        self.health
    }

    /// The primary generation (fencing term) this writer holds.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True once a newer generation was observed in the shared
    /// manifest: this instance is permanently fenced and will never
    /// extend the log again.
    pub fn is_fenced(&self) -> bool {
        self.fenced.is_some()
    }

    /// Re-validates this writer's generation against the shared
    /// manifest. A newer generation on disk means another writer was
    /// promoted: fence permanently and refuse. Called before every
    /// append, durability sync and checkpoint — the manifest read is
    /// cheap, never mutates, and is what makes a deposed primary's
    /// write *fail before the ack* instead of forking history.
    fn check_generation(&mut self) -> StorageResult<()> {
        if let Some(observed) = self.fenced {
            return Err(StorageError::Fenced {
                observed,
                own: self.generation,
            });
        }
        let path = self.path(MANIFEST);
        if !self.fs.exists(&path) {
            return Ok(());
        }
        let bytes = self.retrying(|fs| fs.read(&path))?;
        let man = parse_manifest(&bytes)?;
        if man.generation > self.generation {
            self.fenced = Some(man.generation);
            return Err(StorageError::Fenced {
                observed: man.generation,
                own: self.generation,
            });
        }
        Ok(())
    }

    /// Bumps the generation and rotates onto a fresh segment stamped
    /// with the new term, making the promotion durable in the manifest.
    /// From that rename on, the deposed writer's next append/sync
    /// observes the higher generation and fences itself. Returns the
    /// new generation.
    pub fn promote(&mut self) -> StorageResult<u64> {
        self.check_generation()?;
        self.generation += 1;
        self.rotate()?;
        if let Some(m) = &self.metrics {
            m.generation.set(self.generation as i64);
        }
        Ok(self.generation)
    }

    /// Replaces the tuning config (used by tests and the session).
    pub fn set_config(&mut self, cfg: StoreConfig) {
        self.cfg = cfg;
    }

    fn set_health(&mut self, h: StoreHealth) {
        if self.health == h {
            return;
        }
        if h == StoreHealth::DegradedReadOnly {
            if let Some(m) = &self.metrics {
                m.disk_full.inc();
            }
        }
        self.health = h;
        if let Some(m) = &self.metrics {
            m.health.set(h.as_gauge());
        }
    }

    /// Runs `op` with bounded-exponential-backoff retries for transient
    /// I/O errors. Hard errors and `ENOSPC` surface immediately (the
    /// latter as [`StorageError::DiskFull`]).
    fn retrying<T>(
        &self,
        mut op: impl FnMut(&dyn StorageFs) -> std::io::Result<T>,
    ) -> StorageResult<T> {
        let mut attempt = 0u32;
        loop {
            match op(self.fs.as_ref()) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if classify_io(&e) != IoClass::Transient
                        || attempt + 1 >= self.cfg.retry.attempts.max(1)
                    {
                        return Err(e.into());
                    }
                    if let Some(m) = &self.metrics {
                        m.io_retries.inc();
                    }
                    let delay = self.cfg.retry.base_delay * 2u32.saturating_pow(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// Notes a possibly-DiskFull error: `ENOSPC` flips the store into
    /// read-only degraded mode.
    fn absorb<T>(&mut self, r: StorageResult<T>) -> StorageResult<T> {
        if matches!(r, Err(StorageError::DiskFull(_))) {
            self.set_health(StoreHealth::DegradedReadOnly);
        }
        r
    }

    /// Disables (or re-enables) the fsync after each commit append.
    /// Group commit uses this: the service's writer folds a batch into
    /// the log and makes it durable with one [`Store::sync_wal`].
    pub fn set_sync_on_commit(&mut self, on: bool) {
        self.sync_on_commit = on;
    }

    /// Fsyncs the active WAL segment. Group commit uses this: a batch
    /// of appends made with `sync_on_commit` disabled becomes durable
    /// all at once with this single sync, amortizing the fsync cost
    /// over the batch. (Rotation fsyncs a segment before sealing it, so
    /// the active segment is always the only unsynced one.)
    pub fn sync_wal(&mut self) -> StorageResult<()> {
        self.check_generation()?;
        let Some(active) = self.segments.last() else {
            return Ok(());
        };
        let path = self.path(&active.name);
        let started = self.metrics.as_ref().map(|_| Instant::now());
        let r = self.retrying(|fs| fs.sync(&path));
        self.absorb(r)?;
        if let (Some(m), Some(t0)) = (&self.metrics, started) {
            m.wal_fsync_latency.observe_since(t0);
        }
        Ok(())
    }

    /// Makes sure there is an active segment with room for `need` more
    /// bytes, rotating (or bootstrapping) if not.
    fn ensure_active_segment(&mut self, need: u64) -> StorageResult<()> {
        let rotate = match self.segments.last() {
            None => true,
            Some(a) => a.bytes > 0 && a.bytes + need > self.cfg.segment_max_bytes,
        };
        if rotate {
            self.rotate()?;
        }
        Ok(())
    }

    /// Seals the active segment (fsync) and starts a fresh one, making
    /// it live by rewriting the manifest.
    fn rotate(&mut self) -> StorageResult<()> {
        if let Some(active) = self.segments.last() {
            let path = self.path(&active.name);
            let r = self.retrying(|fs| fs.sync(&path));
            self.absorb(r)?;
        }
        let name = seg_name(self.next_file_idx);
        let path = self.path(&name);
        let header = wal::segment_header(self.generation);
        let r = self.retrying(|fs| fs.write(&path, &header));
        self.absorb(r)?;
        let mut man = self.manifest_image();
        man.segments.push(name.clone());
        self.write_manifest(&man)?;
        self.next_file_idx += 1;
        self.segments
            .push(Segment::fresh(name, wal::SEG_HEADER as u64));
        Ok(())
    }

    /// The manifest reflecting the current in-memory live set.
    fn manifest_image(&self) -> Manifest {
        Manifest {
            generation: self.generation,
            segments: self.segments.iter().map(|s| s.name.clone()).collect(),
            deltas: self.deltas.iter().map(|d| d.name.clone()).collect(),
        }
    }

    /// Atomically replaces the manifest (write tmp, fsync, rename,
    /// fsync dir), with retries and ENOSPC accounting.
    fn write_manifest(&mut self, man: &Manifest) -> StorageResult<()> {
        let r = self.write_manifest_inner(man);
        self.absorb(r)
    }

    /// Manifest replacement without health accounting (recovery runs
    /// before the state machine is live).
    fn write_manifest_raw(&mut self, man: &Manifest) -> StorageResult<()> {
        self.write_manifest_inner(man)
    }

    fn write_manifest_inner(&self, man: &Manifest) -> StorageResult<()> {
        let bytes = render_manifest(man);
        let tmp = self.path(MANIFEST_TMP);
        let fin = self.path(MANIFEST);
        self.retrying(|fs| fs.write(&tmp, &bytes))?;
        self.retrying(|fs| fs.sync(&tmp))?;
        self.retrying(|fs| fs.rename(&tmp, &fin))?;
        self.retrying(|fs| fs.sync_dir(&self.dir))?;
        Ok(())
    }

    /// Appends one commit-unit payload to the WAL and makes it durable.
    /// Returns the record's sequence number. While degraded, fails fast
    /// with [`StorageError::DiskFull`] (after a rate-limited probe for
    /// freed space).
    pub fn append_commit(&mut self, payload: &[u8]) -> StorageResult<u64> {
        self.check_generation()?;
        if self.health == StoreHealth::DegradedReadOnly && !self.probe_space() {
            return Err(StorageError::DiskFull(
                "store is read-only (degraded) until disk space frees".into(),
            ));
        }
        let started = self.metrics.as_ref().map(|_| Instant::now());
        let seq = self.next_seq;
        let rec = wal::frame(seq, payload);
        self.ensure_active_segment(rec.len() as u64)?;
        let path = self.path(&self.segments.last().expect("active segment").name);
        let r = self.retrying(|fs| fs.append(&path, &rec));
        self.absorb(r)?;
        if self.sync_on_commit {
            let sync_started = started.map(|_| Instant::now());
            let r = self.retrying(|fs| fs.sync(&path));
            self.absorb(r)?;
            if let (Some(m), Some(t0)) = (&self.metrics, sync_started) {
                m.wal_fsync_latency.observe_since(t0);
            }
        }
        let active = self.segments.last_mut().expect("active segment");
        if active.first_seq == 0 {
            active.first_seq = seq;
        }
        active.last_seq = seq;
        active.bytes += rec.len() as u64;
        self.next_seq += 1;
        if self.health == StoreHealth::Recovering {
            self.set_health(StoreHealth::Healthy);
        }
        // Counted only on success: an errored append is rolled back and
        // never acknowledged, so acked commits == this counter.
        if let Some(m) = &self.metrics {
            m.wal_append_latency
                .observe_since(started.expect("paired with metrics"));
            m.wal_appends.inc();
            m.wal_bytes.add(rec.len() as u64);
        }
        Ok(seq)
    }

    /// While degraded, writes-syncs-removes a small probe file to test
    /// whether disk space has freed (rate-limited by
    /// [`StoreConfig::probe_min_interval`]). On success the store moves
    /// to [`StoreHealth::Recovering`]; the next successful durable
    /// write completes the round trip back to `Healthy`. Returns true
    /// when the store accepts writes again.
    pub fn probe_space(&mut self) -> bool {
        if self.fenced.is_some() {
            return false;
        }
        match self.health {
            StoreHealth::Healthy | StoreHealth::Recovering => return true,
            StoreHealth::DegradedReadOnly => {}
        }
        if let Some(t) = self.last_probe {
            if t.elapsed() < self.cfg.probe_min_interval {
                return false;
            }
        }
        self.last_probe = Some(Instant::now());
        let p = self.path(PROBE);
        let ok = self
            .fs
            .write(&p, &[0u8; 64])
            .and_then(|()| self.fs.sync(&p))
            .and_then(|()| self.fs.remove(&p))
            .is_ok();
        if ok {
            self.set_health(StoreHealth::Recovering);
        }
        ok
    }

    /// True when enough WAL has accumulated (segment count or bytes)
    /// that the session should fold it into a checkpoint, respecting
    /// the rate limit. Never true while degraded.
    pub fn checkpoint_due(&self) -> bool {
        if self.health != StoreHealth::Healthy {
            return false;
        }
        if let Some(t) = self.last_checkpoint {
            if t.elapsed() < self.cfg.checkpoint_min_interval {
                return false;
            }
        }
        let sealed = self.segments.len().saturating_sub(1);
        let bytes: u64 = self.segments.iter().map(|s| s.bytes).sum();
        sealed >= self.cfg.checkpoint_segments || bytes >= self.cfg.checkpoint_max_wal_bytes
    }

    /// Writes a checkpoint covering everything committed so far —
    /// incrementally when possible (see the module docs) — then retires
    /// the covered segments. `snap.last_seq` is filled in by the store.
    pub fn checkpoint(&mut self, mut snap: SnapshotFile) -> StorageResult<CheckpointStats> {
        let started = self.metrics.as_ref().map(|_| Instant::now());
        snap.last_seq = self.last_committed_seq();
        let r = self.checkpoint_inner(snap);
        match (&r, &self.metrics, started) {
            (Ok(stats), Some(m), Some(t0)) => {
                m.checkpoint_latency_ok.observe_since(t0);
                match stats.kind {
                    CheckpointKind::Full => {
                        m.checkpoints_full.inc();
                        m.checkpoint_bytes_full.add(stats.bytes);
                    }
                    CheckpointKind::Delta => {
                        m.checkpoints_delta.inc();
                        m.checkpoint_bytes_delta.add(stats.bytes);
                    }
                }
            }
            // A failed checkpoint must be visible in STATS too: a
            // degraded disk would otherwise look like "no checkpoints",
            // not "checkpoints failing".
            (Err(_), Some(m), Some(t0)) => m.checkpoint_latency_err.observe_since(t0),
            _ => {}
        }
        r
    }

    fn checkpoint_inner(&mut self, snap: SnapshotFile) -> StorageResult<CheckpointStats> {
        self.check_generation()?;
        let delta = if self.deltas.len() >= self.cfg.delta_chain_max {
            None // compact the chain into a fresh full snapshot
        } else {
            self.last_snap
                .as_ref()
                .and_then(|old| diff_snapshot(old, &snap))
        };

        let (kind, bytes, new_file) = match &delta {
            Some(d) => (
                CheckpointKind::Delta,
                encode_delta(d),
                delta_name(self.next_file_idx),
            ),
            None => (
                CheckpointKind::Full,
                encode_snapshot(&snap),
                SNAPSHOT.to_string(),
            ),
        };

        // 1. The new image fragment becomes durable under its final
        //    name before anything references it.
        let tmp = self.path(SNAPSHOT_TMP);
        let fin = self.path(&new_file);
        let r = self.retrying(|fs| fs.write(&tmp, &bytes));
        self.absorb(r)?;
        let r = self.retrying(|fs| fs.sync(&tmp));
        self.absorb(r)?;
        let r = self.retrying(|fs| fs.rename(&tmp, &fin));
        self.absorb(r)?;
        let r = self.retrying(|fs| fs.sync_dir(&self.dir));
        self.absorb(r)?;

        // 2. Manifest update: retire fully-covered sealed segments,
        //    keep the active one, record the delta chain.
        let covered_seq = snap.last_seq;
        let active = self.segments.last().cloned();
        let retired: Vec<String> = self
            .segments
            .iter()
            .rev()
            .skip(1) // never retire the active segment in place
            .filter(|s| s.bytes == 0 || s.last_seq <= covered_seq)
            .map(|s| s.name.clone())
            .collect();
        let new_deltas: Vec<DeltaRef> = match kind {
            CheckpointKind::Full => Vec::new(),
            CheckpointKind::Delta => {
                let mut v = self.deltas.clone();
                v.push(DeltaRef {
                    name: new_file.clone(),
                });
                v
            }
        };
        let old_delta_files: Vec<String> = match kind {
            CheckpointKind::Full => self.deltas.iter().map(|d| d.name.clone()).collect(),
            CheckpointKind::Delta => Vec::new(),
        };
        let man = Manifest {
            generation: self.generation,
            segments: self
                .segments
                .iter()
                .filter(|s| !retired.contains(&s.name))
                .map(|s| s.name.clone())
                .collect(),
            deltas: new_deltas.iter().map(|d| d.name.clone()).collect(),
        };
        self.write_manifest(&man)?;

        // 3. The active segment's records are covered too: truncate it
        //    back to its generation header.
        if let Some(a) = &active {
            let path = self.path(&a.name);
            let keep = a.header_len;
            let r = self.retrying(|fs| fs.truncate(&path, keep));
            self.absorb(r)?;
            let r = self.retrying(|fs| fs.sync(&path));
            self.absorb(r)?;
        }

        // Commit the new in-memory state only now that every durable
        // step succeeded; a failed checkpoint leaves memory describing
        // the old (still recoverable) disk layout.
        if kind == CheckpointKind::Delta {
            self.next_file_idx += 1;
        }
        self.deltas = new_deltas;
        self.segments.retain(|s| !retired.contains(&s.name));
        if let Some(a) = self.segments.last_mut() {
            a.first_seq = 0;
            a.last_seq = 0;
            a.bytes = 0;
        }
        self.last_snap = Some(snap);
        self.last_checkpoint = Some(Instant::now());
        if self.health == StoreHealth::Recovering {
            self.set_health(StoreHealth::Healthy);
        }

        // 4. Retired segments and compacted deltas are unreferenced;
        //    deleting them is pure space reclamation (failures are
        //    harmless orphans). Retirement is deletion of *covered*
        //    data — quarantined files are never touched.
        for name in retired.iter().chain(old_delta_files.iter()) {
            let _ = self.fs.remove(&self.path(name));
        }

        Ok(CheckpointStats {
            kind,
            bytes: bytes.len() as u64,
            segments_retired: retired.len(),
        })
    }
}

/// Builds the in-memory segment record from a scan; `file_len` is the
/// (kept) on-disk length *including* any segment header, which is
/// subtracted so `Segment::bytes` counts record bytes only.
fn seg_from_scan(name: String, file_len: u64, scan: &wal::WalScan) -> Segment {
    Segment {
        name,
        first_seq: scan.records.first().map_or(0, |r| r.0),
        last_seq: scan.records.last().map_or(0, |r| r.0),
        bytes: file_len.saturating_sub(scan.header_len),
        header_len: scan.header_len,
    }
}

fn parse_meta(bytes: &[u8]) -> StorageResult<String> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| StorageError::Corrupt("meta: not UTF-8".into()))?;
    let mut lines = text.lines();
    if lines.next() != Some(META_MAGIC) {
        return Err(StorageError::Corrupt("meta: bad magic".into()));
    }
    match lines.next() {
        Some(tag) if !tag.is_empty() => Ok(tag.to_string()),
        _ => Err(StorageError::Corrupt("meta: missing base tag".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::RealFs;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tmp_dir(name: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "xsql-store-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// One record per segment: with a 1-byte cap, any non-empty active
    /// segment rotates before the next append.
    fn tiny_segments() -> StoreConfig {
        StoreConfig {
            segment_max_bytes: 1,
            ..StoreConfig::default()
        }
    }

    #[test]
    fn create_append_reopen_roundtrip_on_real_fs() {
        let dir = tmp_dir("roundtrip");
        let mut store = Store::create(Box::new(RealFs), &dir, "figure1").unwrap();
        assert_eq!(store.append_commit(b"one").unwrap(), 1);
        assert_eq!(store.append_commit(b"two").unwrap(), 2);
        drop(store);
        assert!(Store::exists(&RealFs, &dir));
        assert_eq!(Store::read_base_tag(&RealFs, &dir).unwrap(), "figure1");
        let (store, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert_eq!(rec.base_tag, "figure1");
        assert!(rec.snapshot.is_none());
        assert!(rec.salvage.is_none());
        assert_eq!(rec.tail, vec![(1, b"one".to_vec()), (2, b"two".to_vec())]);
        assert_eq!(store.last_committed_seq(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives_reopen() {
        let dir = tmp_dir("checkpoint");
        let mut store = Store::create(Box::new(RealFs), &dir, "empty").unwrap();
        store.append_commit(b"one").unwrap();
        let stats = store
            .checkpoint(SnapshotFile {
                base_tag: "empty".into(),
                anon_counter: 5,
                ..SnapshotFile::default()
            })
            .unwrap();
        assert_eq!(stats.kind, CheckpointKind::Full);
        store.append_commit(b"after").unwrap();
        drop(store);
        let (store, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        let snap = rec.snapshot.unwrap();
        assert_eq!(snap.last_seq, 1);
        assert_eq!(snap.anon_counter, 5);
        // Only the post-checkpoint record replays.
        assert_eq!(rec.tail, vec![(2, b"after".to_vec())]);
        assert_eq!(store.last_committed_seq(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A snapshot with enough unchanging bulk (a fat catalog) that the
    /// incremental-cost property is visible: re-encoding all of it
    /// dwarfs encoding the between-checkpoints change.
    fn bulky_snapshot(anon_counter: u64) -> SnapshotFile {
        SnapshotFile {
            base_tag: "empty".into(),
            anon_counter,
            catalog: (0..200)
                .map(|i| format!("create view v{i} as select {i};"))
                .collect(),
            ..SnapshotFile::default()
        }
    }

    #[test]
    fn second_checkpoint_is_an_incremental_delta() {
        let dir = tmp_dir("delta-ckpt");
        let mut store = Store::create(Box::new(RealFs), &dir, "empty").unwrap();
        store.append_commit(b"one").unwrap();
        let full = store.checkpoint(bulky_snapshot(1)).unwrap();
        assert_eq!(full.kind, CheckpointKind::Full);
        store.append_commit(b"two").unwrap();
        let delta = store.checkpoint(bulky_snapshot(2)).unwrap();
        assert_eq!(delta.kind, CheckpointKind::Delta);
        // Checkpoint cost is proportional to the change, not the image:
        // only `anon_counter` moved, so the delta is a small fraction of
        // the full snapshot.
        assert!(
            delta.bytes * 10 < full.bytes,
            "delta ({}) should be far smaller than the full snapshot ({})",
            delta.bytes,
            full.bytes
        );
        store.append_commit(b"three").unwrap();
        drop(store);
        let (_, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert_eq!(rec.deltas_applied, 1);
        let snap = rec.snapshot.unwrap();
        assert_eq!(snap.last_seq, 2);
        assert_eq!(snap.anon_counter, 2);
        assert_eq!(rec.tail, vec![(3, b"three".to_vec())]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn long_delta_chain_compacts_into_a_full_snapshot() {
        let dir = tmp_dir("compact");
        let cfg = StoreConfig {
            delta_chain_max: 2,
            ..StoreConfig::default()
        };
        let mut store = Store::create_with(Box::new(RealFs), &dir, "empty", cfg).unwrap();
        let mut kinds = Vec::new();
        for i in 0..4u64 {
            store.append_commit(b"x").unwrap();
            let stats = store
                .checkpoint(SnapshotFile {
                    base_tag: "empty".into(),
                    anon_counter: i,
                    ..SnapshotFile::default()
                })
                .unwrap();
            kinds.push(stats.kind);
        }
        assert_eq!(
            kinds,
            vec![
                CheckpointKind::Full,
                CheckpointKind::Delta,
                CheckpointKind::Delta,
                CheckpointKind::Full, // chain hit delta_chain_max
            ]
        );
        let (_, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert_eq!(rec.deltas_applied, 0);
        assert_eq!(rec.snapshot.unwrap().last_seq, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_spreads_records_over_segments_and_reopens() {
        let dir = tmp_dir("rotate");
        let mut store =
            Store::create_with(Box::new(RealFs), &dir, "empty", tiny_segments()).unwrap();
        for i in 1..=5u64 {
            assert_eq!(store.append_commit(format!("r{i}").as_bytes()).unwrap(), i);
        }
        assert_eq!(store.segments.len(), 5);
        drop(store);
        // Reopen must stitch the segments back together in order.
        let (store, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert_eq!(
            rec.tail.iter().map(|r| r.0).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        assert!(rec.salvage.is_none());
        assert_eq!(store.last_committed_seq(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_retires_covered_segments() {
        let dir = tmp_dir("retire");
        let mut store =
            Store::create_with(Box::new(RealFs), &dir, "empty", tiny_segments()).unwrap();
        for _ in 0..4 {
            store.append_commit(b"x").unwrap();
        }
        assert!(store.checkpoint_due() || store.segments.len() == 4);
        let stats = store
            .checkpoint(SnapshotFile {
                base_tag: "empty".into(),
                ..SnapshotFile::default()
            })
            .unwrap();
        assert_eq!(stats.segments_retired, 3);
        assert_eq!(store.segments.len(), 1);
        // Retired segment files are gone; the active one remains, empty.
        assert!(!dir.join("wal.000001").exists());
        assert!(dir.join("wal.000004").exists());
        store.append_commit(b"next").unwrap();
        drop(store);
        let (_, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert_eq!(rec.snapshot.unwrap().last_seq, 4);
        assert_eq!(rec.tail, vec![(5, b"next".to_vec())]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let mut store = Store::create(Box::new(RealFs), &dir, "empty").unwrap();
        store.append_commit(b"good").unwrap();
        drop(store);
        // Simulate a torn append directly on the real file.
        let wal_path = dir.join("wal.000001");
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let keep = bytes.len();
        let rec = wal::frame(2, b"torn-away");
        bytes.extend_from_slice(&rec[..rec.len() - 3]);
        std::fs::write(&wal_path, &bytes).unwrap();
        let (mut store, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert_eq!(rec.tail, vec![(1, b"good".to_vec())]);
        assert_eq!(std::fs::read(&wal_path).unwrap().len(), keep);
        // A torn tail is salvaged in place, nothing quarantined.
        let salvage = rec.salvage.unwrap();
        assert_eq!(salvage.segment, "wal.000001");
        assert_eq!(salvage.offset, keep as u64);
        assert_eq!(salvage.records_dropped, 0);
        assert!(salvage.quarantined.is_empty());
        // Appending after repair continues a clean log.
        assert_eq!(store.append_commit(b"next").unwrap(), 2);
        drop(store);
        let (_, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert_eq!(rec.tail, vec![(1, b"good".to_vec()), (2, b"next".to_vec())]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_quarantines_and_salvages_the_prefix() {
        let dir = tmp_dir("quarantine");
        let mut store =
            Store::create_with(Box::new(RealFs), &dir, "empty", tiny_segments()).unwrap();
        for i in 1..=4u64 {
            store.append_commit(format!("r{i}").as_bytes()).unwrap();
        }
        drop(store);
        // Flip a payload bit in segment 2 — corruption *mid-log*, with
        // two healthy segments after it.
        let seg2 = dir.join("wal.000002");
        let mut bytes = std::fs::read(&seg2).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        std::fs::write(&seg2, &bytes).unwrap();
        let (mut store, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        // Only the prefix before the bad record survives.
        assert_eq!(rec.tail, vec![(1, b"r1".to_vec())]);
        let salvage = rec.salvage.unwrap();
        assert_eq!(salvage.segment, "wal.000002");
        // Nothing salvageable past the generation header.
        assert_eq!(salvage.offset, wal::SEG_HEADER as u64);
        // r2 is unparseable (bad CRC ⇒ not a record); r3 and r4 parsed
        // fine but are unreachable past the corruption.
        assert_eq!(salvage.records_dropped, 2);
        assert_eq!(
            salvage.quarantined,
            vec![
                "wal.000002.quarantined".to_string(),
                "wal.000003.quarantined".to_string(),
                "wal.000004.quarantined".to_string(),
            ]
        );
        // Quarantined, never deleted: the corrupt bytes are still there.
        assert_eq!(
            std::fs::read(dir.join("wal.000002.quarantined")).unwrap(),
            bytes
        );
        // The store keeps working from the salvage point.
        assert_eq!(store.append_commit(b"r2-again").unwrap(), 2);
        drop(store);
        let (_, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert!(rec.salvage.is_none());
        assert_eq!(
            rec.tail,
            vec![(1, b"r1".to_vec()), (2, b"r2-again".to_vec())]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_inside_a_sealed_segment_salvages_its_valid_prefix() {
        let dir = tmp_dir("salvage-prefix");
        let cfg = StoreConfig {
            // Two records per segment (16-byte record header + 2-byte
            // payload each; the segment header doesn't count).
            segment_max_bytes: 36,
            ..StoreConfig::default()
        };
        let mut store = Store::create_with(Box::new(RealFs), &dir, "empty", cfg).unwrap();
        for i in 1..=4u64 {
            store.append_commit(format!("r{i}").as_bytes()).unwrap();
        }
        assert_eq!(store.segments.len(), 2);
        drop(store);
        // Corrupt the SECOND record of segment 1: its first record must
        // be salvaged into a fresh segment file. Records start after
        // the segment header; each is 18 bytes.
        let seg1 = dir.join("wal.000001");
        let mut bytes = std::fs::read(&seg1).unwrap();
        let cut = wal::SEG_HEADER + 18;
        bytes[cut + wal::HEADER] ^= 0x01;
        std::fs::write(&seg1, &bytes).unwrap();
        let (_, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert_eq!(rec.tail, vec![(1, b"r1".to_vec())]);
        let salvage = rec.salvage.unwrap();
        assert_eq!(salvage.segment, "wal.000001");
        assert_eq!(salvage.offset, cut as u64);
        // r3 and r4 parsed but lie beyond the break; r2 itself is
        // unparseable and so cannot be counted.
        assert_eq!(salvage.records_dropped, 2);
        assert!(dir.join("wal.000001.quarantined").exists());
        assert!(dir.join("wal.000002.quarantined").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn promote_bumps_the_generation_and_reopen_adopts_it() {
        let dir = tmp_dir("promote");
        let mut store = Store::create(Box::new(RealFs), &dir, "empty").unwrap();
        assert_eq!(store.generation(), 1);
        store.append_commit(b"one").unwrap();
        assert_eq!(store.promote().unwrap(), 2);
        // The new active segment is stamped with the new term.
        let active = std::fs::read(dir.join("wal.000002")).unwrap();
        assert_eq!(wal::scan(&active).generation, Some(2));
        // The promoted writer keeps writing.
        assert_eq!(store.append_commit(b"two").unwrap(), 2);
        drop(store);
        // A plain reopen adopts the promoted generation — it does not
        // bump it, so restarts alone never fence anyone.
        let (store, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert_eq!(store.generation(), 2);
        assert!(!store.is_fenced());
        assert_eq!(rec.tail, vec![(1, b"one".to_vec()), (2, b"two".to_vec())]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deposed_writer_is_fenced_and_stays_fenced() {
        let dir = tmp_dir("fenced");
        let mut old = Store::create(Box::new(RealFs), &dir, "empty").unwrap();
        old.append_commit(b"one").unwrap();
        // Another handle on the same directory takes over.
        let (mut new, _) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert_eq!(new.promote().unwrap(), 2);
        // The deposed writer's next append observes the higher term,
        // fails *before* touching the log, and fences permanently.
        let before = std::fs::read(dir.join("wal.000001")).unwrap();
        assert!(matches!(
            old.append_commit(b"zombie"),
            Err(StorageError::Fenced {
                observed: 2,
                own: 1
            })
        ));
        assert!(old.is_fenced());
        assert_eq!(std::fs::read(dir.join("wal.000001")).unwrap(), before);
        // Fenced is terminal: syncs, checkpoints and probes all refuse
        // without re-reading the manifest.
        assert!(matches!(old.sync_wal(), Err(StorageError::Fenced { .. })));
        assert!(matches!(
            old.checkpoint(SnapshotFile {
                base_tag: "empty".into(),
                ..SnapshotFile::default()
            }),
            Err(StorageError::Fenced { .. })
        ));
        assert!(!old.probe_space());
        // The new writer is unaffected.
        assert_eq!(new.append_commit(b"two").unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zombie_stale_term_tail_is_quarantined_on_reopen() {
        let dir = tmp_dir("zombie");
        let mut old = Store::create(Box::new(RealFs), &dir, "empty").unwrap();
        old.append_commit(b"one").unwrap();
        let (mut new, _) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert_eq!(new.promote().unwrap(), 2);
        // A zombie append that lost the race with the promotion: bytes
        // land in the old generation's segment after the new writer
        // rotated away from it. The record was never acknowledged (the
        // ack-path generation check fails), but it is on disk.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.000001"))
            .unwrap();
        f.write_all(&wal::frame(2, b"zombie")).unwrap();
        drop(f);
        // The new timeline re-issues sequence 2 with different content.
        assert_eq!(new.append_commit(b"two").unwrap(), 2);
        drop(new);
        drop(old);
        // Recovery cuts the stale-term tail at the first re-issued
        // sequence and quarantines the original segment: the zombie
        // record never replays, the new timeline's record does.
        let (_, rec) = Store::open(Box::new(RealFs), &dir).unwrap();
        assert_eq!(rec.tail, vec![(1, b"one".to_vec()), (2, b"two".to_vec())]);
        let salvage = rec.salvage.unwrap();
        assert_eq!(salvage.segment, "wal.000001");
        assert_eq!(salvage.offset, (wal::SEG_HEADER + wal::HEADER + 3) as u64);
        assert_eq!(salvage.records_dropped, 1);
        assert_eq!(
            salvage.quarantined,
            vec!["wal.000001.quarantined".to_string()]
        );
        assert!(dir.join("wal.000001.quarantined").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_store() {
        let dir = tmp_dir("dup");
        Store::create(Box::new(RealFs), &dir, "empty").unwrap();
        assert!(Store::create(Box::new(RealFs), &dir, "empty").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(all(test, feature = "fault-injection"))]
mod fault_tests {
    use super::*;
    use crate::fault::{CrashMode, FaultFs};
    use std::path::Path;

    const DIR: &str = "store";

    /// Instant retries so transient-fault tests don't sleep.
    fn instant_retries() -> StoreConfig {
        StoreConfig {
            retry: RetryPolicy {
                attempts: 4,
                base_delay: Duration::ZERO,
            },
            probe_min_interval: Duration::ZERO,
            ..StoreConfig::default()
        }
    }

    #[test]
    fn lost_fsync_loses_only_unsynced_commits() {
        let fs = FaultFs::new();
        let mut store = Store::create(Box::new(fs.clone()), DIR, "empty").unwrap();
        store.append_commit(b"one").unwrap();
        store.set_sync_on_commit(false);
        store.append_commit(b"two").unwrap();
        fs.crash(CrashMode::LostFsync);
        let (_, rec) = Store::open(Box::new(fs), DIR).unwrap();
        assert_eq!(rec.tail, vec![(1, b"one".to_vec())]);
    }

    #[test]
    fn torn_tail_crash_recovers_the_synced_prefix() {
        let fs = FaultFs::new();
        let mut store = Store::create(Box::new(fs.clone()), DIR, "empty").unwrap();
        store.append_commit(b"one").unwrap();
        store.set_sync_on_commit(false);
        store.append_commit(b"two-unsynced").unwrap();
        fs.crash(CrashMode::TornTail);
        let (_, rec) = Store::open(Box::new(fs.clone()), DIR).unwrap();
        assert_eq!(rec.tail, vec![(1, b"one".to_vec())]);
        // The torn bytes were durably truncated by recovery.
        let on_disk = fs.peek(Path::new("store/wal.000001")).unwrap();
        assert_eq!(wal::scan(&on_disk).valid_len, on_disk.len() as u64);
    }

    #[test]
    fn bit_flip_in_unsynced_region_is_rejected_by_crc() {
        let fs = FaultFs::new();
        let mut store = Store::create(Box::new(fs.clone()), DIR, "empty").unwrap();
        store.append_commit(b"one").unwrap();
        store.set_sync_on_commit(false);
        store.append_commit(b"two-flipped").unwrap();
        fs.crash(CrashMode::BitFlip);
        let (_, rec) = Store::open(Box::new(fs), DIR).unwrap();
        assert_eq!(rec.tail, vec![(1, b"one".to_vec())]);
    }

    #[test]
    fn lost_rename_keeps_the_previous_snapshot() {
        let fs = FaultFs::new();
        let mut store = Store::create(Box::new(fs.clone()), DIR, "empty").unwrap();
        store.append_commit(b"one").unwrap();
        store
            .checkpoint(SnapshotFile {
                base_tag: "empty".into(),
                anon_counter: 1,
                ..SnapshotFile::default()
            })
            .unwrap();
        store.append_commit(b"two").unwrap();
        // Second checkpoint (an incremental delta): crash with the
        // rename not yet durable. Ops: write tmp, sync tmp, rename = 3;
        // fail the sync_dir and everything after.
        fs.fail_after_ops(3);
        let err = store.checkpoint(SnapshotFile {
            base_tag: "empty".into(),
            anon_counter: 2,
            ..SnapshotFile::default()
        });
        assert!(err.is_err());
        fs.crash(CrashMode::LostRename);
        let (_, rec) = Store::open(Box::new(fs), DIR).unwrap();
        // Old snapshot (covering seq 1) survived; record 2 replays. The
        // half-written delta is an orphan the manifest never mentioned.
        let snap = rec.snapshot.unwrap();
        assert_eq!(snap.last_seq, 1);
        assert_eq!(snap.anon_counter, 1);
        assert_eq!(rec.deltas_applied, 0);
        assert_eq!(rec.tail, vec![(2, b"two".to_vec())]);
    }

    #[test]
    fn crash_between_rename_and_manifest_update_skips_covered_records() {
        let fs = FaultFs::new();
        let mut store = Store::create(Box::new(fs.clone()), DIR, "empty").unwrap();
        store.append_commit(b"one").unwrap();
        store.append_commit(b"two").unwrap();
        // Checkpoint ops: write tmp, sync tmp, rename, sync_dir = 4;
        // fail the manifest update (and WAL truncate) that follow.
        fs.fail_after_ops(4);
        assert!(store
            .checkpoint(SnapshotFile {
                base_tag: "empty".into(),
                ..SnapshotFile::default()
            })
            .is_err());
        fs.crash(CrashMode::LostFsync);
        let (_, rec) = Store::open(Box::new(fs), DIR).unwrap();
        // New snapshot is durable and covers both records, so nothing
        // replays even though the WAL still physically holds them.
        assert_eq!(rec.snapshot.unwrap().last_seq, 2);
        assert!(rec.tail.is_empty());
    }

    #[test]
    fn enospc_degrades_to_read_only_and_probes_back() {
        let fs = FaultFs::new();
        let mut store =
            Store::create_with(Box::new(fs.clone()), DIR, "empty", instant_retries()).unwrap();
        store.append_commit(b"one").unwrap();
        assert_eq!(store.health(), StoreHealth::Healthy);

        fs.set_disk_full(true);
        let err = store.append_commit(b"two").unwrap_err();
        assert!(matches!(err, StorageError::DiskFull(_)));
        assert_eq!(store.health(), StoreHealth::DegradedReadOnly);
        // Still degraded: fails fast without touching the disk.
        assert!(matches!(
            store.append_commit(b"two"),
            Err(StorageError::DiskFull(_))
        ));
        // Checkpoints are refused too (they consume space).
        assert!(!store.checkpoint_due());

        fs.set_disk_full(false);
        // Probe sees freed space; the next append completes recovery.
        assert!(store.probe_space());
        assert_eq!(store.health(), StoreHealth::Recovering);
        assert_eq!(store.append_commit(b"two").unwrap(), 2);
        assert_eq!(store.health(), StoreHealth::Healthy);

        // Nothing acked was lost across the episode.
        fs.crash(CrashMode::LostFsync);
        let (_, rec) = Store::open(Box::new(fs), DIR).unwrap();
        assert_eq!(rec.tail, vec![(1, b"one".to_vec()), (2, b"two".to_vec())]);
    }

    #[test]
    fn degraded_append_recovers_inline_when_space_frees() {
        let fs = FaultFs::new();
        let mut store =
            Store::create_with(Box::new(fs.clone()), DIR, "empty", instant_retries()).unwrap();
        fs.set_disk_full(true);
        assert!(store.append_commit(b"x").is_err());
        fs.set_disk_full(false);
        // append_commit probes internally: no explicit probe call needed.
        assert_eq!(store.append_commit(b"x").unwrap(), 1);
        assert_eq!(store.health(), StoreHealth::Healthy);
    }

    #[test]
    fn transient_faults_are_retried_with_backoff() {
        let fs = FaultFs::new();
        let mut store =
            Store::create_with(Box::new(fs.clone()), DIR, "empty", instant_retries()).unwrap();
        // Three transient failures: within the 4-attempt budget, so the
        // commit succeeds without surfacing an error.
        fs.fail_transient_ops(3);
        assert_eq!(store.append_commit(b"one").unwrap(), 1);
        // Five in a row exhaust the budget for one operation.
        fs.fail_transient_ops(5);
        assert!(store.append_commit(b"two").is_err());
        fs.fail_transient_ops(0);
        assert_eq!(store.append_commit(b"two").unwrap(), 2);
        let (_, rec) = Store::open(Box::new(fs), DIR).unwrap();
        assert_eq!(rec.tail, vec![(1, b"one".to_vec()), (2, b"two".to_vec())]);
    }

    #[test]
    fn failed_checkpoints_are_recorded_under_the_err_label() {
        let registry = telemetry::Registry::default();
        let fs = FaultFs::new();
        let mut store = Store::create(Box::new(fs.clone()), DIR, "empty").unwrap();
        store.attach_registry(&registry);
        store.append_commit(b"one").unwrap();
        fs.fail_after_ops(1);
        assert!(store
            .checkpoint(SnapshotFile {
                base_tag: "empty".into(),
                ..SnapshotFile::default()
            })
            .is_err());
        fs.disarm();
        assert_eq!(
            registry
                .latency("storage_checkpoint_latency_us", &[("result", "err")])
                .count(),
            1
        );
        assert_eq!(
            registry
                .latency("storage_checkpoint_latency_us", &[("result", "ok")])
                .count(),
            0
        );
        store
            .checkpoint(SnapshotFile {
                base_tag: "empty".into(),
                ..SnapshotFile::default()
            })
            .unwrap();
        assert_eq!(
            registry
                .latency("storage_checkpoint_latency_us", &[("result", "ok")])
                .count(),
            1
        );
        assert_eq!(registry.counter_total("storage_checkpoints_total"), 1);
    }
}
