//! Checkpoint (snapshot) files.
//!
//! A snapshot file is the whole database at a point in the log, plus
//! everything the session needs to resume: the base-fixture tag, the
//! WAL sequence number the snapshot covers (`last_seq` — replay skips
//! records at or below it), the anonymous-OID counter, and the catalog
//! of definitional statements to re-execute (computed methods and views
//! are closures and cannot be serialized; see `oodb::snapshot`).
//!
//! Layout: an 8-byte magic, a CRC32 of the body, then the body. Unlike
//! the WAL codec, OIDs here are raw `u32` table indices — the file
//! carries the complete interner table, so indices are self-contained.
//!
//! Checkpoints are written atomically: encode, write `snapshot.tmp`,
//! fsync it, rename over `snapshot.bin`, fsync the directory. A crash at
//! any point leaves either the old snapshot or the new one, never a
//! hybrid; [`crate::Store`] only truncates the WAL after the rename is
//! durable.

use crate::{wal, StorageError, StorageResult};
use oodb::{ClassEntry, DbSnapshot, Oid, OidData, Signature, Val};
use std::collections::BTreeSet;

/// File magic for snapshot files (version baked into the last byte).
pub const MAGIC: &[u8; 8] = b"XSQLSNP1";

/// A decoded checkpoint file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotFile {
    /// Tag of the base fixture the database was seeded from (the store
    /// replays on top of that fixture).
    pub base_tag: String,
    /// Highest WAL sequence number whose effects the snapshot contains;
    /// recovery skips WAL records with `seq <= last_seq`.
    pub last_seq: u64,
    /// The session's anonymous-OID counter at checkpoint time.
    pub anon_counter: u64,
    /// Definitional statements (computed methods, views) in execution
    /// order, re-executed definitions-only after import.
    pub catalog: Vec<String>,
    /// The database state proper.
    pub db: DbSnapshot,
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_len(out: &mut Vec<u8>, n: usize) {
    put_u32(out, u32::try_from(n).expect("length fits u32"));
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_oid(out: &mut Vec<u8>, o: Oid) {
    put_u32(out, u32::try_from(o.index()).expect("OID fits u32"));
}

pub(crate) fn put_oids(out: &mut Vec<u8>, os: &[Oid]) {
    put_len(out, os.len());
    for &o in os {
        put_oid(out, o);
    }
}

/// Encodes one class entry (identity, supers, signatures, resolutions).
pub(crate) fn put_class_entry(out: &mut Vec<u8>, ce: &ClassEntry) {
    put_oid(out, ce.class);
    put_oids(out, &ce.supers);
    put_len(out, ce.sigs.len());
    for sig in &ce.sigs {
        put_oid(out, sig.method);
        put_oids(out, &sig.args);
        put_oid(out, sig.result);
        out.push(u8::from(sig.set_valued));
    }
    put_len(out, ce.resolutions.len());
    for &(m, f) in &ce.resolutions {
        put_oid(out, m);
        put_oid(out, f);
    }
}

/// Encodes one interner entry (tag byte + payload).
pub(crate) fn put_oid_data(out: &mut Vec<u8>, d: &OidData) {
    match d {
        OidData::Sym(s) => {
            out.push(0);
            put_str(out, s);
        }
        OidData::Int(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        OidData::Real(b) => {
            out.push(2);
            put_u64(out, *b);
        }
        OidData::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
        OidData::Bool(v) => {
            out.push(4);
            out.push(u8::from(*v));
        }
        OidData::Nil => out.push(5),
        OidData::Func(f, args) => {
            out.push(6);
            put_oid(out, *f);
            put_oids(out, args);
        }
    }
}

pub(crate) fn put_val(out: &mut Vec<u8>, v: &Val) {
    match v {
        Val::Scalar(o) => {
            out.push(0);
            put_oid(out, *o);
        }
        Val::Set(s) => {
            out.push(1);
            put_len(out, s.len());
            for &o in s {
                put_oid(out, o);
            }
        }
    }
}

/// Encodes a snapshot file (magic + CRC + body).
pub fn encode_snapshot(snap: &SnapshotFile) -> Vec<u8> {
    let mut body = Vec::new();
    put_str(&mut body, &snap.base_tag);
    put_u64(&mut body, snap.last_seq);
    put_u64(&mut body, snap.anon_counter);
    put_len(&mut body, snap.catalog.len());
    for s in &snap.catalog {
        put_str(&mut body, s);
    }
    put_len(&mut body, snap.db.oids.len());
    for d in &snap.db.oids {
        put_oid_data(&mut body, d);
    }
    put_len(&mut body, snap.db.classes.len());
    for ce in &snap.db.classes {
        put_class_entry(&mut body, ce);
    }
    put_len(&mut body, snap.db.instance_of.len());
    for (o, cs) in &snap.db.instance_of {
        put_oid(&mut body, *o);
        put_oids(&mut body, cs);
    }
    put_oids(&mut body, &snap.db.individuals);
    put_oids(&mut body, &snap.db.method_objects);
    put_len(&mut body, snap.db.state.len());
    for ((recv, method, args), v) in &snap.db.state {
        put_oid(&mut body, *recv);
        put_oid(&mut body, *method);
        put_oids(&mut body, args);
        put_val(&mut body, v);
    }

    let mut out = Vec::with_capacity(MAGIC.len() + 4 + body.len());
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, wal::crc32(0, &body));
    out.extend_from_slice(&body);
    out
}

/// Byte cursor for decoding (indices are validated against the table
/// length after the table section is read).
pub(crate) struct R<'a> {
    pub(crate) b: &'a [u8],
    pub(crate) pos: usize,
}

pub(crate) fn corrupt(what: &str) -> StorageError {
    StorageError::Corrupt(format!("snapshot: truncated or malformed {what}"))
}

impl<'a> R<'a> {
    pub(crate) fn take(&mut self, n: usize, what: &str) -> StorageResult<&'a [u8]> {
        if self.b.len() - self.pos < n {
            return Err(corrupt(what));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, what: &str) -> StorageResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u32(&mut self, what: &str) -> StorageResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self, what: &str) -> StorageResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub(crate) fn len(&mut self, what: &str) -> StorageResult<usize> {
        let n = self.u32(what)? as usize;
        if n > self.b.len() - self.pos {
            return Err(corrupt(what));
        }
        Ok(n)
    }

    pub(crate) fn str(&mut self, what: &str) -> StorageResult<String> {
        let n = self.len(what)?;
        String::from_utf8(self.take(n, what)?.to_vec()).map_err(|_| corrupt(what))
    }
}

pub(crate) struct OidReader {
    pub(crate) table_len: usize,
}

impl OidReader {
    pub(crate) fn oid(&self, r: &mut R<'_>, what: &str) -> StorageResult<Oid> {
        let i = r.u32(what)? as usize;
        if i >= self.table_len {
            return Err(corrupt(what));
        }
        Ok(Oid::from_index(i))
    }

    pub(crate) fn oids(&self, r: &mut R<'_>, what: &str) -> StorageResult<Vec<Oid>> {
        let n = r.len(what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.oid(r, what)?);
        }
        Ok(out)
    }

    pub(crate) fn val(&self, r: &mut R<'_>) -> StorageResult<Val> {
        Ok(match r.u8("value tag")? {
            0 => Val::Scalar(self.oid(r, "scalar value")?),
            1 => {
                let n = r.len("set size")?;
                let mut s = BTreeSet::new();
                for _ in 0..n {
                    s.insert(self.oid(r, "set member")?);
                }
                Val::Set(s)
            }
            _ => return Err(corrupt("value tag")),
        })
    }
}

/// Decodes one interner entry at absolute table index `i`. Id-term
/// references must point strictly below `i` (interning order guarantees
/// args precede their term), so a delta suffix validates against the
/// combined base-plus-suffix table exactly like a full table does.
pub(crate) fn read_oid_data(r: &mut R<'_>, rd: &OidReader, i: usize) -> StorageResult<OidData> {
    Ok(match r.u8("oid tag")? {
        0 => OidData::Sym(r.str("symbol")?.into()),
        1 => OidData::Int(i64::from_le_bytes(r.take(8, "int")?.try_into().unwrap())),
        2 => OidData::Real(r.u64("real")?),
        3 => OidData::Str(r.str("string")?.into()),
        4 => OidData::Bool(r.u8("bool")? != 0),
        5 => OidData::Nil,
        6 => {
            let f = rd.oid(r, "functor")?;
            let args = rd.oids(r, "id-term args")?;
            if f.index() >= i || args.iter().any(|a| a.index() >= i) {
                return Err(corrupt("id-term forward reference"));
            }
            OidData::Func(f, args.into())
        }
        _ => return Err(corrupt("oid tag")),
    })
}

/// Decodes one class entry.
pub(crate) fn read_class_entry(r: &mut R<'_>, rd: &OidReader) -> StorageResult<ClassEntry> {
    let class = rd.oid(r, "class oid")?;
    let supers = rd.oids(r, "supers")?;
    let ns = r.len("signature count")?;
    let mut sigs = Vec::with_capacity(ns);
    for _ in 0..ns {
        sigs.push(Signature {
            method: rd.oid(r, "sig method")?,
            args: rd.oids(r, "sig args")?,
            result: rd.oid(r, "sig result")?,
            set_valued: r.u8("sig kind")? != 0,
        });
    }
    let nr = r.len("resolution count")?;
    let mut resolutions = Vec::with_capacity(nr);
    for _ in 0..nr {
        let m = rd.oid(r, "resolution method")?;
        let f = rd.oid(r, "resolution source")?;
        resolutions.push((m, f));
    }
    Ok(ClassEntry {
        class,
        supers,
        sigs,
        resolutions,
    })
}

/// Decodes and validates a snapshot file (magic and CRC checked first).
pub fn decode_snapshot(bytes: &[u8]) -> StorageResult<SnapshotFile> {
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt("magic"));
    }
    let crc = u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap());
    let body = &bytes[MAGIC.len() + 4..];
    if wal::crc32(0, body) != crc {
        return Err(StorageError::Corrupt("snapshot: checksum mismatch".into()));
    }
    let mut r = R { b: body, pos: 0 };
    let base_tag = r.str("base tag")?;
    let last_seq = r.u64("last seq")?;
    let anon_counter = r.u64("anon counter")?;
    let nc = r.len("catalog count")?;
    let mut catalog = Vec::with_capacity(nc);
    for _ in 0..nc {
        catalog.push(r.str("catalog statement")?);
    }
    let no = r.len("oid count")?;
    let mut oids = Vec::with_capacity(no);
    let rd = OidReader { table_len: no };
    for i in 0..no {
        oids.push(read_oid_data(&mut r, &rd, i)?);
    }
    let ncl = r.len("class count")?;
    let mut classes = Vec::with_capacity(ncl);
    for _ in 0..ncl {
        classes.push(read_class_entry(&mut r, &rd)?);
    }
    let ni = r.len("instance-of count")?;
    let mut instance_of = Vec::with_capacity(ni);
    for _ in 0..ni {
        let o = rd.oid(&mut r, "instance object")?;
        let cs = rd.oids(&mut r, "instance classes")?;
        instance_of.push((o, cs));
    }
    let individuals = rd.oids(&mut r, "individuals")?;
    let method_objects = rd.oids(&mut r, "method objects")?;
    let nst = r.len("state count")?;
    let mut state = Vec::with_capacity(nst);
    for _ in 0..nst {
        let recv = rd.oid(&mut r, "state receiver")?;
        let method = rd.oid(&mut r, "state method")?;
        let args = rd.oids(&mut r, "state args")?;
        let v = rd.val(&mut r)?;
        state.push(((recv, method, args), v));
    }
    if r.pos != body.len() {
        return Err(corrupt("file (trailing bytes)"));
    }
    Ok(SnapshotFile {
        base_tag,
        last_seq,
        anon_counter,
        catalog,
        db: DbSnapshot {
            oids,
            classes,
            instance_of,
            individuals,
            method_objects,
            state,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb::Database;

    fn sample() -> SnapshotFile {
        let mut db = Database::new();
        let person = db.define_class("Person", &[]).unwrap();
        let string = db.builtins().string;
        db.add_signature(person, "Name", &[], string, false)
            .unwrap();
        let p = db.new_individual("p1", &[person]).unwrap();
        let name = db.oids().find_sym("Name").unwrap();
        let v = db.oids_mut().str("Pat");
        db.set_scalar(p, name, &[], v).unwrap();
        let f = db.oids_mut().sym("idf");
        let t = db.oids_mut().func(f, &[p]);
        db.register_individual(t, &[person]).unwrap();
        SnapshotFile {
            base_tag: "empty".into(),
            last_seq: 41,
            anon_counter: 3,
            catalog: vec!["CREATE VIEW V AS SELECT X FROM Person X".into()],
            db: db.export_snapshot(),
        }
    }

    #[test]
    fn snapshot_roundtrips_and_imports() {
        let snap = sample();
        let bytes = encode_snapshot(&snap);
        let got = decode_snapshot(&bytes).unwrap();
        assert_eq!(got, snap);
        let db = Database::import_snapshot(got.db).unwrap();
        let person = db.oids().find_sym("Person").unwrap();
        let p = db.oids().find_sym("p1").unwrap();
        assert!(db.is_instance_of(p, person));
        let name = db.oids().find_sym("Name").unwrap();
        let val = db.value(p, name, &[]).unwrap().unwrap();
        assert_eq!(db.oids().as_str(val.as_scalar().unwrap()), Some("Pat"));
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let bytes = encode_snapshot(&sample());
        // Flip one byte at a spread of positions; decode must fail (or,
        // for the length-prefix bytes, fail structurally) every time.
        for i in (0..bytes.len()).step_by(7) {
            let mut m = bytes.clone();
            m[i] ^= 0x40;
            assert!(decode_snapshot(&m).is_err(), "flip at {i} went unnoticed");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_snapshot(&sample());
        for cut in [0, 7, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_snapshot(&bytes[..cut]).is_err());
        }
    }
}
