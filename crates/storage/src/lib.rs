//! # storage — durability for the xsql session
//!
//! The engine crates (`oodb`, `xsql`) are purely in-memory; this crate
//! adds crash-safe persistence on top without touching their evaluation
//! paths. A [`Store`] owns one directory containing:
//!
//! * `meta` — store identity: magic line plus the base-fixture tag;
//! * `wal` — a length-prefixed, CRC32-checksummed, sequence-numbered
//!   write-ahead log of committed *commit units* (see [`wal`]);
//! * `snapshot.bin` — the latest checkpoint, written atomically via
//!   `snapshot.tmp` + rename (see [`snapshot`]).
//!
//! A commit unit is the redo image of one auto-committed statement or of
//! one whole explicit transaction ([`codec::CommitUnit`]); it is appended
//! and fsync'd *before* the statement is acknowledged, so recovery after
//! a crash always lands on a statement boundary: the WAL scan stops
//! cleanly at the first torn or corrupt record and everything before it
//! replays deterministically.
//!
//! All I/O goes through the [`fs::StorageFs`] trait. Production code uses
//! [`fs::RealFs`]; the `fault-injection` feature compiles
//! [`fault::FaultFs`], a deterministic in-memory filesystem that models
//! torn tails, flipped bits, lost fsyncs and lost renames for the crash
//! test-suite.

#![warn(missing_docs)]

pub mod codec;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod fs;
pub mod snapshot;
pub mod store;
pub mod wal;

#[cfg(feature = "fault-injection")]
pub use fault::{CrashMode, FaultFs};
pub use fs::{RealFs, StorageFs};
pub use snapshot::SnapshotFile;
pub use store::{Recovered, Store};

use std::fmt;
use std::io;

/// Errors raised by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An I/O operation failed (possibly an injected fault).
    Io(io::Error),
    /// On-disk data failed validation (bad magic, checksum mismatch,
    /// truncated structure). Recovery treats WAL-tail corruption as a
    /// clean end-of-log; everywhere else it is surfaced.
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt(m) => write!(f, "corrupt store: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenient result alias for the storage layer.
pub type StorageResult<T> = Result<T, StorageError>;
