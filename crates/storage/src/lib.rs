//! # storage — durability for the xsql session
//!
//! The engine crates (`oodb`, `xsql`) are purely in-memory; this crate
//! adds crash-safe persistence on top without touching their evaluation
//! paths. A [`Store`] owns one directory containing:
//!
//! * `meta` — store identity: magic line plus the base-fixture tag;
//! * `manifest` — the authoritative list of live WAL segments and
//!   checkpoint deltas (see [`manifest`]);
//! * `wal.NNNNNN` — checksummed, size-bounded WAL segments of committed
//!   *commit units* (see [`wal`]); the last listed segment is active;
//! * `snapshot.bin` — the latest full checkpoint, written atomically via
//!   `snapshot.tmp` + rename (see [`snapshot`]);
//! * `delta.NNNNNN.bin` — incremental checkpoint deltas chained on top
//!   of the full snapshot (see [`delta`]);
//! * `*.quarantined` — corrupt segments preserved (renamed, never
//!   deleted) by recovery for forensics.
//!
//! A commit unit is the redo image of one auto-committed statement or of
//! one whole explicit transaction ([`codec::CommitUnit`]); it is appended
//! and fsync'd *before* the statement is acknowledged, so recovery after
//! a crash always lands on a statement boundary: the scan stops cleanly
//! at the first torn or corrupt record and everything before it replays
//! deterministically. Mid-log corruption (a bad record with more log
//! after it) is salvaged: the longest valid prefix is kept, the corrupt
//! segment is quarantined, and the salvage point is reported
//! ([`store::SalvageReport`]).
//!
//! Transient I/O errors are retried with bounded exponential backoff;
//! `ENOSPC` flips the store into read-only degraded mode
//! ([`store::StoreHealth`]) from which it probes its way back once space
//! frees. Both classifications come from [`fs::classify_io`].
//!
//! All I/O goes through the [`fs::StorageFs`] trait. Production code uses
//! [`fs::RealFs`]; the `fault-injection` feature compiles
//! [`fault::FaultFs`], a deterministic in-memory filesystem that models
//! torn tails, flipped bits, lost fsyncs, lost renames, transient errors
//! and full disks for the crash test-suite.

#![warn(missing_docs)]

pub mod codec;
pub mod delta;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod fs;
pub mod manifest;
pub mod snapshot;
pub mod store;
pub mod wal;

#[cfg(feature = "fault-injection")]
pub use fault::{CrashMode, FaultFs};
pub use fs::{classify_io, IoClass, RealFs, StorageFs};
pub use snapshot::SnapshotFile;
pub use store::{
    CheckpointKind, CheckpointStats, Recovered, RetryPolicy, SalvageReport, Store, StoreConfig,
    StoreHealth,
};

use std::fmt;
use std::io;

/// Errors raised by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An I/O operation failed (possibly an injected fault).
    Io(io::Error),
    /// On-disk data failed validation (bad magic, checksum mismatch,
    /// truncated structure). Recovery treats WAL-tail corruption as a
    /// clean end-of-log; everywhere else it is surfaced.
    Corrupt(String),
    /// A WAL segment is structurally unrecoverable (e.g. a manifest
    /// lists a non-final segment that does not exist). `offset` is the
    /// byte offset of the first bad record within the segment.
    CorruptSegment {
        /// File name of the offending segment.
        segment: String,
        /// Byte offset of the first bad record.
        offset: u64,
        /// Human-readable detail.
        detail: String,
    },
    /// The disk is out of space; the store is read-only (degraded)
    /// until a probe observes freed space.
    DiskFull(String),
    /// Another writer holds a newer primary generation: this instance
    /// has been deposed and must not extend the log. Terminal for the
    /// instance — rejoin the topology as a replica.
    Fenced {
        /// The newer generation observed in the shared manifest.
        observed: u64,
        /// This store's own (stale) generation.
        own: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt(m) => write!(f, "corrupt store: {m}"),
            StorageError::CorruptSegment {
                segment,
                offset,
                detail,
            } => write!(
                f,
                "corrupt WAL segment {segment} (first bad record at byte {offset}): {detail}"
            ),
            StorageError::DiskFull(m) => write!(f, "disk full: {m}"),
            StorageError::Fenced { observed, own } => write!(
                f,
                "fenced: generation {observed} has superseded this writer's \
                 generation {own}; refusing to extend the log"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        if classify_io(&e) == IoClass::DiskFull {
            StorageError::DiskFull(e.to_string())
        } else {
            StorageError::Io(e)
        }
    }
}

/// Convenient result alias for the storage layer.
pub type StorageResult<T> = Result<T, StorageError>;
