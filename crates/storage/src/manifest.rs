//! The store manifest: the authoritative list of live log files.
//!
//! [`StorageFs`](crate::fs::StorageFs) deliberately has no directory
//! listing, so the store records which WAL segments and checkpoint
//! deltas are live in a small text file, `manifest`, rewritten
//! atomically (write `manifest.tmp`, fsync, rename, fsync dir) on every
//! rotation, checkpoint and salvage. Anything on disk that the manifest
//! does not mention is dead weight — an orphan from a crash mid-protocol
//! — and is ignored by recovery.
//!
//! Format (one entry per line, in log order):
//!
//! ```text
//! XSQLMANIFESTv1
//! gen 3
//! seg wal.000001
//! seg wal.000002
//! delta delta.000003.bin
//! ```
//!
//! `gen` is the primary generation (fencing term): the store's writer
//! may only extend the log while its own generation equals this value.
//! Promotion bumps it; a deposed primary that observes a higher value
//! in the shipped manifest refuses to append (see `docs/SERVING.md`).
//! A manifest without a `gen` line is generation 1 (pre-fencing
//! stores). `seg` lines are WAL segments, oldest first; the last one is
//! the active (appendable) segment. `delta` lines are incremental
//! checkpoint deltas in chain order, applied on top of `snapshot.bin`.
//! A store created before manifests (a bare `wal` file) is opened by
//! synthesizing a one-segment manifest in memory; the first rotation or
//! checkpoint writes the real file.

use crate::{StorageError, StorageResult};

/// First line of every manifest file.
pub const MANIFEST_MAGIC: &str = "XSQLMANIFESTv1";

/// Parsed manifest contents: the primary generation plus segment and
/// delta names, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Primary generation (fencing term). `1` for stores whose manifest
    /// predates fencing.
    pub generation: u64,
    /// WAL segment file names, oldest first; the last is active.
    pub segments: Vec<String>,
    /// Checkpoint delta file names, in chain order.
    pub deltas: Vec<String>,
}

impl Default for Manifest {
    fn default() -> Self {
        Manifest {
            generation: 1,
            segments: Vec::new(),
            deltas: Vec::new(),
        }
    }
}

/// Renders a manifest to its on-disk text form.
pub fn render_manifest(m: &Manifest) -> Vec<u8> {
    let mut out = String::with_capacity(64);
    out.push_str(MANIFEST_MAGIC);
    out.push('\n');
    out.push_str("gen ");
    out.push_str(&m.generation.to_string());
    out.push('\n');
    for s in &m.segments {
        out.push_str("seg ");
        out.push_str(s);
        out.push('\n');
    }
    for d in &m.deltas {
        out.push_str("delta ");
        out.push_str(d);
        out.push('\n');
    }
    out.into_bytes()
}

fn corrupt(detail: &str) -> StorageError {
    StorageError::Corrupt(format!("manifest: {detail}"))
}

/// Parses and validates a manifest file. File names must be bare (no
/// path separators) — a manifest never points outside its store
/// directory.
pub fn parse_manifest(bytes: &[u8]) -> StorageResult<Manifest> {
    let text = std::str::from_utf8(bytes).map_err(|_| corrupt("not UTF-8"))?;
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(corrupt("bad magic"));
    }
    let mut m = Manifest::default();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (kind, name) = line.split_once(' ').ok_or_else(|| corrupt("bad entry"))?;
        if kind == "gen" {
            m.generation = name.parse().map_err(|_| corrupt("bad generation"))?;
            continue;
        }
        if name.is_empty() || name.contains('/') || name.contains('\\') {
            return Err(corrupt("bad file name"));
        }
        match kind {
            "seg" => m.segments.push(name.to_string()),
            "delta" => m.deltas.push(name.to_string()),
            _ => return Err(corrupt("unknown entry kind")),
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = Manifest {
            generation: 5,
            segments: vec!["wal.000001".into(), "wal.000004".into()],
            deltas: vec!["delta.000002.bin".into(), "delta.000003.bin".into()],
        };
        assert_eq!(parse_manifest(&render_manifest(&m)).unwrap(), m);
    }

    #[test]
    fn empty_manifest_roundtrips() {
        let m = Manifest::default();
        assert_eq!(parse_manifest(&render_manifest(&m)).unwrap(), m);
    }

    #[test]
    fn manifest_without_gen_line_is_generation_one() {
        let m = parse_manifest(b"XSQLMANIFESTv1\nseg wal.000001\n").unwrap();
        assert_eq!(m.generation, 1);
        assert_eq!(m.segments, vec!["wal.000001".to_string()]);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(parse_manifest(b"").is_err());
        assert!(parse_manifest(b"NOPE\n").is_err());
        assert!(parse_manifest(b"XSQLMANIFESTv1\nwat wal.1\n").is_err());
        assert!(parse_manifest(b"XSQLMANIFESTv1\nseg\n").is_err());
        assert!(parse_manifest(b"XSQLMANIFESTv1\nseg ../evil\n").is_err());
        assert!(parse_manifest(b"XSQLMANIFESTv1\ngen nope\n").is_err());
        assert!(parse_manifest(&[0xff, 0xfe]).is_err());
    }
}
