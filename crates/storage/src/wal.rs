//! WAL record framing and scanning.
//!
//! On-disk record layout (all integers little-endian):
//!
//! ```text
//! | len: u32 | crc: u32 | seq: u64 | payload: len bytes |
//! ```
//!
//! `len` counts the payload only; `crc` is CRC32 (IEEE) over the `seq`
//! field and the payload, so neither a bit flip in the body nor a stale
//! sequence number goes unnoticed. Sequence numbers are strictly
//! increasing within one log.
//!
//! [`scan`] validates a log prefix: it stops — without error — at the
//! first short header, short payload, checksum mismatch, oversized
//! length, or non-monotonic sequence, and reports how many bytes were
//! valid. A crash mid-append produces exactly such a tail, so "stop at
//! the first bad record" *is* the recovery rule; the store then truncates
//! the file to the valid length before appending again.
//!
//! Segments written by fencing-aware stores begin with a 16-byte
//! header — [`SEG_MAGIC`] followed by the primary generation (u64 LE)
//! that created the segment. [`scan`] recognises the header and
//! reports the generation; legacy headerless segments scan from byte 0
//! with `generation: None` and inherit the manifest's generation.

/// Upper bound on a record payload (64 MiB). A corrupted length field
/// would otherwise make the scanner wait for gigabytes of payload that
/// never existed.
pub const MAX_RECORD: u32 = 64 << 20;

/// Bytes of framing before the payload: len + crc + seq.
pub const HEADER: usize = 4 + 4 + 8;

/// Magic opening a generation-stamped WAL segment.
pub const SEG_MAGIC: &[u8; 8] = b"XSQLSEG1";

/// Bytes of the segment header: magic + generation (u64 LE).
pub const SEG_HEADER: usize = 16;

/// The 16-byte header opening a segment created under `generation`.
pub fn segment_header(generation: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEG_HEADER);
    out.extend_from_slice(SEG_MAGIC);
    out.extend_from_slice(&generation.to_le_bytes());
    out
}

/// CRC32 (IEEE 802.3, reflected) of `bytes`, continuing from `crc`.
/// Pass `0` to start; no external crc crate is used.
pub fn crc32(mut crc: u32, bytes: &[u8]) -> u32 {
    crc = !crc;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frames one record: header plus payload, ready to append.
pub fn frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_RECORD as usize, "WAL record too large");
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = crc32(crc32(0, &seq.to_le_bytes()), payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of scanning a log: the valid records in order, and the byte
/// length of the valid prefix (everything past it is a torn or corrupt
/// tail to be truncated).
#[derive(Debug, Default)]
pub struct WalScan {
    /// `(seq, payload)` for each valid record, in log order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Length in bytes of the valid prefix of the log (including the
    /// segment header, when present).
    pub valid_len: u64,
    /// Generation stamped in the segment header; `None` for legacy
    /// headerless segments (they inherit the manifest's generation).
    pub generation: Option<u64>,
    /// Bytes of segment header preceding the first record (0 or
    /// [`SEG_HEADER`]).
    pub header_len: u64,
}

/// Scans `bytes` from the start, collecting records until the first
/// invalid one (see module docs for what invalidates a record).
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut out = WalScan::default();
    let mut pos = 0usize;
    // A segment header, when present, precedes the first record. A
    // file starting with a *prefix* of the magic is a torn header
    // write: nothing after it is trustworthy, so the valid prefix is
    // empty.
    if bytes.len() >= SEG_HEADER && &bytes[..SEG_MAGIC.len()] == SEG_MAGIC {
        out.generation = Some(u64::from_le_bytes(
            bytes[SEG_MAGIC.len()..SEG_HEADER].try_into().unwrap(),
        ));
        out.header_len = SEG_HEADER as u64;
        out.valid_len = SEG_HEADER as u64;
        pos = SEG_HEADER;
    } else if !bytes.is_empty()
        && bytes.len() < SEG_HEADER
        && SEG_MAGIC.starts_with(&bytes[..bytes.len().min(SEG_MAGIC.len())])
    {
        return out;
    }
    let mut last_seq: Option<u64> = None;
    while bytes.len() - pos >= HEADER {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let seq = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap());
        if len > MAX_RECORD {
            break;
        }
        let body_end = pos + HEADER + len as usize;
        if body_end > bytes.len() {
            break; // torn payload
        }
        let payload = &bytes[pos + HEADER..body_end];
        if crc32(crc32(0, &seq.to_le_bytes()), payload) != crc {
            break;
        }
        if last_seq.is_some_and(|p| seq <= p) {
            break;
        }
        last_seq = Some(seq);
        out.records.push((seq, payload.to_vec()));
        pos = body_end;
        out.valid_len = pos as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_multiple_records() {
        let mut log = Vec::new();
        log.extend_from_slice(&frame(1, b"alpha"));
        log.extend_from_slice(&frame(2, b""));
        log.extend_from_slice(&frame(7, b"gamma"));
        let s = scan(&log);
        assert_eq!(s.valid_len, log.len() as u64);
        assert_eq!(
            s.records,
            vec![
                (1, b"alpha".to_vec()),
                (2, Vec::new()),
                (7, b"gamma".to_vec())
            ]
        );
    }

    #[test]
    fn torn_tail_stops_cleanly() {
        let mut log = Vec::new();
        log.extend_from_slice(&frame(1, b"alpha"));
        let keep = log.len();
        let rec2 = frame(2, b"beta");
        log.extend_from_slice(&rec2[..rec2.len() / 2]);
        let s = scan(&log);
        assert_eq!(s.valid_len, keep as u64);
        assert_eq!(s.records.len(), 1);
    }

    #[test]
    fn flipped_bit_invalidates_record_and_everything_after() {
        let mut log = Vec::new();
        log.extend_from_slice(&frame(1, b"alpha"));
        let keep = log.len();
        log.extend_from_slice(&frame(2, b"beta"));
        log.extend_from_slice(&frame(3, b"gamma"));
        log[keep + HEADER] ^= 0x01; // corrupt record 2's payload
        let s = scan(&log);
        assert_eq!(s.valid_len, keep as u64);
        assert_eq!(s.records.len(), 1);
    }

    #[test]
    fn non_monotonic_seq_stops_the_scan() {
        let mut log = Vec::new();
        log.extend_from_slice(&frame(5, b"alpha"));
        let keep = log.len();
        log.extend_from_slice(&frame(5, b"beta"));
        let s = scan(&log);
        assert_eq!(s.valid_len, keep as u64);
    }

    #[test]
    fn oversized_length_field_is_rejected() {
        let mut log = frame(1, b"x");
        log[0..4].copy_from_slice(&(MAX_RECORD + 1).to_le_bytes());
        let s = scan(&log);
        assert_eq!(s.valid_len, 0);
        assert!(s.records.is_empty());
    }

    #[test]
    fn segment_header_carries_the_generation() {
        let mut log = segment_header(7);
        log.extend_from_slice(&frame(1, b"alpha"));
        log.extend_from_slice(&frame(2, b"beta"));
        let s = scan(&log);
        assert_eq!(s.generation, Some(7));
        assert_eq!(s.header_len, SEG_HEADER as u64);
        assert_eq!(s.valid_len, log.len() as u64);
        assert_eq!(s.records.len(), 2);
    }

    #[test]
    fn empty_stamped_segment_scans_to_its_header() {
        let s = scan(&segment_header(3));
        assert_eq!(s.generation, Some(3));
        assert_eq!(s.valid_len, SEG_HEADER as u64);
        assert!(s.records.is_empty());
    }

    #[test]
    fn torn_segment_header_invalidates_the_whole_file() {
        let hdr = segment_header(9);
        for cut in 1..SEG_HEADER {
            let s = scan(&hdr[..cut]);
            assert_eq!(s.valid_len, 0, "cut at {cut}");
            assert_eq!(s.generation, None);
            assert!(s.records.is_empty());
        }
    }

    #[test]
    fn legacy_headerless_segment_scans_with_no_generation() {
        let log = frame(1, b"alpha");
        let s = scan(&log);
        assert_eq!(s.generation, None);
        assert_eq!(s.header_len, 0);
        assert_eq!(s.valid_len, log.len() as u64);
        assert_eq!(s.records.len(), 1);
    }
}
