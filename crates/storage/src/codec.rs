//! Binary codec for WAL payloads.
//!
//! A WAL record's payload is one [`CommitUnit`]: the session's
//! anonymous-OID counter after the unit, plus the entries of the unit —
//! one per statement, either the statement's redo-op list
//! ([`WalEntry::Ops`]) or, for definitional statements whose effect is a
//! closure that cannot be serialized (`ALTER CLASS … SELECT`,
//! `CREATE VIEW`), the statement source text ([`WalEntry::Stmt`]) to be
//! re-executed on replay.
//!
//! OIDs are encoded **structurally**: each handle is written as its
//! [`OidData`] term (recursively for id-terms), and decoding re-interns
//! the term in the recovering database's own table. Interning is not
//! WAL-logged (see `oodb::redo`), so table positions differ across
//! processes — structural encoding makes records position-independent.
//! The snapshot codec ([`crate::snapshot`]) is the one place raw indices
//! are used, because it persists the whole table alongside.
//!
//! All integers are little-endian; lengths and counts are `u32`.

use crate::{StorageError, StorageResult};
use oodb::{Oid, OidData, OidTable, RedoOp, Signature, Val};

/// One journaled statement inside a commit unit.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEntry {
    /// The statement's effect as redo ops (the common case).
    Ops(Vec<RedoOp>),
    /// The statement's XSQL source text, for definitional statements
    /// whose effect installs a computed method or view (re-executed on
    /// replay).
    Stmt(String),
}

/// The payload of one WAL record: everything committed by one
/// auto-committed statement or one explicit transaction, plus the
/// session counters that must survive recovery.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CommitUnit {
    /// The session's anonymous-OID counter *after* this unit (restored
    /// on replay so freshly invented `_oidfn…` names never collide with
    /// recovered ones).
    pub anon_counter: u64,
    /// The journaled statements, in execution order.
    pub entries: Vec<WalEntry>,
}

// ---------------------------------------------------------------------
// Write primitives
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_len(out: &mut Vec<u8>, n: usize) {
    put_u32(out, u32::try_from(n).expect("length fits u32"));
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Encodes one OID as its structural term.
fn put_term(out: &mut Vec<u8>, oids: &OidTable, o: Oid) {
    match oids.get(o) {
        OidData::Sym(s) => {
            out.push(0);
            put_str(out, s);
        }
        OidData::Int(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        OidData::Real(b) => {
            out.push(2);
            put_u64(out, *b);
        }
        OidData::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
        OidData::Bool(v) => {
            out.push(4);
            out.push(u8::from(*v));
        }
        OidData::Nil => out.push(5),
        OidData::Func(f, args) => {
            out.push(6);
            let (f, args) = (*f, args.clone());
            put_term(out, oids, f);
            put_len(out, args.len());
            for a in args.iter() {
                put_term(out, oids, *a);
            }
        }
    }
}

fn put_terms(out: &mut Vec<u8>, oids: &OidTable, os: &[Oid]) {
    put_len(out, os.len());
    for &o in os {
        put_term(out, oids, o);
    }
}

fn put_val(out: &mut Vec<u8>, oids: &OidTable, v: &Val) {
    match v {
        Val::Scalar(o) => {
            out.push(0);
            put_term(out, oids, *o);
        }
        Val::Set(s) => {
            out.push(1);
            put_len(out, s.len());
            for &o in s {
                put_term(out, oids, o);
            }
        }
    }
}

fn put_key(out: &mut Vec<u8>, oids: &OidTable, key: &(Oid, Oid, Vec<Oid>)) {
    put_term(out, oids, key.0);
    put_term(out, oids, key.1);
    put_terms(out, oids, &key.2);
}

fn put_sig(out: &mut Vec<u8>, oids: &OidTable, sig: &Signature) {
    put_term(out, oids, sig.method);
    put_terms(out, oids, &sig.args);
    put_term(out, oids, sig.result);
    out.push(u8::from(sig.set_valued));
}

fn put_redo(out: &mut Vec<u8>, oids: &OidTable, op: &RedoOp) {
    match op {
        RedoOp::DefineClass { class, supers } => {
            out.push(0);
            put_term(out, oids, *class);
            put_terms(out, oids, supers);
        }
        RedoOp::AddIsA { sub, sup } => {
            out.push(1);
            put_term(out, oids, *sub);
            put_term(out, oids, *sup);
        }
        RedoOp::PutState { key, val } => {
            out.push(2);
            put_key(out, oids, key);
            put_val(out, oids, val);
        }
        RedoOp::RemoveState { key } => {
            out.push(3);
            put_key(out, oids, key);
        }
        RedoOp::AddIndividual(o) => {
            out.push(4);
            put_term(out, oids, *o);
        }
        RedoOp::RemoveIndividual(o) => {
            out.push(5);
            put_term(out, oids, *o);
        }
        RedoOp::AddMembership { o, class } => {
            out.push(6);
            put_term(out, oids, *o);
            put_term(out, oids, *class);
        }
        RedoOp::RemoveMembership { o, class } => {
            out.push(7);
            put_term(out, oids, *o);
            put_term(out, oids, *class);
        }
        RedoOp::AddMethodObject(m) => {
            out.push(8);
            put_term(out, oids, *m);
        }
        RedoOp::AddSignature { class, sig } => {
            out.push(9);
            put_term(out, oids, *class);
            put_sig(out, oids, sig);
        }
        RedoOp::SetResolution {
            class,
            method,
            from,
        } => {
            out.push(10);
            put_term(out, oids, *class);
            put_term(out, oids, *method);
            put_term(out, oids, *from);
        }
    }
}

/// Encodes one commit unit as a WAL record payload.
pub fn encode_commit(unit: &CommitUnit, oids: &OidTable) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, unit.anon_counter);
    put_len(&mut out, unit.entries.len());
    for e in &unit.entries {
        match e {
            WalEntry::Ops(ops) => {
                out.push(0);
                put_len(&mut out, ops.len());
                for op in ops {
                    put_redo(&mut out, oids, op);
                }
            }
            WalEntry::Stmt(src) => {
                out.push(1);
                put_str(&mut out, src);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Read primitives
// ---------------------------------------------------------------------

/// Byte cursor with corruption-reporting reads.
struct R<'a> {
    b: &'a [u8],
    pos: usize,
}

fn corrupt(what: &str) -> StorageError {
    StorageError::Corrupt(format!("truncated or malformed {what}"))
}

impl<'a> R<'a> {
    fn new(b: &'a [u8]) -> Self {
        R { b, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> StorageResult<&'a [u8]> {
        if self.b.len() - self.pos < n {
            return Err(corrupt(what));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> StorageResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> StorageResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> StorageResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn i64(&mut self, what: &str) -> StorageResult<i64> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// A length/count field, sanity-capped by the remaining input so a
    /// corrupt count cannot drive huge allocations.
    fn len(&mut self, what: &str) -> StorageResult<usize> {
        let n = self.u32(what)? as usize;
        if n > self.b.len() - self.pos {
            return Err(corrupt(what));
        }
        Ok(n)
    }

    fn str(&mut self, what: &str) -> StorageResult<String> {
        let n = self.len(what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt(what))
    }

    fn done(&self) -> bool {
        self.pos == self.b.len()
    }
}

fn get_term(r: &mut R<'_>, oids: &mut OidTable) -> StorageResult<Oid> {
    Ok(match r.u8("term tag")? {
        0 => {
            let s = r.str("symbol")?;
            oids.sym(&s)
        }
        1 => oids.int(r.i64("int")?),
        2 => {
            let bits = r.u64("real")?;
            let v = f64::from_bits(bits);
            if v.is_nan() {
                return Err(corrupt("real (NaN)"));
            }
            oids.real(v)
        }
        3 => {
            let s = r.str("string")?;
            oids.str(&s)
        }
        4 => oids.bool(r.u8("bool")? != 0),
        5 => oids.nil(),
        6 => {
            let f = get_term(r, oids)?;
            let n = r.len("id-term arity")?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(get_term(r, oids)?);
            }
            if !matches!(oids.get(f), OidData::Sym(_)) {
                return Err(corrupt("id-term functor"));
            }
            oids.func(f, &args)
        }
        _ => return Err(corrupt("term tag")),
    })
}

fn get_terms(r: &mut R<'_>, oids: &mut OidTable) -> StorageResult<Vec<Oid>> {
    let n = r.len("term count")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_term(r, oids)?);
    }
    Ok(out)
}

fn get_val(r: &mut R<'_>, oids: &mut OidTable) -> StorageResult<Val> {
    Ok(match r.u8("value tag")? {
        0 => Val::Scalar(get_term(r, oids)?),
        1 => {
            let n = r.len("set size")?;
            let mut s = std::collections::BTreeSet::new();
            for _ in 0..n {
                s.insert(get_term(r, oids)?);
            }
            Val::Set(s)
        }
        _ => return Err(corrupt("value tag")),
    })
}

fn get_key(r: &mut R<'_>, oids: &mut OidTable) -> StorageResult<(Oid, Oid, Vec<Oid>)> {
    let recv = get_term(r, oids)?;
    let method = get_term(r, oids)?;
    let args = get_terms(r, oids)?;
    Ok((recv, method, args))
}

fn get_sig(r: &mut R<'_>, oids: &mut OidTable) -> StorageResult<Signature> {
    let method = get_term(r, oids)?;
    let args = get_terms(r, oids)?;
    let result = get_term(r, oids)?;
    let set_valued = r.u8("set-valued flag")? != 0;
    Ok(Signature {
        method,
        args,
        result,
        set_valued,
    })
}

fn get_redo(r: &mut R<'_>, oids: &mut OidTable) -> StorageResult<RedoOp> {
    Ok(match r.u8("redo tag")? {
        0 => RedoOp::DefineClass {
            class: get_term(r, oids)?,
            supers: get_terms(r, oids)?,
        },
        1 => RedoOp::AddIsA {
            sub: get_term(r, oids)?,
            sup: get_term(r, oids)?,
        },
        2 => RedoOp::PutState {
            key: get_key(r, oids)?,
            val: get_val(r, oids)?,
        },
        3 => RedoOp::RemoveState {
            key: get_key(r, oids)?,
        },
        4 => RedoOp::AddIndividual(get_term(r, oids)?),
        5 => RedoOp::RemoveIndividual(get_term(r, oids)?),
        6 => RedoOp::AddMembership {
            o: get_term(r, oids)?,
            class: get_term(r, oids)?,
        },
        7 => RedoOp::RemoveMembership {
            o: get_term(r, oids)?,
            class: get_term(r, oids)?,
        },
        8 => RedoOp::AddMethodObject(get_term(r, oids)?),
        9 => RedoOp::AddSignature {
            class: get_term(r, oids)?,
            sig: get_sig(r, oids)?,
        },
        10 => RedoOp::SetResolution {
            class: get_term(r, oids)?,
            method: get_term(r, oids)?,
            from: get_term(r, oids)?,
        },
        _ => return Err(corrupt("redo tag")),
    })
}

/// Decodes a WAL record payload back into a [`CommitUnit`], interning
/// every mentioned OID into `oids`.
pub fn decode_commit(bytes: &[u8], oids: &mut OidTable) -> StorageResult<CommitUnit> {
    let mut r = R::new(bytes);
    let anon_counter = r.u64("anon counter")?;
    let n = r.len("entry count")?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(match r.u8("entry tag")? {
            0 => {
                let k = r.len("op count")?;
                let mut ops = Vec::with_capacity(k);
                for _ in 0..k {
                    ops.push(get_redo(&mut r, oids)?);
                }
                WalEntry::Ops(ops)
            }
            1 => WalEntry::Stmt(r.str("statement text")?),
            _ => return Err(corrupt("entry tag")),
        });
    }
    if !r.done() {
        return Err(corrupt("commit unit (trailing bytes)"));
    }
    Ok(CommitUnit {
        anon_counter,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb::Database;

    #[test]
    fn commit_unit_roundtrips_across_tables() {
        let mut db = Database::new();
        let person = db.define_class("Person", &[]).unwrap();
        let f = db.oids_mut().sym("spouse_of");
        let p = db.oids_mut().sym("pat");
        let idt = db.oids_mut().func(f, &[p]);
        let name = db.oids_mut().sym("Name");
        let v = db.oids_mut().str("Pat");
        let n = db.oids_mut().int(42);
        let unit = CommitUnit {
            anon_counter: 7,
            entries: vec![
                WalEntry::Ops(vec![
                    RedoOp::DefineClass {
                        class: person,
                        supers: vec![db.builtins().object],
                    },
                    RedoOp::AddIndividual(idt),
                    RedoOp::PutState {
                        key: (idt, name, vec![n]),
                        val: Val::set([v, n]),
                    },
                ]),
                WalEntry::Stmt("CREATE VIEW V AS SELECT X FROM Person X".into()),
            ],
        };
        let bytes = encode_commit(&unit, db.oids());
        // Decode into a *fresh* table: structural terms re-intern.
        let mut other = Database::new();
        let got = decode_commit(&bytes, other.oids_mut()).unwrap();
        assert_eq!(got.anon_counter, 7);
        assert_eq!(got.entries.len(), 2);
        match (&got.entries[0], &unit.entries[0]) {
            (WalEntry::Ops(a), WalEntry::Ops(b)) => assert_eq!(a.len(), b.len()),
            _ => panic!("entry kind mismatch"),
        }
        // The id-term decoded structurally: its rendering matches.
        match &got.entries[0] {
            WalEntry::Ops(ops) => match &ops[1] {
                RedoOp::AddIndividual(o) => {
                    assert_eq!(other.render(*o), "spouse_of(pat)");
                }
                other => panic!("unexpected op {other:?}"),
            },
            _ => unreachable!(),
        }
        assert_eq!(got.entries[1], unit.entries[1]);
    }

    #[test]
    fn truncated_payload_is_corrupt_not_panic() {
        let mut db = Database::new();
        let o = db.oids_mut().sym("x");
        let unit = CommitUnit {
            anon_counter: 0,
            entries: vec![WalEntry::Ops(vec![RedoOp::AddIndividual(o)])],
        };
        let bytes = encode_commit(&unit, db.oids());
        for cut in 0..bytes.len() {
            let mut t = Database::new();
            assert!(
                decode_commit(&bytes[..cut], t.oids_mut()).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let db = Database::new();
        let unit = CommitUnit::default();
        let mut bytes = encode_commit(&unit, db.oids());
        bytes.push(0);
        let mut t = Database::new();
        assert!(decode_commit(&bytes, t.oids_mut()).is_err());
    }
}
