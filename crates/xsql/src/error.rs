//! Error type for the XSQL language pipeline.

use oodb::DbError;
use std::fmt;

/// Errors from lexing, parsing, resolution, typing or evaluation of
/// XSQL statements.
#[derive(Debug, Clone, PartialEq)]
pub enum XsqlError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset in the source.
        offset: usize,
        /// Human-readable message.
        message: String,
    },
    /// Syntax error at a byte offset.
    Parse {
        /// Byte offset in the source.
        offset: usize,
        /// Human-readable message.
        message: String,
    },
    /// Static resolution error (sort clashes, unknown constructs).
    Resolve(String),
    /// A variable was used where a bound value was required (e.g. inside
    /// a comparison operand before any generator could bind it).
    Unbound(String),
    /// A path expression used in scalar context produced several values
    /// (§3.3 requires scalar path expressions in the SELECT list).
    NotScalar(String),
    /// Ill-defined object-creating query: the id-function assigned the
    /// same OID two conflicting descriptions (§4.1, "a run-time error").
    IllDefined(String),
    /// A view update could not be translated to a database update (no
    /// one-to-one correspondence, §4.2).
    ViewUpdate(String),
    /// The query failed the requested static typing discipline (§6.2).
    IllTyped(String),
    /// An aggregate/arithmetic operand was not numeric.
    NotNumeric(String),
    /// Error propagated from the database engine.
    Db(DbError),
    /// Evaluation exceeded the configured work limit (guards the naive
    /// engine on large domains).
    WorkLimit(u64),
}

impl XsqlError {
    pub(crate) fn lex(offset: usize, message: &str) -> Self {
        XsqlError::Lex {
            offset,
            message: message.to_string(),
        }
    }

    pub(crate) fn parse(offset: usize, message: impl Into<String>) -> Self {
        XsqlError::Parse {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for XsqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsqlError::Lex { offset, message } => {
                write!(f, "lexical error at byte {offset}: {message}")
            }
            XsqlError::Parse { offset, message } => {
                write!(f, "syntax error at byte {offset}: {message}")
            }
            XsqlError::Resolve(m) => write!(f, "resolution error: {m}"),
            XsqlError::Unbound(v) => write!(f, "variable `{v}` is not bound at its use site"),
            XsqlError::NotScalar(m) => {
                write!(f, "path expression is not scalar in scalar context: {m}")
            }
            XsqlError::IllDefined(m) => write!(f, "ill-defined query (run-time error): {m}"),
            XsqlError::ViewUpdate(m) => write!(f, "view update not translatable: {m}"),
            XsqlError::IllTyped(m) => write!(f, "query is not well-typed: {m}"),
            XsqlError::NotNumeric(m) => write!(f, "non-numeric operand: {m}"),
            XsqlError::Db(e) => write!(f, "database error: {e}"),
            XsqlError::WorkLimit(n) => write!(f, "evaluation exceeded work limit of {n} steps"),
        }
    }
}

impl std::error::Error for XsqlError {}

impl From<DbError> for XsqlError {
    fn from(e: DbError) -> Self {
        XsqlError::Db(e)
    }
}

/// Result alias for the XSQL pipeline.
pub type XsqlResult<T> = Result<T, XsqlError>;
