//! Error type for the XSQL language pipeline.

use oodb::DbError;
use std::fmt;

/// Errors from lexing, parsing, resolution, typing or evaluation of
/// XSQL statements.
#[derive(Debug, Clone, PartialEq)]
pub enum XsqlError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset in the source.
        offset: usize,
        /// 1-based source line (0 when no source was attached).
        line: usize,
        /// 1-based column in characters (0 when no source was attached).
        column: usize,
        /// Human-readable message.
        message: String,
    },
    /// Syntax error at a byte offset.
    Parse {
        /// Byte offset in the source.
        offset: usize,
        /// 1-based source line (0 when no source was attached).
        line: usize,
        /// 1-based column in characters (0 when no source was attached).
        column: usize,
        /// Human-readable message.
        message: String,
    },
    /// Static resolution error (sort clashes, unknown constructs).
    Resolve(String),
    /// A variable was used where a bound value was required (e.g. inside
    /// a comparison operand before any generator could bind it).
    Unbound(String),
    /// A path expression used in scalar context produced several values
    /// (§3.3 requires scalar path expressions in the SELECT list).
    NotScalar(String),
    /// Ill-defined object-creating query: the id-function assigned the
    /// same OID two conflicting descriptions (§4.1, "a run-time error").
    IllDefined(String),
    /// A view update could not be translated to a database update (no
    /// one-to-one correspondence, §4.2).
    ViewUpdate(String),
    /// The query failed the requested static typing discipline (§6.2).
    IllTyped(String),
    /// An aggregate/arithmetic operand was not numeric.
    NotNumeric(String),
    /// Error propagated from the database engine.
    Db(DbError),
    /// Evaluation exceeded the configured work limit (guards the naive
    /// engine on large domains).
    WorkLimit(u64),
    /// Evaluation exceeded a resource budget other than the work limit
    /// (path-recursion depth, materialized tuples, binding-set size —
    /// see [`crate::eval::EvalBudget`]). A runaway query degrades into
    /// this error instead of exhausting memory.
    Budget {
        /// Which budgeted resource was exhausted.
        resource: &'static str,
        /// The configured limit that was hit.
        limit: usize,
    },
    /// The statement was cancelled before completing: its deadline
    /// expired, its cancellation token was tripped, or a deterministic
    /// test harness injected a cancellation. The statement's implicit
    /// savepoint rolls every partial effect back, so cancellation is
    /// always clean — the database is bit-identical to the
    /// pre-statement state.
    Cancelled {
        /// User-facing description of why the statement was cancelled
        /// (e.g. "deadline of 250ms exceeded", "cancelled by client").
        reason: String,
    },
    /// A prior statement inside the open explicit transaction failed,
    /// poisoning the transaction: every further statement is rejected
    /// with this error until `ROLLBACK WORK` discards the transaction.
    TransactionPoisoned {
        /// Rendering of the error that poisoned the transaction.
        cause: String,
    },
    /// Error from the durable-storage layer (WAL append, checkpoint or
    /// recovery). A statement whose WAL flush fails is rolled back, so
    /// the in-memory database still matches what is on disk.
    Storage(String),
    /// The disk backing the store is out of space: the store is in
    /// read-only degraded mode. The failed statement was rolled back;
    /// reads keep working, and writes succeed again once space frees
    /// (the store probes automatically — no restart needed).
    DiskFull(String),
    /// A newer primary generation owns the store: this writer has been
    /// deposed (another replica was promoted) and must never extend
    /// the log. The failed statement was rolled back; the instance
    /// should rejoin the topology as a replica.
    Fenced {
        /// The newer generation observed in the shared manifest.
        observed: u64,
        /// This writer's own (stale) generation.
        own: u64,
    },
    /// An internal invariant was violated. Reaching this is a bug in the
    /// engine, but it is reported as an error rather than a panic so a
    /// malformed statement can never poison the hosting process.
    Internal(String),
}

impl XsqlError {
    pub(crate) fn lex(offset: usize, message: &str) -> Self {
        XsqlError::Lex {
            offset,
            line: 0,
            column: 0,
            message: message.to_string(),
        }
    }

    pub(crate) fn parse(offset: usize, message: impl Into<String>) -> Self {
        XsqlError::Parse {
            offset,
            line: 0,
            column: 0,
            message: message.into(),
        }
    }

    /// Fills the `line`/`column` of a [`XsqlError::Lex`] or
    /// [`XsqlError::Parse`] from its byte offset and the source text it
    /// was produced from. Other variants pass through unchanged. The
    /// statement entry points (`parse`, `parse_script`) apply this
    /// automatically.
    pub fn with_location(mut self, src: &str) -> Self {
        if let XsqlError::Lex {
            offset,
            line,
            column,
            ..
        }
        | XsqlError::Parse {
            offset,
            line,
            column,
            ..
        } = &mut self
        {
            let (l, c) = locate(src, *offset);
            *line = l;
            *column = c;
        }
        self
    }
}

/// 1-based (line, column) of a byte offset in `src`. Columns count
/// characters, not bytes; an offset past the end locates just after the
/// last character.
fn locate(src: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(src.len());
    let prefix = &src[..offset];
    let line = 1 + prefix.bytes().filter(|&b| b == b'\n').count();
    let line_start = prefix.rfind('\n').map_or(0, |p| p + 1);
    let column = 1 + prefix[line_start..].chars().count();
    (line, column)
}

impl fmt::Display for XsqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsqlError::Lex {
                offset,
                line,
                column,
                message,
            } => {
                if *line > 0 {
                    write!(
                        f,
                        "lexical error at line {line}, column {column}: {message}"
                    )
                } else {
                    write!(f, "lexical error at byte {offset}: {message}")
                }
            }
            XsqlError::Parse {
                offset,
                line,
                column,
                message,
            } => {
                if *line > 0 {
                    write!(f, "syntax error at line {line}, column {column}: {message}")
                } else {
                    write!(f, "syntax error at byte {offset}: {message}")
                }
            }
            XsqlError::Resolve(m) => write!(f, "resolution error: {m}"),
            XsqlError::Unbound(v) => write!(f, "variable `{v}` is not bound at its use site"),
            XsqlError::NotScalar(m) => {
                write!(f, "path expression is not scalar in scalar context: {m}")
            }
            XsqlError::IllDefined(m) => write!(f, "ill-defined query (run-time error): {m}"),
            XsqlError::ViewUpdate(m) => write!(f, "view update not translatable: {m}"),
            XsqlError::IllTyped(m) => write!(f, "query is not well-typed: {m}"),
            XsqlError::NotNumeric(m) => write!(f, "non-numeric operand: {m}"),
            XsqlError::Db(e) => write!(f, "database error: {e}"),
            XsqlError::WorkLimit(n) => write!(f, "evaluation exceeded work limit of {n} steps"),
            XsqlError::Budget { resource, limit } => {
                write!(f, "evaluation exceeded {resource} budget of {limit}")
            }
            XsqlError::Cancelled { reason } => {
                write!(f, "statement cancelled: {reason} (no changes were applied)")
            }
            XsqlError::TransactionPoisoned { cause } => write!(
                f,
                "transaction is poisoned by an earlier error ({cause}); \
                 run ROLLBACK WORK before issuing further statements"
            ),
            XsqlError::Storage(m) => write!(f, "storage error: {m}"),
            XsqlError::DiskFull(m) => write!(
                f,
                "disk full: {m} (store is read-only until space frees; \
                 the statement was rolled back)"
            ),
            XsqlError::Fenced { observed, own } => write!(
                f,
                "fenced: primary generation {observed} has superseded this \
                 writer's generation {own}; writes must go to the new primary \
                 (the statement was rolled back)"
            ),
            XsqlError::Internal(m) => write!(f, "internal error (engine bug): {m}"),
        }
    }
}

impl std::error::Error for XsqlError {}

impl From<DbError> for XsqlError {
    fn from(e: DbError) -> Self {
        XsqlError::Db(e)
    }
}

impl From<storage::StorageError> for XsqlError {
    fn from(e: storage::StorageError) -> Self {
        match e {
            storage::StorageError::DiskFull(m) => XsqlError::DiskFull(m),
            storage::StorageError::Fenced { observed, own } => XsqlError::Fenced { observed, own },
            other => XsqlError::Storage(other.to_string()),
        }
    }
}

/// Result alias for the XSQL pipeline.
pub type XsqlResult<T> = Result<T, XsqlError>;
