//! Abstract syntax of XSQL.
//!
//! The grammar covers everything the paper exhibits: extended path
//! expressions with ground/variable selectors and method expressions
//! (§3.1, §5), quantified and set comparators (§3.2), relation-producing
//! SELECT queries and the relational algebra over them (§3.3),
//! object-creating queries with `OID FUNCTION OF` and set-attribute
//! grouping (§4.1), views (§4.2), method definitions including update
//! methods (§5), and — as a flagged extension — the path variables the
//! paper sketches after query (3).
//!
//! Variable sorts follow §3.1: *individual* variables (`X`), *method*
//! variables (`"Y`), and *class* variables (`#X`, the paper's `§X`).

use std::fmt;

/// Sort of a variable (§3.1: "the variables can be of the following
/// variety: class-variables, method-variables, and individual-variables").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarSort {
    /// Ranges over ids of individual objects.
    Individual,
    /// Ranges over method-objects (attribute and method names).
    Method,
    /// Ranges over class-objects.
    Class,
}

impl fmt::Display for VarSort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VarSort::Individual => "individual",
            VarSort::Method => "method",
            VarSort::Class => "class",
        })
    }
}

/// A sorted variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Var {
    /// Variable name (without sort prefix).
    pub name: String,
    /// Sort of the variable.
    pub sort: VarSort,
}

impl Var {
    /// Individual variable.
    pub fn ind(name: &str) -> Var {
        Var {
            name: name.into(),
            sort: VarSort::Individual,
        }
    }
    /// Method variable (`"Y`).
    pub fn method(name: &str) -> Var {
        Var {
            name: name.into(),
            sort: VarSort::Method,
        }
    }
    /// Class variable (`#X`).
    pub fn class(name: &str) -> Var {
        Var {
            name: name.into(),
            sort: VarSort::Class,
        }
    }
}

/// An id-term (§4.2): an oid constant, a variable, or an id-function
/// application `f(t1,…,tk)`.
#[derive(Debug, Clone, PartialEq)]
pub enum IdTerm {
    /// A resolved, interned OID constant. Produced by the resolver; the
    /// parser never emits this variant.
    Oid(oodb::Oid),
    /// Symbolic oid (`mary123`, `uniSQL`, `Person`, `Residence`).
    Sym(String),
    /// Integer numeral object.
    Int(i64),
    /// Real numeral object.
    Real(f64),
    /// String object (`'newyork'`).
    Str(String),
    /// Boolean object.
    Bool(bool),
    /// The object `nil` (§5).
    Nil,
    /// Positional parameter `?n` (1-based) inside a `PREPARE`d
    /// statement body. The resolver leaves parameters untouched; the VM
    /// substitutes bound argument OIDs at `EXECUTE` time.
    Param(u32),
    /// A variable of any sort.
    Var(Var),
    /// Id-function application, e.g. `CompSalaries(Y, W)` (§4.2).
    Func(String, Vec<IdTerm>),
    /// A scalar path expression used where an id-term is expected, e.g.
    /// the argument `Y.Name` in `(MngrSalary @ Y.Name)` or
    /// `CompSalaries(X.Manufacturer, W)` in query (10). The paper treats
    /// these as shorthand — "it should be viewed as a shorthand for
    /// writing (MngrSalary @ Z) … and adding the path expression
    /// `Y.Name[Z]` to the WHERE clause" — and the resolver performs exactly
    /// that rewriting.
    PathArg(Box<PathExpr>),
}

impl IdTerm {
    /// True if the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            IdTerm::Var(_) => false,
            IdTerm::Func(_, args) => args.iter().all(IdTerm::is_ground),
            IdTerm::PathArg(_) => false,
            // A parameter denotes an unknown (though fixed) object until
            // EXECUTE binds it, so treat it like a variable.
            IdTerm::Param(_) => false,
            _ => true,
        }
    }
}

/// The method part of a step: a method/attribute name or a method
/// variable.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodTerm {
    /// Fixed method/attribute name.
    Name(String),
    /// Method variable (ranges over method-objects).
    Var(String),
}

/// One step of a path expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// `.(Mthd @ a1,…,ak)[sel]` — a method expression with optional
    /// selector (§5); attributes are the 0-ary case `.Attr[sel]` (§3.1).
    Method {
        /// Method name or method variable.
        method: MethodTerm,
        /// Argument id-terms (desugared: path arguments become fresh
        /// variables plus extra conjuncts, as the paper prescribes for
        /// `(MngrSalary @ Y.Name)`).
        args: Vec<IdTerm>,
        /// Optional selector `[sel]`.
        selector: Option<IdTerm>,
    },
    /// `.*P[sel]` — a *path variable* bound to a sequence of attributes;
    /// the extension sketched after query (3). Matches 0‥=`MAX` steps of
    /// scalar/set 0-ary methods.
    PathVar {
        /// Name of the path variable.
        name: String,
        /// Optional selector on the path's endpoint.
        selector: Option<IdTerm>,
    },
}

/// An extended path expression (2)/(11):
/// `selector.MthdEx1[sel1].….MthdExm[selm]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathExpr {
    /// The mandatory head selector (a ground id-term, a variable, or —
    /// with the §4.2 extension — any id-term).
    pub head: IdTerm,
    /// The steps; empty means the trivial path (a selector is a path).
    pub steps: Vec<Step>,
}

impl PathExpr {
    /// A trivial path consisting of just a head selector.
    pub fn atom(head: IdTerm) -> PathExpr {
        PathExpr {
            head,
            steps: Vec::new(),
        }
    }
}

/// Quantifier modifying one side of a comparator (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    /// Existential: at least one member stands in the relation.
    Some,
    /// Universal: every member stands in the relation.
    All,
}

/// Elementary comparators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Set comparators (§3.2: "standard set-comparators as contains,
/// containsEq, subset, subsetEq").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetCmpOp {
    /// Proper superset.
    Contains,
    /// Superset or equal.
    ContainsEq,
    /// Proper subset.
    Subset,
    /// Subset or equal.
    SubsetEq,
}

/// Aggregate functions (§3.2: sum, count, average …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Cardinality of the value set.
    Count,
    /// Sum of numeral members.
    Sum,
    /// Average of numeral members.
    Avg,
    /// Minimum numeral member.
    Min,
    /// Maximum numeral member.
    Max,
}

/// Arithmetic operators usable in operands (needed by `RaiseMngrSalary`'s
/// `(1 + W/100) * X.(MngrSalary @ Y.Name)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// An operand of a comparison: denotes a set of objects (path
/// expressions evaluate to their value set, §3.2) or a computed number.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A path expression; its value is the set of tails.
    Path(PathExpr),
    /// An aggregate applied to a path expression.
    Agg(AggFunc, PathExpr),
    /// An explicit set literal `{'blue','red'}`.
    SetLit(Vec<IdTerm>),
    /// A nested SELECT used as a set operand (query (13)); may be
    /// correlated with outer variables.
    Subquery(Box<SelectQuery>),
    /// Scalar arithmetic over operands.
    Arith(Box<Operand>, ArithOp, Box<Operand>),
    /// Union of two set operands (§3.2 "we can also apply union,
    /// intersection, and set-difference to path expressions").
    Union(Box<Operand>, Box<Operand>),
    /// Intersection of two set operands.
    Intersection(Box<Operand>, Box<Operand>),
    /// Set difference of two set operands.
    Difference(Box<Operand>, Box<Operand>),
}

/// A condition of the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// The empty condition (no WHERE clause).
    True,
    /// A stand-alone path expression: true iff its value is non-empty
    /// (§3.4).
    Path(PathExpr),
    /// A quantified comparison `left [q] op [q] right` (§3.2).
    Cmp {
        /// Left operand.
        left: Operand,
        /// Quantifier written before the comparator (applies to the left
        /// set); `None` defaults to `some`.
        lq: Option<Quant>,
        /// The comparator.
        op: CmpOp,
        /// Quantifier written after the comparator (applies to the right
        /// set); `None` defaults to `some`.
        rq: Option<Quant>,
        /// Right operand.
        right: Operand,
    },
    /// A set comparison `left contains right` etc.
    SetCmp {
        /// Left operand.
        left: Operand,
        /// The set comparator.
        op: SetCmpOp,
        /// Right operand.
        right: Operand,
    },
    /// `sub subclassOf sup` — the *strict* schema predicate of query (4).
    SubclassOf {
        /// Subclass term.
        sub: IdTerm,
        /// Superclass term.
        sup: IdTerm,
    },
    /// `obj instanceOf class` — companion schema predicate (the FROM
    /// clause is its implicit form: `FROM C X` ranges X over C).
    InstanceOf {
        /// Object term.
        obj: IdTerm,
        /// Class term.
        class: IdTerm,
    },
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
    /// A nested UPDATE used as a conjunct inside a method body (§5);
    /// "an UPDATE clause evaluates to true if and only if the update was
    /// successful", conjuncts evaluated left-to-right.
    Update(UpdateStmt),
}

/// One binding of the FROM clause, `FROM Class X`. The class position
/// may itself be a class variable (`FROM #X Y`, the query template of
/// §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// The range: a class name or a class variable.
    pub class: IdTerm,
    /// The bound variable.
    pub var: Var,
}

/// A target-list item of the SELECT clause.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A scalar path expression / operand (§3.3): one output column.
    Expr(Operand),
    /// `Attr = expr` — explicit attribute naming used by object-creating
    /// queries and views (§4.1).
    Named {
        /// Attribute name in the created objects.
        attr: String,
        /// The value expression.
        value: SelectValue,
    },
    /// `(Mthd @ a1,…,ak) = expr` inside a method definition (§5).
    MethodResult {
        /// Name of the method being defined.
        method: String,
        /// The formal argument terms.
        args: Vec<IdTerm>,
        /// The result expression (e.g. `W`, or `nil` for update methods).
        value: Operand,
    },
}

/// Value shape of a named SELECT item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectValue {
    /// An operand evaluated per satisfying binding.
    Expr(Operand),
    /// `{W}` — the set of all `W` satisfying the WHERE clause for the
    /// fixed OID-function arguments (query (8); plays the role of SQL's
    /// GROUP BY, as the paper notes).
    Grouped(Var),
}

/// The `OID FUNCTION OF X,W` clause (§4.1) or its abbreviation `OID X`
/// (§5).
#[derive(Debug, Clone, PartialEq)]
pub struct OidSpec {
    /// Explicit id-function name; queries leave it anonymous (the engine
    /// generates one), views use the view name (§4.2).
    pub function: Option<String>,
    /// The variables the id-function depends on.
    pub vars: Vec<Var>,
}

/// A SELECT query (§3.3, §4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// Target list.
    pub select: Vec<SelectItem>,
    /// FROM bindings.
    pub from: Vec<FromItem>,
    /// Optional object-creating clause.
    pub oid_fn: Option<OidSpec>,
    /// The WHERE condition (`Cond::True` when absent).
    pub where_clause: Cond,
}

/// A signature declaration, e.g. `MngrSalary : String => Numeral` or
/// `CompName => String` (0-ary).
#[derive(Debug, Clone, PartialEq)]
pub struct SigDecl {
    /// Method name.
    pub method: String,
    /// Argument class names.
    pub args: Vec<String>,
    /// Result class name.
    pub result: String,
    /// True for `=>>` (set-valued).
    pub set_valued: bool,
}

/// `CREATE VIEW name AS SUBCLASS OF cls SIGNATURE … SELECT …` (§4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct CreateView {
    /// View (class) name; doubles as the id-function name.
    pub name: String,
    /// Superclass of the new view class.
    pub superclass: String,
    /// Attribute signatures of the view.
    pub signature: Vec<SigDecl>,
    /// The defining query; must carry an `OID FUNCTION OF` clause.
    pub query: SelectQuery,
}

/// `ALTER CLASS c ADD SIGNATURE … SELECT (M @ …) = … OID X WHERE …`
/// (§5, queries (12) and `RaiseMngrSalary`).
#[derive(Debug, Clone, PartialEq)]
pub struct AlterClass {
    /// The class whose definition is extended.
    pub class: String,
    /// The added signature.
    pub signature: SigDecl,
    /// The defining query (its single SELECT item is
    /// [`SelectItem::MethodResult`]; `oid_fn.vars` holds the self
    /// variable from the abbreviated `OID X` clause).
    pub query: SelectQuery,
}

/// One assignment of an UPDATE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Path whose final step designates the attribute to write.
    pub target: PathExpr,
    /// New value.
    pub value: Operand,
}

/// `UPDATE CLASS c SET path = expr, …` (§5).
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    /// The class the update is declared against.
    pub class: String,
    /// The assignments, applied to every binding satisfying the paths.
    pub assignments: Vec<Assignment>,
}

/// Relational algebra connective between whole queries (§3.3 "relations
/// computed by queries can be manipulated by relational algebra
/// operators").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    /// UNION
    Union,
    /// MINUS
    Minus,
    /// INTERSECT
    Intersect,
}

/// `CREATE CLASS name [AS SUBCLASS OF A, B]` — engineering extension:
/// the paper defines schemas in its data model; this surfaces class
/// definition in the language so an XSQL session is self-sufficient.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateClass {
    /// New class name.
    pub name: String,
    /// Superclass names (empty: directly under `Object`).
    pub supers: Vec<String>,
}

/// `CREATE OBJECT name CLASS c1, c2 [SET attr = expr, …]` — engineering
/// extension creating a named individual with initial attribute values.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateObject {
    /// Symbolic OID of the new individual.
    pub name: String,
    /// Classes the individual belongs to.
    pub classes: Vec<String>,
    /// Initial attribute assignments.
    pub sets: Vec<(String, Operand)>,
}

/// A top-level XSQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A SELECT (possibly object-creating) query.
    Select(SelectQuery),
    /// `q1 UNION q2`, `q1 MINUS q2`, `q1 INTERSECT q2`.
    RelOp {
        /// Left query.
        left: Box<Stmt>,
        /// Connective.
        op: RelOp,
        /// Right query.
        right: Box<Stmt>,
    },
    /// View creation.
    CreateView(CreateView),
    /// Method definition.
    AlterClass(AlterClass),
    /// Pure signature declaration: `ALTER CLASS c ADD SIGNATURE decl`
    /// with no defining SELECT (the attribute declarations of §2).
    AddSignature {
        /// The class being extended.
        class: String,
        /// The declared signature.
        signature: SigDecl,
    },
    /// Stand-alone update.
    Update(UpdateStmt),
    /// Class definition (extension).
    CreateClass(CreateClass),
    /// Individual creation (extension).
    CreateObject(CreateObject),
    /// `EXPLAIN [ANALYZE] <select>`. Plain `EXPLAIN` produces the §6
    /// typing analysis report plus the static plan without running the
    /// query; `EXPLAIN ANALYZE` additionally executes it and reports
    /// the measured execution profile. Only SELECT statements may be
    /// explained — the parser rejects anything else with a span error.
    Explain {
        /// True for `EXPLAIN ANALYZE` (run the query, profile it).
        analyze: bool,
        /// The SELECT being explained.
        stmt: Box<Stmt>,
    },
    /// `STATS` — render the session's telemetry registry (metric
    /// exposition; engineering extension, see docs/OBSERVABILITY.md).
    Stats,
    /// `BEGIN [WORK]` — open an explicit transaction (engineering
    /// extension; the paper's model has no transactions, but a
    /// production engine needs statement grouping).
    Begin,
    /// `COMMIT [WORK]` — make the open transaction permanent.
    Commit,
    /// `ROLLBACK [WORK]` — undo the open transaction back to its
    /// `BEGIN`.
    Rollback,
    /// `WAL ON` — enable write-ahead logging on the session's store
    /// (engineering extension; forces a checkpoint first so the log
    /// never has a gap).
    WalOn,
    /// `WAL OFF` — disable write-ahead logging (later statements are
    /// not durable until the next checkpoint).
    WalOff,
    /// `CHECKPOINT` — write a snapshot of the database to the store and
    /// truncate the WAL.
    Checkpoint,
    /// `PREPARE name AS <stmt>` — compile a statement (which may
    /// contain `?1`-style positional parameters) once and register it
    /// under `name` in the session (engineering extension; see
    /// docs/VM.md). Prepared statements are session-local and are not
    /// logged to the WAL: after a crash the client must re-PREPARE.
    Prepare {
        /// The registration name.
        name: String,
        /// The statement body (parsed, unresolved).
        stmt: Box<Stmt>,
    },
    /// `EXECUTE name (a1, …, ak)` — run a prepared statement with the
    /// given ground argument terms bound to `?1…?k`.
    Execute {
        /// The registration name.
        name: String,
        /// Ground argument terms, positionally bound to `?1…?k`.
        args: Vec<IdTerm>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idterm_groundness() {
        assert!(IdTerm::Sym("uniSQL".into()).is_ground());
        assert!(!IdTerm::Var(Var::ind("X")).is_ground());
        assert!(!IdTerm::Func(
            "CompSalaries".into(),
            vec![IdTerm::Var(Var::ind("Y")), IdTerm::Int(3)]
        )
        .is_ground());
        assert!(IdTerm::Func("secretary".into(), vec![IdTerm::Sym("dept77".into())]).is_ground());
    }

    #[test]
    fn trivial_path_is_selector() {
        let p = PathExpr::atom(IdTerm::Int(20));
        assert!(p.steps.is_empty());
    }
}
