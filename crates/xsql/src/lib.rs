//! # xsql — the query language of the SIGMOD'92 paper
//!
//! Parser, resolver, evaluator and typing system for XSQL, the
//! object-oriented query language of *Kifer, Kim & Sagiv, "Querying
//! Object-Oriented Databases" (SIGMOD 1992)*.
//!
//! The front door is [`Session`]:
//!
//! ```
//! use oodb::Database;
//! use xsql::{Outcome, Session};
//!
//! let mut s = Session::new(Database::new());
//! s.run_script(
//!     "CREATE CLASS Person;
//!      ALTER CLASS Person ADD SIGNATURE Name => String;
//!      ALTER CLASS Person ADD SIGNATURE Age => Numeral;
//!      CREATE OBJECT ada CLASS Person SET Name = 'Ada', Age = 36;",
//! )?;
//! let answer = s.query("SELECT X FROM Person X WHERE X.Age > 30")?;
//! assert_eq!(answer.len(), 1);
//!
//! // The §6 typing system, via EXPLAIN:
//! let Outcome::Explained { report } =
//!     s.run("EXPLAIN SELECT X FROM Person X WHERE X.Age > 30")?
//! else { unreachable!() };
//! assert!(report.contains("strictly well-typed"));
//! # Ok::<(), xsql::XsqlError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod error;
mod lexer;
mod parser;
mod resolve;
pub mod token;

pub use dump::dump_script;
pub use error::{XsqlError, XsqlResult};
pub use eval::{
    eval_select, eval_select_ranged, CancelFlag, EvalBudget, EvalOptions, Ranges, Strategy,
};
pub use lexer::lex;
pub use parser::{parse, parse_script};
pub use resolve::resolve_stmt;
pub use session::{Outcome, RecoveryInfo, Session};
pub use unparse::{unparse_query, unparse_stmt};
mod dump;
pub mod eval;
pub mod plan;
mod session;
pub mod typing;
mod unparse;
pub mod vm;
