//! Lexer for the XSQL surface syntax.
//!
//! Notable conventions, all taken from the paper's own notation:
//! strings are single-quoted (`'newyork'`, doubled quote escapes);
//! method variables are prefixed with a double-quote (`"Y`, §3.1);
//! class variables with `#` (the paper's `§`, which we also accept);
//! `--` starts a line comment. Keywords are matched case-insensitively
//! by the parser, the lexer only produces `Ident`.

use crate::error::XsqlError;
use crate::token::{Token, TokenKind};

/// Lexes a complete source string into tokens (with a trailing `Eof`).
pub fn lex(src: &str) -> Result<Vec<Token>, XsqlError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(XsqlError::lex(start, "unterminated string literal"));
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Strings may contain arbitrary UTF-8.
                            let ch = src[i..].chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                toks.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            b'"' => {
                let start = i;
                i += 1;
                let (name, j) = take_ident(src, i)
                    .ok_or_else(|| XsqlError::lex(start, "expected identifier after `\"`"))?;
                i = j;
                toks.push(Token {
                    kind: TokenKind::MethodVar(name),
                    offset: start,
                });
            }
            b'#' => {
                let start = i;
                i += 1;
                let (name, j) = take_ident(src, i)
                    .ok_or_else(|| XsqlError::lex(start, "expected identifier after `#`"))?;
                i = j;
                toks.push(Token {
                    kind: TokenKind::ClassVar(name),
                    offset: start,
                });
            }
            b'?' => {
                let start = i;
                i += 1;
                let ds = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if ds == i {
                    return Err(XsqlError::lex(
                        start,
                        "expected parameter number after `?` (e.g. `?1`)",
                    ));
                }
                let n: u32 = src[ds..i]
                    .parse()
                    .map_err(|_| XsqlError::lex(start, "parameter number out of range"))?;
                if n == 0 {
                    return Err(XsqlError::lex(start, "parameters are numbered from ?1"));
                }
                toks.push(Token {
                    kind: TokenKind::Param(n),
                    offset: start,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_real =
                    i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit();
                if is_real {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v: f64 = src[start..i]
                        .parse()
                        .map_err(|_| XsqlError::lex(start, "malformed real literal"))?;
                    toks.push(Token {
                        kind: TokenKind::Real(v),
                        offset: start,
                    });
                } else {
                    let v: i64 = src[start..i]
                        .parse()
                        .map_err(|_| XsqlError::lex(start, "integer literal out of range"))?;
                    toks.push(Token {
                        kind: TokenKind::Int(v),
                        offset: start,
                    });
                }
            }
            _ => {
                // Multi-char operators first.
                let start = i;
                let rest = &src[i..];
                let two = |t: TokenKind, toks: &mut Vec<Token>, i: &mut usize, n: usize| {
                    toks.push(Token {
                        kind: t,
                        offset: start,
                    });
                    *i += n;
                };
                if rest.starts_with("=>>") || rest.starts_with("==>") {
                    two(TokenKind::SetArrow, &mut toks, &mut i, 3);
                } else if rest.starts_with("=>") {
                    two(TokenKind::Arrow, &mut toks, &mut i, 2);
                } else if rest.starts_with("!=") || rest.starts_with("<>") {
                    two(TokenKind::Ne, &mut toks, &mut i, 2);
                } else if rest.starts_with("<=") {
                    two(TokenKind::Le, &mut toks, &mut i, 2);
                } else if rest.starts_with(">=") {
                    two(TokenKind::Ge, &mut toks, &mut i, 2);
                } else if rest.starts_with('§') {
                    // The paper's class-variable sigil.
                    let n = '§'.len_utf8();
                    let (name, j) = take_ident(src, i + n)
                        .ok_or_else(|| XsqlError::lex(start, "expected identifier after `§`"))?;
                    i = j;
                    toks.push(Token {
                        kind: TokenKind::ClassVar(name),
                        offset: start,
                    });
                } else if let Some((name, j)) = take_ident(src, i) {
                    i = j;
                    toks.push(Token {
                        kind: TokenKind::Ident(name),
                        offset: start,
                    });
                } else {
                    let kind = match c {
                        b'.' => TokenKind::Dot,
                        b',' => TokenKind::Comma,
                        b';' => TokenKind::Semi,
                        b':' => TokenKind::Colon,
                        b'(' => TokenKind::LParen,
                        b')' => TokenKind::RParen,
                        b'[' => TokenKind::LBracket,
                        b']' => TokenKind::RBracket,
                        b'{' => TokenKind::LBrace,
                        b'}' => TokenKind::RBrace,
                        b'@' => TokenKind::At,
                        b'=' => TokenKind::Eq,
                        b'<' => TokenKind::Lt,
                        b'>' => TokenKind::Gt,
                        b'+' => TokenKind::Plus,
                        b'-' => TokenKind::Minus,
                        b'*' => TokenKind::Star,
                        b'/' => TokenKind::Slash,
                        _ => {
                            return Err(XsqlError::lex(
                                i,
                                &format!(
                                    "unexpected character `{}`",
                                    &src[i..].chars().next().unwrap()
                                ),
                            ))
                        }
                    };
                    toks.push(Token { kind, offset: i });
                    i += 1;
                }
            }
        }
    }
    toks.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(toks)
}

/// Reads an identifier `[A-Za-z_][A-Za-z0-9_]*` starting at byte `i`.
fn take_ident(src: &str, i: usize) -> Option<(String, usize)> {
    let bytes = src.as_bytes();
    let c = *bytes.get(i)?;
    if !(c.is_ascii_alphabetic() || c == b'_') {
        return None;
    }
    let mut j = i + 1;
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    Some((src[i..j].to_string(), j))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_paper_query_1() {
        let k = kinds("mary123.Residence.City");
        assert_eq!(
            k,
            vec![
                T::Ident("mary123".into()),
                T::Dot,
                T::Ident("Residence".into()),
                T::Dot,
                T::Ident("City".into()),
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_strings_and_selectors() {
        let k = kinds("X.Residence[Y].City['newyork']");
        assert!(k.contains(&T::Str("newyork".into())));
        assert!(k.contains(&T::LBracket));
    }

    #[test]
    fn string_escape() {
        let k = kinds("'it''s'");
        assert_eq!(k[0], T::Str("it's".into()));
    }

    #[test]
    fn method_and_class_vars() {
        assert_eq!(kinds("X.\"Y.City")[2], T::MethodVar("Y".into()));
        assert_eq!(kinds("#X")[0], T::ClassVar("X".into()));
        assert_eq!(kinds("§X")[0], T::ClassVar("X".into()));
    }

    #[test]
    fn arrows_and_comparators() {
        assert_eq!(kinds("=>")[0], T::Arrow);
        assert_eq!(kinds("=>>")[0], T::SetArrow);
        assert_eq!(kinds("==>")[0], T::SetArrow);
        assert_eq!(kinds("!=")[0], T::Ne);
        assert_eq!(kinds("<>")[0], T::Ne);
        assert_eq!(kinds("<=")[0], T::Le);
        assert_eq!(kinds(">=")[0], T::Ge);
        assert_eq!(kinds("=")[0], T::Eq);
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("35000")[0], T::Int(35000));
        assert_eq!(kinds("3.5")[0], T::Real(3.5));
        // A dot not followed by a digit is a path dot, not a decimal.
        let k = kinds("20.Age");
        assert_eq!(k[0], T::Int(20));
        assert_eq!(k[1], T::Dot);
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("SELECT X -- the answer\nFROM Person X");
        assert_eq!(k[0], T::Ident("SELECT".into()));
        assert!(!k.iter().any(|t| matches!(t, T::Ident(s) if s == "answer")));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'abc").is_err());
    }

    #[test]
    fn params() {
        assert_eq!(kinds("?1")[0], T::Param(1));
        assert_eq!(kinds("?42")[0], T::Param(42));
        assert!(lex("?").is_err());
        assert!(lex("?0").is_err());
    }

    #[test]
    fn method_expression_tokens() {
        let k = kinds("X.(MngrSalary @ Y)[W]");
        assert!(k.contains(&T::At));
        assert!(k.contains(&T::LParen));
    }
}
