//! Recursive-descent parser for XSQL.
//!
//! Produces the [`crate::ast`] representation. Bare identifiers are
//! parsed as symbols; the resolver (`resolve` module) later reclassifies
//! those that denote variables, because the rule — FROM-clause binders
//! plus the paper's single-uppercase-letter convention — needs the whole
//! statement. Keywords are case-insensitive, identifiers are not.

use crate::ast::*;
use crate::error::{XsqlError, XsqlResult};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses one XSQL statement. Lex/parse errors carry a line/column
/// location computed from the source.
pub fn parse(src: &str) -> XsqlResult<Stmt> {
    parse_inner(src).map_err(|e| e.with_location(src))
}

fn parse_inner(src: &str) -> XsqlResult<Stmt> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let stmt = p.stmt()?;
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a script: statements separated by `;`. Lex/parse errors carry
/// a line/column location computed from the source.
pub fn parse_script(src: &str) -> XsqlResult<Vec<Stmt>> {
    parse_script_inner(src).map_err(|e| e.with_location(src))
}

fn parse_script_inner(src: &str) -> XsqlResult<Vec<Stmt>> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semi) {}
        if matches!(p.peek(), TokenKind::Eof) {
            break;
        }
        out.push(p.stmt()?);
    }
    Ok(out)
}

const RESERVED: &[&str] = &[
    // `function` is deliberately NOT reserved: Figure 1 itself declares
    // a `Function` attribute; the keyword is only recognized right after
    // OID, where no identifier can occur.
    "select",
    "from",
    "where",
    "and",
    "or",
    "not",
    "oid",
    "of",
    "create",
    "view",
    "as",
    "subclass",
    "alter",
    "class",
    "add",
    "signature",
    "update",
    "set",
    "union",
    "minus",
    "intersect",
    "except",
    "some",
    "all",
    "contains",
    "containseq",
    "subset",
    "subseteq",
    "subclassof",
    "instanceof",
    "count",
    "sum",
    "avg",
    "min",
    "max",
    "nil",
    "true",
    "false",
    "explain",
];

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, k: &TokenKind) -> bool {
        if self.peek() == k {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, k: TokenKind) -> XsqlResult<()> {
        if self.peek() == &k {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {k}, found {}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> XsqlResult<()> {
        self.eat(&TokenKind::Semi);
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {}", self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> XsqlError {
        XsqlError::parse(self.offset(), msg)
    }

    /// True if the current token is the case-insensitive keyword `kw`.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> XsqlResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword `{kw}`, found {}", self.peek())))
        }
    }

    /// An identifier that is not a reserved word.
    fn ident(&mut self) -> XsqlResult<String> {
        match self.peek() {
            TokenKind::Ident(s) if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            t => Err(self.err(format!("expected identifier, found {t}"))),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmt(&mut self) -> XsqlResult<Stmt> {
        if self.eat_kw("explain") {
            let analyze = self.eat_kw("analyze");
            let inner_at = self.offset();
            let inner = self.stmt()?;
            // EXPLAIN applies to queries only; explaining a DDL,
            // update or transaction-control statement is an error at
            // the inner statement's position, never a silent no-op.
            // A UNION/MINUS/INTERSECT combination is rejected too: the
            // typing report and the profile collector both work on a
            // single SELECT.
            return match inner {
                Stmt::Select(_) => Ok(Stmt::Explain {
                    analyze,
                    stmt: Box::new(inner),
                }),
                Stmt::RelOp { .. } => Err(XsqlError::parse(
                    inner_at,
                    "EXPLAIN applies to a single SELECT query, not a \
                     UNION/MINUS/INTERSECT combination",
                )),
                _ => Err(XsqlError::parse(
                    inner_at,
                    "EXPLAIN applies to SELECT queries only",
                )),
            };
        }
        // `STATS` renders the telemetry registry (contextual keyword,
        // statement-initial position only).
        if self.eat_kw("stats") {
            return Ok(Stmt::Stats);
        }
        // Transaction control. `begin`/`commit`/`rollback`/`work` are
        // recognized contextually (statement-initial position only) so
        // they stay usable as identifiers elsewhere.
        if self.eat_kw("begin") {
            self.eat_kw("work");
            return Ok(Stmt::Begin);
        }
        if self.eat_kw("commit") {
            self.eat_kw("work");
            return Ok(Stmt::Commit);
        }
        if self.eat_kw("rollback") {
            self.eat_kw("work");
            return Ok(Stmt::Rollback);
        }
        // Storage control (same contextual-keyword treatment): `WAL ON`,
        // `WAL OFF`, `CHECKPOINT`.
        if self.at_kw("wal") {
            self.bump();
            if self.eat_kw("on") {
                return Ok(Stmt::WalOn);
            }
            if self.eat_kw("off") {
                return Ok(Stmt::WalOff);
            }
            return Err(self.err("expected ON or OFF after WAL"));
        }
        if self.eat_kw("checkpoint") {
            return Ok(Stmt::Checkpoint);
        }
        // Prepared statements (contextual keywords, statement-initial):
        // `PREPARE name AS <stmt>` / `EXECUTE name (a1, …, ak)`.
        if self.at_kw("prepare") && matches!(self.peek2(), TokenKind::Ident(_)) {
            self.bump();
            let name = self.ident()?;
            self.expect_kw("as")?;
            let inner_at = self.offset();
            let inner = self.stmt()?;
            return match inner {
                Stmt::Prepare { .. } | Stmt::Execute { .. } => Err(XsqlError::parse(
                    inner_at,
                    "a prepared statement cannot itself be PREPARE or EXECUTE",
                )),
                Stmt::Explain { .. } => Err(XsqlError::parse(
                    inner_at,
                    "EXPLAIN cannot be prepared; prepare the SELECT itself",
                )),
                _ => Ok(Stmt::Prepare {
                    name,
                    stmt: Box::new(inner),
                }),
            };
        }
        if self.at_kw("execute") && matches!(self.peek2(), TokenKind::Ident(_)) {
            self.bump();
            let name = self.ident()?;
            let mut args = Vec::new();
            if self.eat(&TokenKind::LParen) {
                if !matches!(self.peek(), TokenKind::RParen) {
                    args.push(self.idterm()?);
                    while self.eat(&TokenKind::Comma) {
                        args.push(self.idterm()?);
                    }
                }
                self.expect(TokenKind::RParen)?;
            }
            return Ok(Stmt::Execute { name, args });
        }
        if self.at_kw("create") {
            return match self.peek2() {
                TokenKind::Ident(k) if k.eq_ignore_ascii_case("class") => self.create_class(),
                TokenKind::Ident(k) if k.eq_ignore_ascii_case("object") => self.create_object(),
                _ => Ok(Stmt::CreateView(self.create_view()?)),
            };
        }
        if self.at_kw("alter") {
            return self.alter_class();
        }
        if self.at_kw("update") {
            return Ok(Stmt::Update(self.update_stmt()?));
        }
        let mut left = Stmt::Select(self.select_query()?);
        loop {
            let op = if self.eat_kw("union") {
                RelOp::Union
            } else if self.eat_kw("minus") || self.eat_kw("except") {
                RelOp::Minus
            } else if self.eat_kw("intersect") {
                RelOp::Intersect
            } else {
                break;
            };
            let right = if self.eat(&TokenKind::LParen) {
                let s = self.stmt()?;
                self.expect(TokenKind::RParen)?;
                s
            } else {
                Stmt::Select(self.select_query()?)
            };
            left = Stmt::RelOp {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn select_query(&mut self) -> XsqlResult<SelectQuery> {
        self.expect_kw("select")?;
        let mut select = vec![self.select_item()?];
        while self.eat(&TokenKind::Comma) {
            select.push(self.select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            from.push(self.from_item()?);
            while self.eat(&TokenKind::Comma) {
                from.push(self.from_item()?);
            }
        }
        let oid_fn = if self.eat_kw("oid") {
            Some(self.oid_spec()?)
        } else {
            None
        };
        let where_clause = if self.eat_kw("where") {
            self.cond()?
        } else {
            Cond::True
        };
        Ok(SelectQuery {
            select,
            from,
            oid_fn,
            where_clause,
        })
    }

    fn select_item(&mut self) -> XsqlResult<SelectItem> {
        // `(M @ args) = expr` — method-result item of a method definition.
        if matches!(self.peek(), TokenKind::LParen) && matches!(self.peek2(), TokenKind::Ident(_)) {
            let save = self.pos;
            self.bump(); // (
            if let Ok(name) = self.ident() {
                if self.eat(&TokenKind::At) {
                    let mut args = Vec::new();
                    if !matches!(self.peek(), TokenKind::RParen) {
                        args.push(self.idterm_or_patharg()?);
                        while self.eat(&TokenKind::Comma) {
                            args.push(self.idterm_or_patharg()?);
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    self.expect(TokenKind::Eq)?;
                    let value = self.operand()?;
                    return Ok(SelectItem::MethodResult {
                        method: name,
                        args,
                        value,
                    });
                }
            }
            self.pos = save;
        }
        // `Attr = expr` or `Attr = {W}` — named item.
        if let TokenKind::Ident(name) = self.peek() {
            let is_named = !RESERVED.contains(&name.to_ascii_lowercase().as_str())
                && matches!(self.peek2(), TokenKind::Eq);
            if is_named {
                let attr = self.ident()?;
                self.expect(TokenKind::Eq)?;
                if self.eat(&TokenKind::LBrace) {
                    let v = self.plain_var()?;
                    self.expect(TokenKind::RBrace)?;
                    return Ok(SelectItem::Named {
                        attr,
                        value: SelectValue::Grouped(v),
                    });
                }
                let value = self.operand()?;
                return Ok(SelectItem::Named {
                    attr,
                    value: SelectValue::Expr(value),
                });
            }
        }
        Ok(SelectItem::Expr(self.operand()?))
    }

    /// A bare variable token in a position that must be a variable
    /// (e.g. inside `{W}` or in OID/FROM clauses).
    fn plain_var(&mut self) -> XsqlResult<Var> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(Var::ind(&s)),
            TokenKind::MethodVar(s) => Ok(Var::method(&s)),
            TokenKind::ClassVar(s) => Ok(Var::class(&s)),
            t => Err(self.err(format!("expected variable, found {t}"))),
        }
    }

    #[allow(clippy::wrong_self_convention)] // parses a FROM-clause item
    fn from_item(&mut self) -> XsqlResult<FromItem> {
        let class = match self.bump() {
            TokenKind::Ident(s) => IdTerm::Sym(s),
            TokenKind::ClassVar(s) => IdTerm::Var(Var::class(&s)),
            t => return Err(self.err(format!("expected class name or class variable, found {t}"))),
        };
        let var = self.plain_var()?;
        Ok(FromItem { class, var })
    }

    fn oid_spec(&mut self) -> XsqlResult<OidSpec> {
        // `OID FUNCTION OF X,W` — full form; `OID X` — abbreviation (§5).
        if self.eat_kw("function") {
            self.expect_kw("of")?;
        }
        let mut vars = vec![self.plain_var()?];
        while self.eat(&TokenKind::Comma) {
            vars.push(self.plain_var()?);
        }
        Ok(OidSpec {
            function: None,
            vars,
        })
    }

    // ------------------------------------------------------------------
    // Conditions
    // ------------------------------------------------------------------

    fn cond(&mut self) -> XsqlResult<Cond> {
        let mut left = self.and_cond()?;
        while self.eat_kw("or") {
            let right = self.and_cond()?;
            left = Cond::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_cond(&mut self) -> XsqlResult<Cond> {
        let mut left = self.unary_cond()?;
        while self.eat_kw("and") {
            let right = self.unary_cond()?;
            left = Cond::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_cond(&mut self) -> XsqlResult<Cond> {
        if self.eat_kw("not") {
            let inner = self.unary_cond()?;
            return Ok(Cond::Not(Box::new(inner)));
        }
        if self.at_kw("update") {
            return Ok(Cond::Update(self.update_stmt()?));
        }
        // `( cond )` vs an operand starting with `(` — try the
        // parenthesized condition first and backtrack on failure.
        if matches!(self.peek(), TokenKind::LParen) && !self.subquery_ahead() {
            let save = self.pos;
            self.bump();
            if let Ok(c) = self.cond() {
                if self.eat(&TokenKind::RParen) {
                    // Only accept if it was genuinely a condition — a
                    // lone path would also parse, which is harmless
                    // (same semantics), but a follow-up comparator means
                    // the parens belonged to an operand.
                    if !self.comparator_ahead() && !self.arith_ahead() {
                        return Ok(c);
                    }
                }
            }
            self.pos = save;
        }
        self.atom_cond()
    }

    fn subquery_ahead(&self) -> bool {
        matches!(self.peek(), TokenKind::LParen)
            && matches!(self.peek2(), TokenKind::Ident(s) if s.eq_ignore_ascii_case("select"))
    }

    fn comparator_ahead(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Eq
                | TokenKind::Ne
                | TokenKind::Lt
                | TokenKind::Le
                | TokenKind::Gt
                | TokenKind::Ge
        ) || self.at_kw("some")
            || self.at_kw("all")
            || self.at_kw("contains")
            || self.at_kw("containseq")
            || self.at_kw("subset")
            || self.at_kw("subseteq")
    }

    fn arith_ahead(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Plus | TokenKind::Minus | TokenKind::Star | TokenKind::Slash
        )
    }

    fn atom_cond(&mut self) -> XsqlResult<Cond> {
        let left = self.operand()?;
        // Schema predicates `subclassOf` / `instanceOf` take id-terms.
        if self.at_kw("subclassof") || self.at_kw("instanceof") {
            let is_sub = self.at_kw("subclassof");
            self.bump();
            let lterm = operand_as_idterm(&left)
                .ok_or_else(|| self.err("left side of subclassOf/instanceOf must be an id-term"))?;
            let rterm = {
                let right = self.operand()?;
                operand_as_idterm(&right).ok_or_else(|| {
                    self.err("right side of subclassOf/instanceOf must be an id-term")
                })?
            };
            return Ok(if is_sub {
                Cond::SubclassOf {
                    sub: lterm,
                    sup: rterm,
                }
            } else {
                Cond::InstanceOf {
                    obj: lterm,
                    class: rterm,
                }
            });
        }
        // Set comparators.
        for (kw, op) in [
            ("containseq", SetCmpOp::ContainsEq),
            ("contains", SetCmpOp::Contains),
            ("subseteq", SetCmpOp::SubsetEq),
            ("subset", SetCmpOp::Subset),
        ] {
            if self.eat_kw(kw) {
                let right = self.operand()?;
                return Ok(Cond::SetCmp { left, op, right });
            }
        }
        // Quantified comparison: [quant] op [quant].
        let lq = self.quantifier();
        let op = match self.peek() {
            TokenKind::Eq => Some(CmpOp::Eq),
            TokenKind::Ne => Some(CmpOp::Ne),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rq = self.quantifier();
            let right = self.operand()?;
            return Ok(Cond::Cmp {
                left,
                lq,
                op,
                rq,
                right,
            });
        }
        if lq.is_some() {
            return Err(self.err("quantifier must be followed by a comparator"));
        }
        // A stand-alone path expression.
        match left {
            Operand::Path(p) => Ok(Cond::Path(p)),
            _ => Err(self.err("expected comparator after operand")),
        }
    }

    fn quantifier(&mut self) -> Option<Quant> {
        if self.eat_kw("some") {
            Some(Quant::Some)
        } else if self.eat_kw("all") {
            Some(Quant::All)
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Operands
    // ------------------------------------------------------------------

    fn operand(&mut self) -> XsqlResult<Operand> {
        // Lowest precedence: set operators over operands (§3.2 allows
        // union/intersection/difference of path expressions).
        let mut left = self.arith_expr()?;
        loop {
            // A set operator followed by SELECT is the *statement-level*
            // relational operator (§3.3), not an operand-level set op.
            let stmt_level =
                matches!(self.peek2(), TokenKind::Ident(s) if s.eq_ignore_ascii_case("select"));
            if stmt_level
                && (self.at_kw("union")
                    || self.at_kw("intersect")
                    || self.at_kw("except")
                    || self.at_kw("minus"))
            {
                break;
            }
            let ctor: fn(Box<Operand>, Box<Operand>) -> Operand = if self.eat_kw("union") {
                Operand::Union
            } else if self.eat_kw("intersect") {
                Operand::Intersection
            } else if self.eat_kw("except") || self.eat_kw("minus") {
                Operand::Difference
            } else {
                break;
            };
            let right = self.arith_expr()?;
            left = ctor(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn arith_expr(&mut self) -> XsqlResult<Operand> {
        let mut left = self.arith_term()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.arith_term()?;
            left = Operand::Arith(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn arith_term(&mut self) -> XsqlResult<Operand> {
        let mut left = self.arith_factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.arith_factor()?;
            left = Operand::Arith(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn arith_factor(&mut self) -> XsqlResult<Operand> {
        // Unary minus: a negative numeral literal (which may head a
        // path expression, e.g. `-347.Salary`), else 0 - factor.
        if matches!(self.peek(), TokenKind::Minus) {
            if matches!(self.peek2(), TokenKind::Int(_) | TokenKind::Real(_)) {
                self.bump();
                let head = match self.bump() {
                    TokenKind::Int(v) => IdTerm::Int(-v),
                    TokenKind::Real(v) => IdTerm::Real(-v),
                    _ => unreachable!(),
                };
                let mut steps = Vec::new();
                while self.eat(&TokenKind::Dot) {
                    steps.push(self.step()?);
                }
                return Ok(Operand::Path(PathExpr { head, steps }));
            }
            self.bump();
            let inner = self.arith_factor()?;
            return Ok(Operand::Arith(
                Box::new(Operand::Path(PathExpr::atom(IdTerm::Int(0)))),
                ArithOp::Sub,
                Box::new(inner),
            ));
        }
        // Aggregates.
        for (kw, f) in [
            ("count", AggFunc::Count),
            ("sum", AggFunc::Sum),
            ("avg", AggFunc::Avg),
            ("min", AggFunc::Min),
            ("max", AggFunc::Max),
        ] {
            if self.at_kw(kw) {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let p = self.path_expr()?;
                self.expect(TokenKind::RParen)?;
                return Ok(Operand::Agg(f, p));
            }
        }
        // Set literal.
        if self.eat(&TokenKind::LBrace) {
            let mut items = Vec::new();
            if !matches!(self.peek(), TokenKind::RBrace) {
                items.push(self.idterm()?);
                while self.eat(&TokenKind::Comma) {
                    items.push(self.idterm()?);
                }
            }
            self.expect(TokenKind::RBrace)?;
            return Ok(Operand::SetLit(items));
        }
        // Subquery.
        if self.subquery_ahead() {
            self.bump();
            let q = self.select_query()?;
            self.expect(TokenKind::RParen)?;
            return Ok(Operand::Subquery(Box::new(q)));
        }
        // Parenthesized operand.
        if matches!(self.peek(), TokenKind::LParen) {
            // Could be `(Mthd @ …)` as the first step of a path with an
            // implicit head — not legal XSQL (paths need a head), so a
            // paren here is grouping.
            let save = self.pos;
            self.bump();
            match self.operand() {
                Ok(inner) => {
                    self.expect(TokenKind::RParen)?;
                    return Ok(inner);
                }
                Err(_) => {
                    self.pos = save;
                }
            }
        }
        // A path expression (covers plain literals as trivial paths).
        Ok(Operand::Path(self.path_expr()?))
    }

    // ------------------------------------------------------------------
    // Path expressions and id-terms
    // ------------------------------------------------------------------

    /// Parses a path expression: `head {.step}`.
    fn path_expr(&mut self) -> XsqlResult<PathExpr> {
        let head = self.idterm()?;
        let mut steps = Vec::new();
        while self.eat(&TokenKind::Dot) {
            steps.push(self.step()?);
        }
        Ok(PathExpr { head, steps })
    }

    fn step(&mut self) -> XsqlResult<Step> {
        // Path variable `.*P` (extension).
        if self.eat(&TokenKind::Star) {
            let name = self.ident()?;
            let selector = self.opt_selector()?;
            return Ok(Step::PathVar { name, selector });
        }
        // Method expression `.(Mthd @ a1,…)`.
        if self.eat(&TokenKind::LParen) {
            let method = match self.bump() {
                TokenKind::Ident(s) if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) => {
                    MethodTerm::Name(s)
                }
                TokenKind::MethodVar(s) => MethodTerm::Var(s),
                t => return Err(self.err(format!("expected method name or variable, found {t}"))),
            };
            self.expect(TokenKind::At)?;
            let mut args = Vec::new();
            if !matches!(self.peek(), TokenKind::RParen) {
                args.push(self.idterm_or_patharg()?);
                while self.eat(&TokenKind::Comma) {
                    args.push(self.idterm_or_patharg()?);
                }
            }
            self.expect(TokenKind::RParen)?;
            let selector = self.opt_selector()?;
            return Ok(Step::Method {
                method,
                args,
                selector,
            });
        }
        // Plain attribute step `.Attr` or `."Y`.
        let method = match self.bump() {
            TokenKind::Ident(s) if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) => {
                MethodTerm::Name(s)
            }
            TokenKind::MethodVar(s) => MethodTerm::Var(s),
            t => return Err(self.err(format!("expected attribute expression, found {t}"))),
        };
        let selector = self.opt_selector()?;
        Ok(Step::Method {
            method,
            args: Vec::new(),
            selector,
        })
    }

    fn opt_selector(&mut self) -> XsqlResult<Option<IdTerm>> {
        if self.eat(&TokenKind::LBracket) {
            let t = self.idterm()?;
            self.expect(TokenKind::RBracket)?;
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    /// An id-term: literal, symbol/variable, or id-function application.
    fn idterm(&mut self) -> XsqlResult<IdTerm> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(IdTerm::Int(v))
            }
            TokenKind::Real(v) => {
                self.bump();
                Ok(IdTerm::Real(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(IdTerm::Str(s))
            }
            TokenKind::Param(n) => {
                self.bump();
                Ok(IdTerm::Param(n))
            }
            TokenKind::MethodVar(s) => {
                self.bump();
                Ok(IdTerm::Var(Var::method(&s)))
            }
            TokenKind::ClassVar(s) => {
                self.bump();
                Ok(IdTerm::Var(Var::class(&s)))
            }
            TokenKind::Minus => {
                self.bump();
                match self.bump() {
                    TokenKind::Int(v) => Ok(IdTerm::Int(-v)),
                    TokenKind::Real(v) => Ok(IdTerm::Real(-v)),
                    t => Err(self.err(format!("expected numeral after `-`, found {t}"))),
                }
            }
            TokenKind::Ident(s) => {
                let lower = s.to_ascii_lowercase();
                match lower.as_str() {
                    "nil" => {
                        self.bump();
                        return Ok(IdTerm::Nil);
                    }
                    "true" => {
                        self.bump();
                        return Ok(IdTerm::Bool(true));
                    }
                    "false" => {
                        self.bump();
                        return Ok(IdTerm::Bool(false));
                    }
                    _ => {}
                }
                if RESERVED.contains(&lower.as_str()) {
                    return Err(self.err(format!("unexpected keyword `{s}`")));
                }
                self.bump();
                // Id-function application `f(t1,…,tk)`.
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !matches!(self.peek(), TokenKind::RParen) {
                        args.push(self.func_arg()?);
                        while self.eat(&TokenKind::Comma) {
                            args.push(self.func_arg()?);
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    return Ok(IdTerm::Func(s, args));
                }
                Ok(IdTerm::Sym(s))
            }
            t => Err(self.err(format!("expected id-term, found {t}"))),
        }
    }

    /// An id-function argument: an id-term or, per the §4.2 shorthand, a
    /// path expression (`CompSalaries(X.Manufacturer, W)`).
    fn func_arg(&mut self) -> XsqlResult<IdTerm> {
        self.idterm_or_patharg()
    }

    /// An id-term that may also be the §5 path shorthand (`Y.Name`).
    fn idterm_or_patharg(&mut self) -> XsqlResult<IdTerm> {
        let p = self.path_expr()?;
        if p.steps.is_empty() {
            Ok(p.head)
        } else {
            Ok(IdTerm::PathArg(Box::new(p)))
        }
    }

    // ------------------------------------------------------------------
    // DDL / DML
    // ------------------------------------------------------------------

    fn create_view(&mut self) -> XsqlResult<CreateView> {
        self.expect_kw("create")?;
        self.expect_kw("view")?;
        let name = self.ident()?;
        self.expect_kw("as")?;
        self.expect_kw("subclass")?;
        self.expect_kw("of")?;
        let superclass = self.ident()?;
        let mut signature = Vec::new();
        if self.eat_kw("signature") {
            signature.push(self.sig_decl()?);
            while self.eat(&TokenKind::Comma) {
                signature.push(self.sig_decl()?);
            }
        }
        let mut query = self.select_query()?;
        if let Some(spec) = &mut query.oid_fn {
            spec.function = Some(name.clone());
        }
        Ok(CreateView {
            name,
            superclass,
            signature,
            query,
        })
    }

    /// `M : A1,…,Ak => R` — 0-ary declarations may use `=` or `=>`;
    /// set-valued use `=>>`/`==>`.
    fn sig_decl(&mut self) -> XsqlResult<SigDecl> {
        let method = self.ident()?;
        let mut args = Vec::new();
        if self.eat(&TokenKind::Colon) {
            args.push(self.ident()?);
            while self.eat(&TokenKind::Comma) {
                args.push(self.ident()?);
            }
        }
        let set_valued = match self.bump() {
            TokenKind::Arrow | TokenKind::Eq => false,
            TokenKind::SetArrow => true,
            t => return Err(self.err(format!("expected `=>` or `=>>`, found {t}"))),
        };
        let result = self.ident()?;
        Ok(SigDecl {
            method,
            args,
            result,
            set_valued,
        })
    }

    fn alter_class(&mut self) -> XsqlResult<Stmt> {
        self.expect_kw("alter")?;
        self.expect_kw("class")?;
        let class = self.ident()?;
        self.expect_kw("add")?;
        self.expect_kw("signature")?;
        let signature = self.sig_decl()?;
        // With a SELECT body this defines a method (§5); without one it
        // is a pure signature declaration (§2 attribute declarations).
        if self.at_kw("select") {
            let query = self.select_query()?;
            Ok(Stmt::AlterClass(AlterClass {
                class,
                signature,
                query,
            }))
        } else {
            Ok(Stmt::AddSignature { class, signature })
        }
    }

    /// `CREATE CLASS Name [AS SUBCLASS OF A, B]` (extension).
    fn create_class(&mut self) -> XsqlResult<Stmt> {
        self.expect_kw("create")?;
        self.expect_kw("class")?;
        let name = self.ident()?;
        let mut supers = Vec::new();
        if self.eat_kw("as") {
            self.expect_kw("subclass")?;
            self.expect_kw("of")?;
            supers.push(self.ident()?);
            while self.eat(&TokenKind::Comma) {
                supers.push(self.ident()?);
            }
        }
        Ok(Stmt::CreateClass(CreateClass { name, supers }))
    }

    /// `CREATE OBJECT name CLASS c1, c2 [SET a = e, …]` (extension).
    fn create_object(&mut self) -> XsqlResult<Stmt> {
        self.expect_kw("create")?;
        self.expect_kw("object")?;
        let name = self.ident()?;
        self.expect_kw("class")?;
        let mut classes = vec![self.ident()?];
        while self.eat(&TokenKind::Comma) {
            classes.push(self.ident()?);
        }
        let mut sets = Vec::new();
        if self.eat_kw("set") {
            loop {
                let attr = self.ident()?;
                self.expect(TokenKind::Eq)?;
                let value = self.operand()?;
                sets.push((attr, value));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        Ok(Stmt::CreateObject(CreateObject {
            name,
            classes,
            sets,
        }))
    }

    fn update_stmt(&mut self) -> XsqlResult<UpdateStmt> {
        self.expect_kw("update")?;
        self.expect_kw("class")?;
        let class = self.ident()?;
        self.expect_kw("set")?;
        let mut assignments = vec![self.assignment()?];
        while self.eat(&TokenKind::Comma) {
            assignments.push(self.assignment()?);
        }
        Ok(UpdateStmt { class, assignments })
    }

    fn assignment(&mut self) -> XsqlResult<Assignment> {
        let target = self.path_expr()?;
        self.expect(TokenKind::Eq)?;
        let value = self.operand()?;
        Ok(Assignment { target, value })
    }
}

/// A trivial-path operand is usable as an id-term (for the schema
/// predicates `subclassOf`/`instanceOf`).
fn operand_as_idterm(op: &Operand) -> Option<IdTerm> {
    match op {
        Operand::Path(p) if p.steps.is_empty() => Some(p.head.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(src: &str) -> SelectQuery {
        match parse(src).unwrap() {
            Stmt::Select(q) => q,
            s => panic!("expected select, got {s:?}"),
        }
    }

    #[test]
    fn parses_nobel_query() {
        let q = sel("SELECT X WHERE X.WonNobelPrize");
        assert_eq!(q.select.len(), 1);
        assert!(matches!(q.where_clause, Cond::Path(_)));
    }

    #[test]
    fn parses_query_with_selectors() {
        let q = sel("SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']");
        assert_eq!(q.from.len(), 1);
        match &q.where_clause {
            Cond::Path(p) => {
                assert_eq!(p.steps.len(), 2);
                match &p.steps[0] {
                    Step::Method { selector, .. } => assert!(selector.is_some()),
                    s => panic!("unexpected step {s:?}"),
                }
            }
            c => panic!("unexpected cond {c:?}"),
        }
    }

    #[test]
    fn parses_subclassof() {
        let q = sel("SELECT #X WHERE TurboEngine subclassOf #X");
        assert!(matches!(q.where_clause, Cond::SubclassOf { .. }));
    }

    #[test]
    fn parses_quantified_comparisons() {
        let q = sel("SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20");
        match q.where_clause {
            Cond::Cmp { lq, op, rq, .. } => {
                assert_eq!(lq, Some(Quant::Some));
                assert_eq!(op, CmpOp::Gt);
                assert_eq!(rq, None);
            }
            c => panic!("unexpected {c:?}"),
        }
        let q = sel("SELECT X FROM Person X WHERE X.Residence =all X.FamMembers.Residence");
        match q.where_clause {
            Cond::Cmp { lq, op, rq, .. } => {
                assert_eq!(lq, None);
                assert_eq!(op, CmpOp::Eq);
                assert_eq!(rq, Some(Quant::All));
            }
            c => panic!("unexpected {c:?}"),
        }
        let q =
            sel("SELECT X FROM Person X, Person Y WHERE Y.FamMembers.Age all<all X.FamMembers.Age");
        assert!(matches!(
            q.where_clause,
            Cond::Cmp {
                lq: Some(Quant::All),
                rq: Some(Quant::All),
                ..
            }
        ));
    }

    #[test]
    fn parses_set_comparator_and_literal() {
        let q = sel("SELECT X FROM Automobile Y WHERE Y.Manufacturer[X] \
             and X.President.OwnedVehicles.Color containsEq {'blue', 'red'} \
             and X.President.Age < 30");
        // and is left-assoc: ((p and setcmp) and cmp)
        match q.where_clause {
            Cond::And(l, r) => {
                assert!(matches!(*r, Cond::Cmp { .. }));
                match *l {
                    Cond::And(_, inner) => assert!(matches!(*inner, Cond::SetCmp { .. })),
                    c => panic!("unexpected {c:?}"),
                }
            }
            c => panic!("unexpected {c:?}"),
        }
    }

    #[test]
    fn parses_aggregate() {
        let q = sel("SELECT X FROM Employee X WHERE count(X.FamMembers) > 4 \
             and X.Residence =all X.FamMembers.Residence and X.Salary < 35000");
        fn has_agg(c: &Cond) -> bool {
            match c {
                Cond::And(a, b) => has_agg(a) || has_agg(b),
                Cond::Cmp { left, .. } => matches!(left, Operand::Agg(AggFunc::Count, _)),
                _ => false,
            }
        }
        assert!(has_agg(&q.where_clause));
    }

    #[test]
    fn parses_oid_function() {
        let q = sel(
            "SELECT EmpSalary = W.Salary FROM Company X OID FUNCTION OF X,W \
             WHERE X.Divisions.Employees[W]",
        );
        let spec = q.oid_fn.unwrap();
        assert_eq!(spec.vars.len(), 2);
        assert!(matches!(
            q.select[0],
            SelectItem::Named {
                value: SelectValue::Expr(_),
                ..
            }
        ));
    }

    #[test]
    fn parses_grouped_set_attribute() {
        let q = sel(
            "SELECT CompName = Y.Name, Beneficiaries = {W} FROM Company Y OID FUNCTION OF Y \
             WHERE Y.Retirees[W] or Y.Divisions.Employees.Dependents[W]",
        );
        assert!(matches!(
            q.select[1],
            SelectItem::Named {
                value: SelectValue::Grouped(_),
                ..
            }
        ));
        assert!(matches!(q.where_clause, Cond::Or(..)));
    }

    #[test]
    fn parses_create_view() {
        let s = parse(
            "CREATE VIEW CompSalaries AS SUBCLASS OF Object \
             SIGNATURE CompName => String, DivName => String, Salary => Numeral \
             SELECT CompName = X.Name, DivName = Y.Name, Salary = W.Salary \
             FROM Company X OID FUNCTION OF X,W \
             WHERE X.Divisions[Y].Employees[W]",
        )
        .unwrap();
        match s {
            Stmt::CreateView(v) => {
                assert_eq!(v.name, "CompSalaries");
                assert_eq!(v.signature.len(), 3);
                assert_eq!(
                    v.query.oid_fn.as_ref().unwrap().function.as_deref(),
                    Some("CompSalaries")
                );
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn parses_view_query_with_idterm_selector() {
        let q = sel("SELECT X.Manufacturer.Name FROM Automobile X, Employee W \
             WHERE CompSalaries(X.Manufacturer, W).Salary > 35000");
        match &q.where_clause {
            Cond::Cmp { left, .. } => match left {
                Operand::Path(p) => match &p.head {
                    IdTerm::Func(f, args) => {
                        assert_eq!(f, "CompSalaries");
                        assert!(matches!(args[0], IdTerm::PathArg(_)));
                    }
                    t => panic!("unexpected head {t:?}"),
                },
                o => panic!("unexpected {o:?}"),
            },
            c => panic!("unexpected {c:?}"),
        }
    }

    #[test]
    fn parses_alter_class_method_definition() {
        let s = parse(
            "ALTER CLASS Company ADD SIGNATURE MngrSalary : String => Numeral \
             SELECT (MngrSalary @ Y.Name) = W FROM Company X OID X \
             WHERE X.Divisions[Y].Manager.Salary[W]",
        )
        .unwrap();
        match s {
            Stmt::AlterClass(a) => {
                assert_eq!(a.class, "Company");
                assert_eq!(a.signature.args, vec!["String".to_string()]);
                assert!(matches!(a.query.select[0], SelectItem::MethodResult { .. }));
                assert_eq!(a.query.oid_fn.as_ref().unwrap().vars.len(), 1);
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn parses_nested_subquery() {
        let q = sel(
            "SELECT X FROM Vehicle X WHERE 200000 <all (SELECT W FROM Division Y \
             WHERE X.Manufacturer.(MngrSalary @ Y.Name)[W])",
        );
        match q.where_clause {
            Cond::Cmp { right, rq, .. } => {
                assert!(matches!(right, Operand::Subquery(_)));
                assert_eq!(rq, Some(Quant::All));
            }
            c => panic!("unexpected {c:?}"),
        }
    }

    #[test]
    fn parses_update_method_definition() {
        let s = parse(
            "ALTER CLASS Company ADD SIGNATURE RaiseMngrSalary : Numeral => Object \
             SELECT (RaiseMngrSalary @ W) = nil FROM Company X, Numeral W OID X \
             WHERE W < 20 and (UPDATE CLASS Company \
             SET X.Divisions[Y].Manager.Salary = (1 + W/100) * X.(MngrSalary @ Y.Name))",
        )
        .unwrap();
        match s {
            Stmt::AlterClass(a) => {
                fn has_update(c: &Cond) -> bool {
                    match c {
                        Cond::And(a, b) => has_update(a) || has_update(b),
                        Cond::Update(_) => true,
                        _ => false,
                    }
                }
                assert!(has_update(&a.query.where_clause));
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn parses_relational_union() {
        let s = parse("SELECT X FROM Person X UNION SELECT Y FROM Company Y").unwrap();
        assert!(matches!(
            s,
            Stmt::RelOp {
                op: RelOp::Union,
                ..
            }
        ));
    }

    #[test]
    fn parses_path_variable_extension() {
        let q = sel("SELECT X FROM Person X WHERE X.*Y.City['newyork']");
        match &q.where_clause {
            Cond::Path(p) => assert!(matches!(p.steps[0], Step::PathVar { .. })),
            c => panic!("unexpected {c:?}"),
        }
    }

    #[test]
    fn parses_method_variable_step() {
        let q = sel("SELECT Y FROM Person X WHERE X.\"Y.City['newyork']");
        match &q.where_clause {
            Cond::Path(p) => match &p.steps[0] {
                Step::Method { method, .. } => assert!(matches!(method, MethodTerm::Var(_))),
                s => panic!("unexpected {s:?}"),
            },
            c => panic!("unexpected {c:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("WHERE X").is_err());
        assert!(parse("SELECT X WHERE X.").is_err());
    }

    #[test]
    fn parses_script() {
        let stmts = parse_script("SELECT X FROM Person X; SELECT Y FROM Company Y;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn parses_operand_set_ops() {
        let q = sel("SELECT X FROM Person X WHERE X.A union X.B containsEq {'a'}");
        assert!(matches!(
            q.where_clause,
            Cond::SetCmp {
                left: Operand::Union(..),
                ..
            }
        ));
    }
}

#[cfg(test)]
mod precedence_tests {
    use super::*;

    fn sel(src: &str) -> SelectQuery {
        match parse(src).unwrap() {
            Stmt::Select(q) => q,
            s => panic!("expected select, got {s:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let q = sel("SELECT X FROM C X WHERE X.A or X.B and X.D");
        match q.where_clause {
            Cond::Or(l, r) => {
                assert!(matches!(*l, Cond::Path(_)));
                assert!(matches!(*r, Cond::And(..)));
            }
            c => panic!("unexpected {c:?}"),
        }
    }

    #[test]
    fn not_binds_tightest() {
        let q = sel("SELECT X FROM C X WHERE not X.A and X.B");
        match q.where_clause {
            Cond::And(l, _) => assert!(matches!(*l, Cond::Not(_))),
            c => panic!("unexpected {c:?}"),
        }
    }

    #[test]
    fn mul_binds_tighter_than_add() {
        let q = sel("SELECT X FROM C X WHERE X.A = 1 + 2 * 3");
        fn rightmost(c: &Cond) -> &Operand {
            match c {
                Cond::Cmp { right, .. } => right,
                _ => panic!(),
            }
        }
        match rightmost(&q.where_clause) {
            Operand::Arith(l, ArithOp::Add, r) => {
                assert!(matches!(**l, Operand::Path(_)));
                assert!(matches!(**r, Operand::Arith(_, ArithOp::Mul, _)));
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn parenthesized_condition_groups() {
        let q = sel("SELECT X FROM C X WHERE (X.A or X.B) and X.D");
        match q.where_clause {
            Cond::And(l, _) => assert!(matches!(*l, Cond::Or(..))),
            c => panic!("unexpected {c:?}"),
        }
    }

    #[test]
    fn keywords_case_insensitive_identifiers_not() {
        let a = parse("select X from Person X where X.Age > 1").unwrap();
        let b = parse("SELECT X FROM Person X WHERE X.Age > 1").unwrap();
        assert_eq!(a, b);
        // `person` and `Person` are different class symbols.
        let c = parse("SELECT X FROM person X").unwrap();
        assert_ne!(b, c);
    }

    #[test]
    fn deep_nesting_parses() {
        let mut src = String::from("SELECT X FROM C X WHERE ");
        for _ in 0..40 {
            src.push_str("not (");
        }
        src.push_str("X.A");
        for _ in 0..40 {
            src.push(')');
        }
        assert!(parse(&src).is_ok());
    }
}
